//! Structural analyses over the combinational DAG.

use crate::ir::{NetId, Netlist};

/// Computes a topological evaluation order of all nets.
///
/// Nets are numbered in creation order and the builder only allows operands
/// that already exist, so a valid order always exists for builder-produced
/// netlists; the check still guards hand-constructed or mutated graphs.
///
/// # Errors
///
/// Returns a net on the cycle if the graph is cyclic.
pub fn topological_order(netlist: &Netlist) -> Result<Vec<NetId>, NetId> {
    let n = netlist.nets().len();
    // Kahn's algorithm over the operand edges.
    let mut indegree = vec![0u32; n];
    for net in netlist.nets() {
        for _ in &net.args {
            // counted below per-consumer
        }
    }
    for (_i, net) in netlist.nets().iter().enumerate() {
        indegree[_i] = net.args.len() as u32;
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // consumers[p] = list of nets that consume p
    let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, net) in netlist.nets().iter().enumerate() {
        for a in &net.args {
            consumers[a.index()].push(i as u32);
        }
    }
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop() {
        order.push(NetId(i as u32));
        for &c in &consumers[i] {
            indegree[c as usize] -= 1;
            if indegree[c as usize] == 0 {
                ready.push(c as usize);
            }
        }
    }
    if order.len() != n {
        let stuck = (0..n).find(|&i| indegree[i] > 0).expect("cycle exists");
        return Err(NetId(stuck as u32));
    }
    Ok(order)
}

/// Number of consumers of each net (combinational fan-out), counting sink
/// uses (register next, memory ports, testbench cells) as one each.
pub fn fanout_counts(netlist: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; netlist.nets().len()];
    for net in netlist.nets() {
        for a in &net.args {
            counts[a.index()] += 1;
        }
    }
    for s in netlist.sink_nets() {
        counts[s.index()] += 1;
    }
    counts
}

/// The transitive fan-in cone of `sink`: every net reachable backwards from
/// it, in ascending id order. This is the paper's per-sink DAG (§3.2).
pub fn fanin_cone(netlist: &Netlist, sink: NetId) -> Vec<NetId> {
    let mut seen = vec![false; netlist.nets().len()];
    let mut stack = vec![sink];
    seen[sink.index()] = true;
    while let Some(id) = stack.pop() {
        for &a in &netlist.net(id).args {
            if !seen[a.index()] {
                seen[a.index()] = true;
                stack.push(a);
            }
        }
    }
    (0..netlist.nets().len())
        .filter(|&i| seen[i])
        .map(|i| NetId(i as u32))
        .collect()
}

/// Longest path (in cells) from any source to any sink — the critical path
/// of the combinational DAG, a lower bound on sequential evaluation depth.
pub fn critical_path_length(netlist: &Netlist) -> usize {
    let order = topological_order(netlist).expect("netlist must be acyclic");
    let mut depth = vec![0usize; netlist.nets().len()];
    let mut max = 0;
    for id in order {
        let net = netlist.net(id);
        let d = net
            .args
            .iter()
            .map(|a| depth[a.index()] + 1)
            .max()
            .unwrap_or(0);
        depth[id.index()] = d;
        max = max.max(d);
    }
    max
}
