//! Structural netlist IR for single-clock RTL designs.
//!
//! A [`Netlist`] is the directed graph the Manticore paper describes in §2.1:
//! nodes are circuit cells (combinational operators, registers, memory
//! ports), edges are the nets connecting them. Splitting every register into
//! a *current* (`Q`) and *next* (`D`) value makes the combinational portion a
//! DAG, which fully expresses the design's parallelism.
//!
//! The crate provides:
//!
//! - the IR itself ([`Netlist`], [`Net`], [`CellOp`], [`Register`],
//!   [`Memory`]) — the hand-off point that Yosys fills in the paper and the
//!   [`NetlistBuilder`] DSL fills here;
//! - structural analyses: topological ordering, combinational-loop
//!   detection, fan-out counting, per-sink cone extraction ([`topo`]);
//! - a reference evaluator ([`eval`]) with Verilog event semantics
//!   (compute all next-state values from current state, then commit), used
//!   as ground truth by the compiler's differential tests and by the
//!   Verilator-analog baseline simulator;
//! - testbench cells (`$display`, `$finish`, assertions) so workloads can be
//!   wrapped in the paper's "simple, assertion-based test drivers".
//!
//! # Examples
//!
//! A 2-bit counter that finishes after wrapping:
//!
//! ```
//! use manticore_netlist::{NetlistBuilder, eval::Evaluator};
//!
//! let mut b = NetlistBuilder::new("counter");
//! let count = b.reg("count", 2, 0);
//! let one = b.lit(1, 2);
//! let next = b.add(count.q(), one);
//! b.set_next(count, next);
//! let three = b.lit(3, 2);
//! let done = b.eq(count.q(), three);
//! b.finish(done);
//! let netlist = b.finish_build().unwrap();
//!
//! let mut sim = Evaluator::new(&netlist);
//! let mut cycles = 0;
//! while !sim.step().finished {
//!     cycles += 1;
//! }
//! assert_eq!(cycles, 3);
//! ```

pub mod builder;
pub mod eval;
pub mod ir;
pub mod stats;
pub mod topo;
pub mod validate;
pub mod vcd;

pub use builder::{BuildError, MemHandle, NetlistBuilder, RegHandle};
pub use ir::{
    CellOp, DisplayCell, ExpectCell, FinishCell, MemWrite, Memory, MemoryId, Net, NetId, Netlist,
    RegId, Register,
};
pub use stats::NetlistStats;
pub use validate::{NetlistParts, ValidateError};

#[cfg(test)]
mod tests;
