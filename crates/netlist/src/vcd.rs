//! VCD (Value Change Dump) waveform tracing.
//!
//! The paper lists waveform collection as future work ("we have an initial
//! design of hardware support for out-of-band waveform collection"); the
//! software reproduction can provide it today: [`VcdTracer`] wraps an
//! [`Evaluator`] run and emits a standard VCD file
//! of every register and named output that any waveform viewer (GTKWave,
//! Surfer) can open.
//!
//! # Examples
//!
//! ```
//! use manticore_netlist::{NetlistBuilder, eval::Evaluator, vcd::VcdTracer};
//!
//! let mut b = NetlistBuilder::new("t");
//! let r = b.reg("count", 8, 0);
//! let one = b.lit(1, 8);
//! let next = b.add(r.q(), one);
//! b.set_next(r, next);
//! b.output("count", r.q());
//! let n = b.finish_build().unwrap();
//!
//! let mut sim = Evaluator::new(&n);
//! let mut out = Vec::new();
//! let mut tracer = VcdTracer::new(&n, &mut out).unwrap();
//! for _ in 0..4 {
//!     sim.step();
//!     tracer.sample(&sim).unwrap();
//! }
//! let text = String::from_utf8(out).unwrap();
//! assert!(text.contains("$var wire 8"));
//! assert!(text.contains("#3"));
//! ```

use std::io::{self, Write};

use manticore_bits::Bits;

use crate::eval::Evaluator;
use crate::ir::Netlist;

/// Streams an evaluator run into VCD text.
#[derive(Debug)]
pub struct VcdTracer<'n, W: Write> {
    netlist: &'n Netlist,
    out: W,
    /// VCD identifier code per signal (registers then outputs).
    codes: Vec<String>,
    /// Last emitted value per signal (emit only changes).
    last: Vec<Option<Bits>>,
    time: u64,
}

impl<'n, W: Write> VcdTracer<'n, W> {
    /// Writes the VCD header (date, timescale, variable declarations) and
    /// returns a tracer ready to sample.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying writer.
    pub fn new(netlist: &'n Netlist, mut out: W) -> io::Result<Self> {
        writeln!(out, "$comment manticore-rs waveform dump $end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", sanitize(netlist.name()))?;
        let mut codes = Vec::new();
        let mut next_code = 0usize;
        for r in netlist.registers() {
            let code = id_code(next_code);
            next_code += 1;
            writeln!(
                out,
                "$var wire {} {} {} $end",
                r.width,
                code,
                sanitize(&r.name)
            )?;
            codes.push(code);
        }
        for (name, id) in netlist.outputs() {
            let code = id_code(next_code);
            next_code += 1;
            let width = netlist.net(*id).width;
            writeln!(
                out,
                "$var wire {} {} out_{} $end",
                width,
                code,
                sanitize(name)
            )?;
            codes.push(code);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        let n = codes.len();
        Ok(VcdTracer {
            netlist,
            out,
            codes,
            last: vec![None; n],
            time: 0,
        })
    }

    /// Samples the evaluator's state as one timestep (call after each
    /// [`Evaluator::step`]). Registers sample their committed (post-edge)
    /// values; outputs sample the value during the cycle.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying writer.
    pub fn sample(&mut self, sim: &Evaluator<'_>) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        let mut idx = 0;
        for ri in 0..self.netlist.registers().len() {
            let v = sim.reg_value(ri).clone();
            self.emit(idx, v)?;
            idx += 1;
        }
        for (name, _) in self.netlist.outputs() {
            let v = sim
                .output_value(name)
                .expect("output exists by construction")
                .clone();
            self.emit(idx, v)?;
            idx += 1;
        }
        self.time += 1;
        Ok(())
    }

    fn emit(&mut self, idx: usize, v: Bits) -> io::Result<()> {
        if self.last[idx].as_ref() == Some(&v) {
            return Ok(());
        }
        if v.width() == 1 {
            writeln!(self.out, "{}{}", v.bit(0) as u8, self.codes[idx])?;
        } else {
            writeln!(self.out, "b{:b} {}", v, self.codes[idx])?;
        }
        self.last[idx] = Some(v);
        Ok(())
    }

    /// Finishes the dump and returns the writer.
    ///
    /// # Errors
    ///
    /// I/O errors from the final flush.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.out, "#{}", self.time)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-char as needed.
fn id_code(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn traced_counter(cycles: usize) -> String {
        let mut b = NetlistBuilder::new("trace test!");
        let r = b.reg("count", 4, 0);
        let one = b.lit(1, 4);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        let flag = b.bit(r.q(), 0);
        let f = b.reg("flag", 1, 0);
        b.set_next(f, flag);
        b.output("count", r.q());
        let n = b.finish_build().unwrap();
        let mut sim = Evaluator::new(&n);
        let mut out = Vec::new();
        let mut tracer = VcdTracer::new(&n, &mut out).unwrap();
        for _ in 0..cycles {
            sim.step();
            tracer.sample(&sim).unwrap();
        }
        tracer.finish().unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn header_declares_all_signals() {
        let text = traced_counter(1);
        assert!(text.contains("$scope module trace_test_ $end"));
        assert!(text.contains("$var wire 4 ! count $end"));
        assert!(text.contains("$var wire 1 \" flag $end"));
        assert!(text.contains("$var wire 4 # out_count $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn values_change_per_timestep() {
        let text = traced_counter(3);
        // count register: committed values 1, 2, 3 (full-width binary).
        assert!(text.contains("b0001 !"));
        assert!(text.contains("b0010 !"));
        assert!(text.contains("b0011 !"));
        // scalar flag uses the compact form.
        assert!(text.contains("1\"") || text.contains("0\""));
        assert!(text.contains("#0") && text.contains("#2"));
    }

    #[test]
    fn unchanged_values_are_not_reemitted() {
        let text = traced_counter(2);
        // flag register is 0 at t0 and 0 at t1 (committed flag lags count):
        // its code must appear exactly twice: declaration + first sample...
        let decl_count = text.matches("$var wire 1 \" flag $end").count();
        assert_eq!(decl_count, 1);
        let zero_emits = text.matches("\n0\"").count();
        assert_eq!(zero_emits, 1, "unchanged scalar re-emitted: {text}");
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let c = id_code(n);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c));
        }
    }
}
