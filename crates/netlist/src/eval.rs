//! Reference full-cycle evaluator with Verilog clock-edge semantics.
//!
//! One [`Evaluator::step`] simulates one RTL cycle: every net is evaluated
//! in topological order against the *current* register/memory state, then
//! all register next-values and memory writes commit atomically. This is the
//! ground truth every other execution engine in the workspace (the
//! Verilator-analog backend, the two compiler interpreters, and the machine
//! model) is differentially tested against.

use manticore_bits::Bits;

use crate::ir::{CellOp, NetId, Netlist};
use crate::topo;

/// Side effects observed while simulating one cycle.
#[derive(Debug, Clone, Default)]
pub struct CycleEvents {
    /// Rendered `$display` lines, in cell order.
    pub displays: Vec<String>,
    /// Assertion ids (with messages) whose condition was false this cycle.
    pub failed_expects: Vec<(u32, String)>,
    /// True if any `$finish` condition fired.
    pub finished: bool,
}

/// Simulation state + engine for a netlist.
///
/// Net values (and therefore [`Evaluator::output_value`]) are sampled
/// *during* the cycle, i.e. they see the pre-edge register state;
/// [`Evaluator::reg_value`] returns the committed post-edge state.
///
/// # Examples
///
/// ```
/// use manticore_netlist::{NetlistBuilder, eval::Evaluator};
///
/// let mut b = NetlistBuilder::new("t");
/// let r = b.reg("r", 8, 41);
/// let one = b.lit(1, 8);
/// let next = b.add(r.q(), one);
/// b.set_next(r, next);
/// b.output("r", r.q());
/// let n = b.finish_build().unwrap();
/// let mut sim = Evaluator::new(&n);
/// sim.step();
/// assert_eq!(sim.output_value("r").unwrap().to_u64(), 41); // sampled pre-edge
/// assert_eq!(sim.reg_value(0).to_u64(), 42); // committed post-edge
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    order: Vec<NetId>,
    regs: Vec<Bits>,
    mems: Vec<Vec<Bits>>,
    nets: Vec<Bits>,
    inputs: Vec<Bits>,
    cycle: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with registers and memories at their initial
    /// values and all inputs zero.
    pub fn new(netlist: &'a Netlist) -> Self {
        let order = topo::topological_order(netlist).expect("netlist must be acyclic");
        let regs = netlist.registers().iter().map(|r| r.init.clone()).collect();
        let mems = netlist
            .memories()
            .iter()
            .map(|m| {
                let mut words: Vec<Bits> = m.init.clone();
                words.resize(m.depth, Bits::zero(m.width));
                words
            })
            .collect();
        let nets = netlist.nets().iter().map(|n| Bits::zero(n.width)).collect();
        let inputs = netlist
            .inputs()
            .iter()
            .map(|(_, id)| Bits::zero(netlist.net(*id).width))
            .collect();
        Evaluator {
            netlist,
            order,
            regs,
            mems,
            nets,
            inputs,
            cycle: 0,
        }
    }

    /// Number of cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets the value of input `index` (the position in
    /// [`Netlist::inputs`]) for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if the width does not match the input's declared width.
    pub fn set_input(&mut self, index: usize, value: Bits) {
        let (_, id) = &self.netlist.inputs()[index];
        assert_eq!(
            value.width(),
            self.netlist.net(*id).width,
            "input width mismatch"
        );
        self.inputs[index] = value;
    }

    /// Sets an input by name.
    ///
    /// # Panics
    ///
    /// Panics if no input has this name.
    pub fn set_input_by_name(&mut self, name: &str, value: Bits) {
        let idx = self
            .netlist
            .inputs()
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no input named `{name}`"));
        self.set_input(idx, value);
    }

    /// The value a net held after the most recent [`Evaluator::step`].
    pub fn net_value(&self, id: NetId) -> &Bits {
        &self.nets[id.index()]
    }

    /// The value of the named output after the most recent step.
    pub fn output_value(&self, name: &str) -> Option<&Bits> {
        self.netlist.output(name).map(|id| self.net_value(id))
    }

    /// Current value of register `index` (in [`Netlist::registers`] order).
    pub fn reg_value(&self, index: usize) -> &Bits {
        &self.regs[index]
    }

    /// All current register values.
    pub fn reg_values(&self) -> &[Bits] {
        &self.regs
    }

    /// Current contents of memory `index`.
    pub fn mem_contents(&self, index: usize) -> &[Bits] {
        &self.mems[index]
    }

    /// Simulates one RTL cycle and returns the observed side effects.
    pub fn step(&mut self) -> CycleEvents {
        // Phase 1: evaluate all combinational nets against current state.
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let value = self.eval_net(id);
            self.nets[id.index()] = value;
        }

        // Phase 2: observe testbench cells.
        let mut events = CycleEvents::default();
        for d in self.netlist.displays() {
            if !self.nets[d.cond.index()].is_zero() {
                events.displays.push(render_display(
                    &d.format,
                    d.args.iter().map(|a| &self.nets[a.index()]),
                ));
            }
        }
        for e in self.netlist.expects() {
            if self.nets[e.cond.index()].is_zero() {
                events.failed_expects.push((e.id, e.message.clone()));
            }
        }
        for f in self.netlist.finishes() {
            if !self.nets[f.cond.index()].is_zero() {
                events.finished = true;
            }
        }

        // Phase 3: commit register and memory updates atomically.
        for (i, r) in self.netlist.registers().iter().enumerate() {
            self.regs[i] = self.nets[r.next.index()].clone();
        }
        for (i, m) in self.netlist.memories().iter().enumerate() {
            for w in &m.writes {
                if !self.nets[w.en.index()].is_zero() {
                    let addr = self.nets[w.addr.index()].to_u64() as usize;
                    if addr < m.depth {
                        self.mems[i][addr] = self.nets[w.data.index()].clone();
                    }
                }
            }
        }
        self.cycle += 1;
        events
    }

    /// Runs until a `$finish` fires or `max_cycles` elapse. Returns the
    /// number of cycles simulated and whether the design finished.
    ///
    /// # Panics
    ///
    /// Panics if any assertion fails (test drivers are self-checking).
    pub fn run(&mut self, max_cycles: u64) -> (u64, bool) {
        for c in 0..max_cycles {
            let ev = self.step();
            assert!(
                ev.failed_expects.is_empty(),
                "assertion failed at cycle {c}: {:?}",
                ev.failed_expects
            );
            if ev.finished {
                return (c + 1, true);
            }
        }
        (max_cycles, false)
    }

    fn eval_net(&self, id: NetId) -> Bits {
        let net = self.netlist.net(id);
        let arg = |i: usize| &self.nets[net.args[i].index()];
        match &net.op {
            CellOp::Const(c) => c.clone(),
            CellOp::Input => {
                let idx = self
                    .netlist
                    .inputs()
                    .iter()
                    .position(|(_, nid)| *nid == id)
                    .expect("input net not registered");
                self.inputs[idx].clone()
            }
            CellOp::RegQ(r) => self.regs[r.index()].clone(),
            CellOp::MemRead(m) => {
                let addr = arg(0).to_u64() as usize;
                let mem = &self.mems[m.index()];
                if addr < mem.len() {
                    mem[addr].clone()
                } else {
                    Bits::zero(net.width)
                }
            }
            CellOp::And => arg(0).and(arg(1)),
            CellOp::Or => arg(0).or(arg(1)),
            CellOp::Xor => arg(0).xor(arg(1)),
            CellOp::Not => arg(0).not(),
            CellOp::Add => arg(0).add(arg(1)),
            CellOp::Sub => arg(0).sub(arg(1)),
            CellOp::Mul => arg(0).mul(arg(1)),
            CellOp::Eq => Bits::from_bool(arg(0) == arg(1)),
            CellOp::Ult => Bits::from_bool(arg(0).ult(arg(1))),
            CellOp::Slt => Bits::from_bool(arg(0).slt(arg(1))),
            CellOp::Shl => arg(0).shl_dyn(arg(1)),
            CellOp::Shr => arg(0).shr_dyn(arg(1)),
            CellOp::Ashr => arg(0).ashr_dyn(arg(1)),
            CellOp::Slice { offset } => arg(0).slice(*offset, net.width),
            CellOp::Concat => arg(0).concat(arg(1)),
            CellOp::ZExt => arg(0).zext(net.width),
            CellOp::SExt => arg(0).sext(net.width),
            CellOp::Mux => Bits::mux(arg(0), arg(1), arg(2)),
            CellOp::RedOr => arg(0).reduce_or(),
            CellOp::RedAnd => arg(0).reduce_and(),
            CellOp::RedXor => arg(0).reduce_xor(),
        }
    }
}

/// Renders a `$display` format string: each `{}` consumes one argument
/// (printed in hex, Verilog-style `%h`).
pub fn render_display<'v>(format: &str, mut args: impl Iterator<Item = &'v Bits>) -> String {
    let mut out = String::with_capacity(format.len() + 16);
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' && chars.peek() == Some(&'}') {
            chars.next();
            match args.next() {
                Some(v) => out.push_str(&format!("{v:x}")),
                None => out.push_str("<missing>"),
            }
        } else {
            out.push(c);
        }
    }
    out
}
