//! Unit and property tests for the netlist IR, builder, analyses, and
//! reference evaluator.

use manticore_bits::Bits;
use manticore_util::SmallRng;

use crate::eval::Evaluator;
use crate::{topo, BuildError, NetlistBuilder, NetlistStats};

#[test]
fn counter_counts() {
    let mut b = NetlistBuilder::new("counter");
    let r = b.reg("count", 8, 0);
    let one = b.lit(1, 8);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("count", r.q());
    let n = b.finish_build().unwrap();

    let mut sim = Evaluator::new(&n);
    for expect in 0..10u64 {
        sim.step();
        // Outputs are sampled during the cycle (pre-edge)...
        assert_eq!(sim.output_value("count").unwrap().to_u64(), expect);
        // ...while reg_value reflects the committed post-edge state.
        assert_eq!(sim.reg_value(0).to_u64(), expect + 1);
    }
}

#[test]
fn unconnected_register_is_an_error() {
    let mut b = NetlistBuilder::new("bad");
    b.reg("floating", 4, 0);
    match b.finish_build() {
        Err(BuildError::UnconnectedRegister { name }) => assert_eq!(name, "floating"),
        other => panic!("expected UnconnectedRegister, got {other:?}"),
    }
}

#[test]
fn finish_fires() {
    let mut b = NetlistBuilder::new("f");
    let r = b.reg("c", 4, 0);
    let one = b.lit(1, 4);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let five = b.lit(5, 4);
    let done = b.eq(r.q(), five);
    b.finish(done);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    let (cycles, finished) = sim.run(100);
    assert!(finished);
    assert_eq!(cycles, 6); // q reaches 5 on the 6th evaluation
}

#[test]
fn expect_failure_reported() {
    let mut b = NetlistBuilder::new("e");
    let r = b.reg("c", 4, 0);
    let one = b.lit(1, 4);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let three = b.lit(3, 4);
    let ok = b.ne(r.q(), three);
    b.expect_true(ok, "c must never be 3");
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    let mut failed_at = None;
    for c in 0..10 {
        let ev = sim.step();
        if !ev.failed_expects.is_empty() {
            failed_at = Some(c);
            assert_eq!(ev.failed_expects[0].1, "c must never be 3");
            break;
        }
    }
    assert_eq!(failed_at, Some(3));
}

#[test]
fn display_renders_hex() {
    let mut b = NetlistBuilder::new("d");
    let t = b.lit(1, 1);
    let v = b.lit(0xbeef, 16);
    b.display(t, "value = {}", &[v]);
    let dummy = b.reg("dummy", 1, 0);
    let z = b.lit(0, 1);
    b.set_next(dummy, z);
    let n = b.finish_build().unwrap();
    let ev = Evaluator::new(&n).step();
    assert_eq!(ev.displays, vec!["value = beef".to_string()]);
}

#[test]
fn memory_read_write() {
    // mem[addr] <= data every cycle; read back next cycle.
    let mut b = NetlistBuilder::new("m");
    let mem = b.memory("m", 16, 8);
    let addr = b.reg("addr", 4, 0);
    let one4 = b.lit(1, 4);
    let next_addr = b.add(addr.q(), one4);
    b.set_next(addr, next_addr);
    // write addr+0x40 at current address
    let base = b.lit(0x40, 8);
    let addr_w = b.zext(addr.q(), 8);
    let data = b.add(base, addr_w);
    let en = b.lit(1, 1);
    b.mem_write(mem, addr.q(), data, en);
    // read back at addr-1
    let prev = b.sub(addr.q(), one4);
    let rd = b.mem_read(mem, prev);
    b.output("rd", rd);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    sim.step(); // writes mem[0] = 0x40
    sim.step(); // addr=1, reads mem[0]
    assert_eq!(sim.output_value("rd").unwrap().to_u64(), 0x40);
    sim.step(); // addr=2, reads mem[1] = 0x41
    assert_eq!(sim.output_value("rd").unwrap().to_u64(), 0x41);
}

#[test]
fn memory_write_is_synchronous() {
    // A read in the same cycle as a write must see the OLD value.
    let mut b = NetlistBuilder::new("sync");
    let mem = b.memory_init("m", 4, 8, vec![Bits::from_u64(7, 8)]);
    let zero = b.lit(0, 2);
    let data = b.lit(99, 8);
    let en = b.lit(1, 1);
    b.mem_write(mem, zero, data, en);
    let rd = b.mem_read(mem, zero);
    b.output("rd", rd);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    sim.step();
    assert_eq!(sim.output_value("rd").unwrap().to_u64(), 7); // old value
    sim.step();
    assert_eq!(sim.output_value("rd").unwrap().to_u64(), 99); // committed
}

#[test]
fn inputs_drive_logic() {
    let mut b = NetlistBuilder::new("io");
    let a = b.input("a", 8);
    let x = b.input("x", 8);
    let sum = b.add(a, x);
    b.output("sum", sum);
    let dummy = b.reg("d", 1, 0);
    let z = b.lit(0, 1);
    b.set_next(dummy, z);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    sim.set_input_by_name("a", Bits::from_u64(3, 8));
    sim.set_input_by_name("x", Bits::from_u64(4, 8));
    sim.step();
    assert_eq!(sim.output_value("sum").unwrap().to_u64(), 7);
}

#[test]
fn reg_en_holds_value() {
    let mut b = NetlistBuilder::new("en");
    let en = b.input("en", 1);
    let v = b.input("v", 8);
    let q = b.reg_en("r", 0, v, en);
    b.output("q", q);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    sim.set_input_by_name("v", Bits::from_u64(55, 8));
    sim.set_input_by_name("en", Bits::from_u64(0, 1));
    sim.step();
    assert_eq!(sim.output_value("q").unwrap().to_u64(), 0); // held
    sim.set_input_by_name("en", Bits::from_u64(1, 1));
    sim.step();
    sim.step();
    assert_eq!(sim.output_value("q").unwrap().to_u64(), 55);
}

#[test]
fn rotr_const_rotates() {
    let mut b = NetlistBuilder::new("rot");
    let v = b.lit(0b0001_1000, 8);
    let r = b.rotr_const(v, 3);
    b.output("r", r);
    let d = b.reg("d", 1, 0);
    let z = b.lit(0, 1);
    b.set_next(d, z);
    let n = b.finish_build().unwrap();
    let mut sim = Evaluator::new(&n);
    sim.step();
    assert_eq!(sim.output_value("r").unwrap().to_u64(), 0b0000_0011);
}

#[test]
fn topo_order_is_valid() {
    let mut b = NetlistBuilder::new("t");
    let a = b.lit(1, 8);
    let c = b.lit(2, 8);
    let s = b.add(a, c);
    let t = b.mul(s, a);
    let r = b.reg("r", 8, 0);
    let u = b.xor(t, r.q());
    b.set_next(r, u);
    let n = b.finish_build().unwrap();
    let order = topo::topological_order(&n).unwrap();
    assert_eq!(order.len(), n.nets().len());
    let pos: std::collections::HashMap<_, _> =
        order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
    for (i, net) in n.nets().iter().enumerate() {
        for arg in &net.args {
            assert!(pos[arg] < pos[&crate::NetId(i as u32)], "operand after use");
        }
    }
}

#[test]
fn fanin_cone_and_fanout() {
    let mut b = NetlistBuilder::new("cone");
    let a = b.lit(1, 8);
    let c = b.lit(2, 8);
    let s = b.add(a, c); // in cone of r.next
    let unrelated = b.mul(a, a); // not in cone
    let r = b.reg("r", 8, 0);
    b.set_next(r, s);
    b.output("u", unrelated);
    let n = b.finish_build().unwrap();
    let cone = topo::fanin_cone(&n, n.registers()[0].next);
    assert!(cone.contains(&s));
    assert!(cone.contains(&a));
    assert!(!cone.contains(&unrelated));
    let fo = topo::fanout_counts(&n);
    assert!(fo[a.index()] >= 3); // add + mul twice
}

#[test]
fn stats_sane() {
    let mut b = NetlistBuilder::new("s");
    let r = b.reg("r", 16, 0);
    let one = b.lit(1, 16);
    let n1 = b.add(r.q(), one);
    b.set_next(r, n1);
    b.memory("m", 64, 16);
    let n = b.finish_build().unwrap();
    let stats = NetlistStats::of(&n);
    assert_eq!(stats.registers, 1);
    assert_eq!(stats.state_bits, 16);
    assert_eq!(stats.memory_bits, 64 * 16);
    assert_eq!(stats.cell_mix["add"], 1);
    assert!(stats.critical_path >= 1);
}

/// Builds a random combinational expression tree over a few registers, to
/// cross-check evaluator behaviour vs. a direct Bits computation.
fn random_expr_netlist(seed: u64, depth: usize) -> (crate::Netlist, Bits) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("rand");
    let w = 16;
    // leaves: constants whose value we track
    let mut vals: Vec<(crate::NetId, Bits)> = (0..4)
        .map(|_| {
            let v = Bits::from_u64(rng.next_u64(), w);
            (b.constant(v.clone()), v)
        })
        .collect();
    for _ in 0..depth {
        let i = rng.gen_range(0..vals.len());
        let j = rng.gen_range(0..vals.len());
        let (ni, vi) = vals[i].clone();
        let (nj, vj) = vals[j].clone();
        let (net, val) = match rng.gen_range(0..6) {
            0 => (b.add(ni, nj), vi.add(&vj)),
            1 => (b.sub(ni, nj), vi.sub(&vj)),
            2 => (b.and(ni, nj), vi.and(&vj)),
            3 => (b.or(ni, nj), vi.or(&vj)),
            4 => (b.xor(ni, nj), vi.xor(&vj)),
            _ => (b.mul(ni, nj), vi.mul(&vj)),
        };
        vals.push((net, val));
    }
    let (root, expect) = vals.last().unwrap().clone();
    b.output("root", root);
    let d = b.reg("d", 1, 0);
    let z = b.lit(0, 1);
    b.set_next(d, z);
    (b.finish_build().unwrap(), expect)
}

#[test]
fn prop_random_expr_matches_bits() {
    let mut rng = SmallRng::seed_from_u64(0x21);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let depth = rng.gen_range(1..40);
        let (n, expect) = random_expr_netlist(seed, depth);
        let mut sim = Evaluator::new(&n);
        sim.step();
        assert_eq!(
            sim.output_value("root").unwrap(),
            &expect,
            "random expr diverged (seed {seed}, depth {depth})"
        );
    }
}
