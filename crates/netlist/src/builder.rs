//! A typed builder DSL for constructing netlists.
//!
//! This module stands in for the paper's Yosys Verilog frontend: workload
//! generators describe circuits with ordinary Rust code and the builder
//! enforces the structural invariants (width agreement, id validity,
//! acyclicity) that a synthesis frontend would guarantee.

use std::fmt;

use manticore_bits::{Bits, MAX_WIDTH};

use crate::ir::{
    CellOp, DisplayCell, ExpectCell, FinishCell, MemWrite, Memory, MemoryId, Net, NetId, Netlist,
    RegId, Register,
};
use crate::topo;

/// Error produced when a netlist violates a structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A register was created but [`NetlistBuilder::set_next`] was never
    /// called for it.
    UnconnectedRegister {
        /// Name of the offending register.
        name: String,
    },
    /// The combinational logic contains a cycle (no valid evaluation order).
    CombinationalLoop {
        /// One net on the cycle, for diagnostics.
        net: NetId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnconnectedRegister { name } => {
                write!(f, "register `{name}` has no next-value connection")
            }
            BuildError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net:?}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Handle to a register under construction. Obtain with
/// [`NetlistBuilder::reg`]; read the current value with [`RegHandle::q`] and
/// connect the next value with [`NetlistBuilder::set_next`].
#[derive(Debug, Clone, Copy)]
pub struct RegHandle {
    pub(crate) id: RegId,
    pub(crate) q: NetId,
    pub(crate) width: usize,
}

impl RegHandle {
    /// The net carrying the register's current-cycle value.
    pub fn q(&self) -> NetId {
        self.q
    }

    /// The register id.
    pub fn id(&self) -> RegId {
        self.id
    }

    /// The register width in bits.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Handle to a memory bank under construction.
#[derive(Debug, Clone, Copy)]
pub struct MemHandle {
    pub(crate) id: MemoryId,
    pub(crate) depth: usize,
    pub(crate) width: usize,
}

impl MemHandle {
    /// The memory id.
    pub fn id(&self) -> MemoryId {
        self.id
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// Builds a [`Netlist`] cell by cell.
///
/// Construction methods panic on width mismatches — these are design bugs in
/// the circuit generator, exactly like a Verilog elaboration error, so they
/// are not recoverable conditions. [`NetlistBuilder::finish_build`] returns
/// a [`BuildError`] for global properties (unconnected registers,
/// combinational loops) that can only be checked at the end.
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    registers: Vec<RegisterSlot>,
    memories: Vec<Memory>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
    displays: Vec<DisplayCell>,
    expects: Vec<ExpectCell>,
    finishes: Vec<FinishCell>,
    next_expect_id: u32,
}

#[derive(Debug)]
struct RegisterSlot {
    name: String,
    width: usize,
    init: Bits,
    q: NetId,
    next: Option<NetId>,
}

impl NetlistBuilder {
    /// Creates a builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            nets: Vec::new(),
            registers: Vec::new(),
            memories: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            displays: Vec::new(),
            expects: Vec::new(),
            finishes: Vec::new(),
            next_expect_id: 0,
        }
    }

    fn push(&mut self, op: CellOp, args: Vec<NetId>, width: usize) -> NetId {
        assert!(width > 0 && width <= MAX_WIDTH, "invalid net width {width}");
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { op, args, width });
        id
    }

    /// Width of an existing net.
    pub fn width(&self, net: NetId) -> usize {
        self.nets[net.index()].width
    }

    fn check_same(&self, a: NetId, b: NetId, what: &str) -> usize {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "{what}: operand widths differ ({wa} vs {wb})");
        wa
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    /// A constant net holding `value`.
    pub fn constant(&mut self, value: Bits) -> NetId {
        let w = value.width();
        self.push(CellOp::Const(value), vec![], w)
    }

    /// A constant net from a `u64` literal (convenience for
    /// [`NetlistBuilder::constant`]).
    pub fn lit(&mut self, value: u64, width: usize) -> NetId {
        self.constant(Bits::from_u64(value, width))
    }

    /// A primary input named `name`, driven by the stimulus each cycle.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> NetId {
        let id = self.push(CellOp::Input, vec![], width);
        self.inputs.push((name.into(), id));
        id
    }

    /// Declares a register; returns a handle whose `q()` net reads the
    /// current value. The next value must be connected with
    /// [`NetlistBuilder::set_next`] before [`NetlistBuilder::finish_build`].
    pub fn reg(&mut self, name: impl Into<String>, width: usize, init: u64) -> RegHandle {
        self.reg_init(name, width, Bits::from_u64(init, width))
    }

    /// Like [`NetlistBuilder::reg`] with an arbitrary-width initial value.
    pub fn reg_init(&mut self, name: impl Into<String>, width: usize, init: Bits) -> RegHandle {
        assert_eq!(init.width(), width, "register init width mismatch");
        let reg_id = RegId(self.registers.len() as u32);
        let q = self.push(CellOp::RegQ(reg_id), vec![], width);
        self.registers.push(RegisterSlot {
            name: name.into(),
            width,
            init,
            q,
            next: None,
        });
        RegHandle {
            id: reg_id,
            q,
            width,
        }
    }

    /// Connects the next-cycle value of `reg`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or double connection.
    pub fn set_next(&mut self, reg: RegHandle, next: NetId) {
        assert_eq!(
            self.width(next),
            reg.width,
            "register `{}` next-value width mismatch",
            self.registers[reg.id.index()].name
        );
        let slot = &mut self.registers[reg.id.index()];
        assert!(
            slot.next.is_none(),
            "register `{}` already has a next value",
            slot.name
        );
        slot.next = Some(next);
    }

    /// Convenience: a register that holds `next` when `en` is set, else its
    /// own value (`if (en) r <= next`).
    pub fn reg_en(&mut self, name: impl Into<String>, init: u64, next: NetId, en: NetId) -> NetId {
        let w = self.width(next);
        let r = self.reg(name, w, init);
        let held = self.mux(en, next, r.q());
        self.set_next(r, held);
        r.q()
    }

    /// Declares a memory with all-zero initial contents.
    pub fn memory(&mut self, name: impl Into<String>, depth: usize, width: usize) -> MemHandle {
        self.memory_init(name, depth, width, Vec::new())
    }

    /// Declares a memory with initial contents (`init` may be shorter than
    /// `depth`; remaining words are zero).
    pub fn memory_init(
        &mut self,
        name: impl Into<String>,
        depth: usize,
        width: usize,
        init: Vec<Bits>,
    ) -> MemHandle {
        assert!(depth > 0, "memory depth must be non-zero");
        assert!(init.len() <= depth, "memory init longer than depth");
        for w in &init {
            assert_eq!(w.width(), width, "memory init word width mismatch");
        }
        let id = MemoryId(self.memories.len() as u32);
        self.memories.push(Memory {
            name: name.into(),
            depth,
            width,
            init,
            writes: Vec::new(),
        });
        MemHandle { id, depth, width }
    }

    /// Asynchronous read port: `mem[addr]`.
    pub fn mem_read(&mut self, mem: MemHandle, addr: NetId) -> NetId {
        self.push(CellOp::MemRead(mem.id), vec![addr], mem.width)
    }

    /// Synchronous write port: `if (en) mem[addr] <= data` at the clock edge.
    pub fn mem_write(&mut self, mem: MemHandle, addr: NetId, data: NetId, en: NetId) {
        assert_eq!(self.width(data), mem.width, "memory write data width");
        assert_eq!(self.width(en), 1, "memory write enable must be 1 bit");
        self.memories[mem.id.index()]
            .writes
            .push(MemWrite { addr, data, en });
    }

    // ------------------------------------------------------------------
    // Combinational operators
    // ------------------------------------------------------------------

    /// Bitwise AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "and");
        self.push(CellOp::And, vec![a, b], w)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "or");
        self.push(CellOp::Or, vec![a, b], w)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "xor");
        self.push(CellOp::Xor, vec![a, b], w)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NetId) -> NetId {
        let w = self.width(a);
        self.push(CellOp::Not, vec![a], w)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "add");
        self.push(CellOp::Add, vec![a, b], w)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "sub");
        self.push(CellOp::Sub, vec![a, b], w)
    }

    /// Wrapping multiplication (result width = operand width).
    pub fn mul(&mut self, a: NetId, b: NetId) -> NetId {
        let w = self.check_same(a, b, "mul");
        self.push(CellOp::Mul, vec![a, b], w)
    }

    /// Equality (1-bit result).
    pub fn eq(&mut self, a: NetId, b: NetId) -> NetId {
        self.check_same(a, b, "eq");
        self.push(CellOp::Eq, vec![a, b], 1)
    }

    /// Inequality (1-bit result), sugar for `not(eq(a, b))`.
    pub fn ne(&mut self, a: NetId, b: NetId) -> NetId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: NetId, b: NetId) -> NetId {
        self.check_same(a, b, "ult");
        self.push(CellOp::Ult, vec![a, b], 1)
    }

    /// Signed less-than (1-bit result).
    pub fn slt(&mut self, a: NetId, b: NetId) -> NetId {
        self.check_same(a, b, "slt");
        self.push(CellOp::Slt, vec![a, b], 1)
    }

    /// Unsigned greater-or-equal (1-bit result).
    pub fn uge(&mut self, a: NetId, b: NetId) -> NetId {
        let lt = self.ult(a, b);
        self.not(lt)
    }

    /// Dynamic logical shift left.
    pub fn shl(&mut self, value: NetId, amount: NetId) -> NetId {
        let w = self.width(value);
        self.push(CellOp::Shl, vec![value, amount], w)
    }

    /// Dynamic logical shift right.
    pub fn shr(&mut self, value: NetId, amount: NetId) -> NetId {
        let w = self.width(value);
        self.push(CellOp::Shr, vec![value, amount], w)
    }

    /// Dynamic arithmetic shift right.
    pub fn ashr(&mut self, value: NetId, amount: NetId) -> NetId {
        let w = self.width(value);
        self.push(CellOp::Ashr, vec![value, amount], w)
    }

    /// Constant logical shift left (`value << k`).
    pub fn shl_const(&mut self, value: NetId, k: usize) -> NetId {
        let w = self.width(value);
        let amt = self.lit(k as u64, shift_amount_width(w));
        self.shl(value, amt)
    }

    /// Constant logical shift right (`value >> k`).
    pub fn shr_const(&mut self, value: NetId, k: usize) -> NetId {
        let w = self.width(value);
        let amt = self.lit(k as u64, shift_amount_width(w));
        self.shr(value, amt)
    }

    /// Rotate right by a constant amount.
    pub fn rotr_const(&mut self, value: NetId, k: usize) -> NetId {
        let w = self.width(value);
        let k = k % w;
        if k == 0 {
            return value;
        }
        // (v >> k) | (v << (w-k)): the low k bits wrap to the top.
        let wraps_to_top = self.slice(value, 0, k);
        let shifted_down = self.slice(value, k, w - k);
        self.concat(wraps_to_top, shifted_down)
    }

    /// Bit slice `value[offset +: width]`.
    pub fn slice(&mut self, value: NetId, offset: usize, width: usize) -> NetId {
        let src_w = self.width(value);
        assert!(
            offset + width <= src_w,
            "slice [{offset} +: {width}] out of range for width {src_w}"
        );
        if offset == 0 && width == src_w {
            return value;
        }
        self.push(CellOp::Slice { offset }, vec![value], width)
    }

    /// Single-bit extract `value[bit]`.
    pub fn bit(&mut self, value: NetId, bit: usize) -> NetId {
        self.slice(value, bit, 1)
    }

    /// Concatenation `{hi, lo}`.
    pub fn concat(&mut self, hi: NetId, lo: NetId) -> NetId {
        let w = self.width(hi) + self.width(lo);
        self.push(CellOp::Concat, vec![lo, hi], w)
    }

    /// Concatenation of many parts, most-significant first.
    pub fn concat_all(&mut self, parts_msb_first: &[NetId]) -> NetId {
        assert!(!parts_msb_first.is_empty(), "concat of zero parts");
        let mut acc = parts_msb_first[0];
        for &p in &parts_msb_first[1..] {
            acc = self.concat(acc, p);
        }
        acc
    }

    /// Zero-extends `value` to `width`.
    pub fn zext(&mut self, value: NetId, width: usize) -> NetId {
        let w = self.width(value);
        assert!(width >= w, "zext target narrower than source");
        if width == w {
            return value;
        }
        self.push(CellOp::ZExt, vec![value], width)
    }

    /// Sign-extends `value` to `width`.
    pub fn sext(&mut self, value: NetId, width: usize) -> NetId {
        let w = self.width(value);
        assert!(width >= w, "sext target narrower than source");
        if width == w {
            return value;
        }
        self.push(CellOp::SExt, vec![value], width)
    }

    /// 2:1 multiplexer `sel ? if_true : if_false` (`sel` must be 1 bit).
    pub fn mux(&mut self, sel: NetId, if_true: NetId, if_false: NetId) -> NetId {
        assert_eq!(self.width(sel), 1, "mux select must be 1 bit");
        let w = self.check_same(if_true, if_false, "mux");
        self.push(CellOp::Mux, vec![sel, if_true, if_false], w)
    }

    /// Reduction OR.
    pub fn reduce_or(&mut self, value: NetId) -> NetId {
        self.push(CellOp::RedOr, vec![value], 1)
    }

    /// Reduction AND.
    pub fn reduce_and(&mut self, value: NetId) -> NetId {
        self.push(CellOp::RedAnd, vec![value], 1)
    }

    /// Reduction XOR (parity).
    pub fn reduce_xor(&mut self, value: NetId) -> NetId {
        self.push(CellOp::RedXor, vec![value], 1)
    }

    // ------------------------------------------------------------------
    // Testbench cells
    // ------------------------------------------------------------------

    /// Registers a named observation point.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// `$display(format, args...)` guarded by 1-bit `cond`.
    pub fn display(&mut self, cond: NetId, format: impl Into<String>, args: &[NetId]) {
        assert_eq!(self.width(cond), 1, "display condition must be 1 bit");
        self.displays.push(DisplayCell {
            cond,
            format: format.into(),
            args: args.to_vec(),
        });
    }

    /// Asserts that 1-bit `cond` is true every cycle; returns the assertion id.
    pub fn expect_true(&mut self, cond: NetId, message: impl Into<String>) -> u32 {
        assert_eq!(self.width(cond), 1, "expect condition must be 1 bit");
        let id = self.next_expect_id;
        self.next_expect_id += 1;
        self.expects.push(ExpectCell {
            cond,
            id,
            message: message.into(),
        });
        id
    }

    /// `$finish` when 1-bit `cond` is true.
    pub fn finish(&mut self, cond: NetId) {
        assert_eq!(self.width(cond), 1, "finish condition must be 1 bit");
        self.finishes.push(FinishCell { cond });
    }

    /// Validates global invariants and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnconnectedRegister`] if any register lacks a
    /// next value and [`BuildError::CombinationalLoop`] if the combinational
    /// logic is cyclic.
    pub fn finish_build(self) -> Result<Netlist, BuildError> {
        let mut registers = Vec::with_capacity(self.registers.len());
        for slot in self.registers {
            let next = slot.next.ok_or(BuildError::UnconnectedRegister {
                name: slot.name.clone(),
            })?;
            registers.push(Register {
                name: slot.name,
                width: slot.width,
                init: slot.init,
                next,
                q: slot.q,
            });
        }
        let netlist = Netlist {
            name: self.name,
            nets: self.nets,
            registers,
            memories: self.memories,
            inputs: self.inputs,
            outputs: self.outputs,
            displays: self.displays,
            expects: self.expects,
            finishes: self.finishes,
        };
        // Nets are created in dependency order by construction *except* that
        // nothing prevents a generator from using ids out of order, so check.
        if let Err(net) = topo::topological_order(&netlist) {
            return Err(BuildError::CombinationalLoop { net });
        }
        Ok(netlist)
    }
}

/// Width of a shift-amount operand able to express `0..width`.
fn shift_amount_width(width: usize) -> usize {
    (usize::BITS - (width as u32).leading_zeros()) as usize
}
