//! The netlist intermediate representation.

use manticore_bits::Bits;

/// Identifies a net (a single-assignment combinational value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

/// Identifies a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u32);

/// Identifies a memory bank (Verilog unpacked array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemoryId(pub u32);

impl NetId {
    /// The index of this net in [`Netlist::nets`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RegId {
    /// The index of this register in [`Netlist::registers`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MemoryId {
    /// The index of this memory in [`Netlist::memories`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The operation computed by a cell. Operand nets live in [`Net::args`].
///
/// All binary arithmetic/logic ops require equal operand widths; the builder
/// enforces this at construction time (`C-VALIDATE`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellOp {
    /// A constant value. Width is the constant's width.
    Const(Bits),
    /// A primary input, driven by the test stimulus each cycle.
    Input,
    /// The current-cycle value of a register (the `-` node of the paper's DAG).
    RegQ(RegId),
    /// Combinational (asynchronous) read of `mem[addr]`; `args = [addr]`.
    MemRead(MemoryId),
    /// Bitwise AND; `args = [a, b]`.
    And,
    /// Bitwise OR; `args = [a, b]`.
    Or,
    /// Bitwise XOR; `args = [a, b]`.
    Xor,
    /// Bitwise NOT; `args = [a]`.
    Not,
    /// Wrapping addition; `args = [a, b]`.
    Add,
    /// Wrapping subtraction; `args = [a, b]`.
    Sub,
    /// Wrapping multiplication (result width = operand width); `args = [a, b]`.
    Mul,
    /// Equality, 1-bit result; `args = [a, b]`.
    Eq,
    /// Unsigned less-than, 1-bit result; `args = [a, b]`.
    Ult,
    /// Signed less-than, 1-bit result; `args = [a, b]`.
    Slt,
    /// Dynamic logical shift left; `args = [value, amount]`.
    Shl,
    /// Dynamic logical shift right; `args = [value, amount]`.
    Shr,
    /// Dynamic arithmetic shift right; `args = [value, amount]`.
    Ashr,
    /// Bit slice `value[offset +: width]`; `args = [value]`, result width = `width`.
    Slice {
        /// LSB offset of the slice.
        offset: usize,
    },
    /// Concatenation `{hi, lo}`; `args = [lo, hi]`, result width = sum.
    Concat,
    /// Zero extension; `args = [value]`.
    ZExt,
    /// Sign extension; `args = [value]`.
    SExt,
    /// 2:1 multiplexer; `args = [sel, if_true, if_false]`, `sel` is 1 bit.
    Mux,
    /// Reduction OR (1-bit); `args = [value]`.
    RedOr,
    /// Reduction AND (1-bit); `args = [value]`.
    RedAnd,
    /// Reduction XOR (1-bit); `args = [value]`.
    RedXor,
}

impl CellOp {
    /// True for ops that are pure bitwise logic (candidates for custom
    /// function synthesis, §6.2 of the paper).
    pub fn is_bitwise_logic(&self) -> bool {
        matches!(self, CellOp::And | CellOp::Or | CellOp::Xor | CellOp::Not)
    }

    /// True for source nodes of the combinational DAG (no net operands
    /// participate in ordering).
    pub fn is_source(&self) -> bool {
        matches!(self, CellOp::Const(_) | CellOp::Input | CellOp::RegQ(_))
    }

    /// Short mnemonic used in debug dumps and statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CellOp::Const(_) => "const",
            CellOp::Input => "input",
            CellOp::RegQ(_) => "regq",
            CellOp::MemRead(_) => "memread",
            CellOp::And => "and",
            CellOp::Or => "or",
            CellOp::Xor => "xor",
            CellOp::Not => "not",
            CellOp::Add => "add",
            CellOp::Sub => "sub",
            CellOp::Mul => "mul",
            CellOp::Eq => "eq",
            CellOp::Ult => "ult",
            CellOp::Slt => "slt",
            CellOp::Shl => "shl",
            CellOp::Shr => "shr",
            CellOp::Ashr => "ashr",
            CellOp::Slice { .. } => "slice",
            CellOp::Concat => "concat",
            CellOp::ZExt => "zext",
            CellOp::SExt => "sext",
            CellOp::Mux => "mux",
            CellOp::RedOr => "redor",
            CellOp::RedAnd => "redand",
            CellOp::RedXor => "redxor",
        }
    }
}

/// A single net: the value produced by one cell.
#[derive(Debug, Clone)]
pub struct Net {
    /// The operation producing this net.
    pub op: CellOp,
    /// Operand nets, in the order documented on [`CellOp`].
    pub args: Vec<NetId>,
    /// Width in bits of the produced value.
    pub width: usize,
}

/// A register: `q` holds the current value, `next` computes the next value.
#[derive(Debug, Clone)]
pub struct Register {
    /// Debug name.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Reset / power-on value.
    pub init: Bits,
    /// The net computing the next value (sink of the combinational DAG).
    pub next: NetId,
    /// The net exposing the current value (source of the combinational DAG).
    pub q: NetId,
}

/// A synchronous-write, asynchronous-read memory bank.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Debug name.
    pub name: String,
    /// Number of words.
    pub depth: usize,
    /// Word width in bits.
    pub width: usize,
    /// Initial contents (empty means all zeros).
    pub init: Vec<Bits>,
    /// Write ports, applied at the clock edge after all reads.
    pub writes: Vec<MemWrite>,
}

/// One synchronous write port: `if en { mem[addr] <= data }`.
#[derive(Debug, Clone)]
pub struct MemWrite {
    /// Address net.
    pub addr: NetId,
    /// Data net (must match the memory word width).
    pub data: NetId,
    /// 1-bit write-enable net.
    pub en: NetId,
}

/// A `$display`-style testbench cell: fires when `cond` is non-zero.
#[derive(Debug, Clone)]
pub struct DisplayCell {
    /// 1-bit condition net.
    pub cond: NetId,
    /// Format string; `{}` placeholders consume `args` in order.
    pub format: String,
    /// Value nets printed by the placeholders.
    pub args: Vec<NetId>,
}

/// An assertion: if `cond` is zero when sampled, the simulation reports a
/// failure with this id/message. This is the netlist-level source of the
/// Manticore `EXPECT` instruction.
#[derive(Debug, Clone)]
pub struct ExpectCell {
    /// 1-bit condition net that must be non-zero every cycle.
    pub cond: NetId,
    /// Stable identifier reported to the host on failure.
    pub id: u32,
    /// Human-readable message.
    pub message: String,
}

/// A `$finish` cell: ends the simulation when `cond` is non-zero.
#[derive(Debug, Clone)]
pub struct FinishCell {
    /// 1-bit condition net.
    pub cond: NetId,
}

/// A complete single-clock netlist.
///
/// Construct with [`crate::NetlistBuilder`]; fields are read-only outside
/// this crate to preserve the structural invariants the builder checks
/// (operand widths, acyclicity, id validity).
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) registers: Vec<Register>,
    pub(crate) memories: Vec<Memory>,
    pub(crate) inputs: Vec<(String, NetId)>,
    pub(crate) outputs: Vec<(String, NetId)>,
    pub(crate) displays: Vec<DisplayCell>,
    pub(crate) expects: Vec<ExpectCell>,
    pub(crate) finishes: Vec<FinishCell>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net record for `id`.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// All registers, indexable by [`RegId::index`].
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// All memories, indexable by [`MemoryId::index`].
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// Primary inputs as `(name, net)` pairs.
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Named observation points as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// `$display` cells.
    pub fn displays(&self) -> &[DisplayCell] {
        &self.displays
    }

    /// Assertion cells.
    pub fn expects(&self) -> &[ExpectCell] {
        &self.expects
    }

    /// `$finish` cells.
    pub fn finishes(&self) -> &[FinishCell] {
        &self.finishes
    }

    /// Looks up an output net by name.
    pub fn output(&self, name: &str) -> Option<NetId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
    }

    /// All sink nets of the combinational DAG: register `next` inputs, memory
    /// write-port nets, and testbench condition/argument nets. These are the
    /// roots from which the compiler's per-sink cones are grown (§3.2).
    pub fn sink_nets(&self) -> Vec<NetId> {
        let mut sinks = Vec::new();
        for r in &self.registers {
            sinks.push(r.next);
        }
        for m in &self.memories {
            for w in &m.writes {
                sinks.push(w.addr);
                sinks.push(w.data);
                sinks.push(w.en);
            }
        }
        for d in &self.displays {
            sinks.push(d.cond);
            sinks.extend(&d.args);
        }
        for e in &self.expects {
            sinks.push(e.cond);
        }
        for f in &self.finishes {
            sinks.push(f.cond);
        }
        sinks.sort_unstable();
        sinks.dedup();
        sinks
    }
}
