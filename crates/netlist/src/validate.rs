//! A validating constructor for deserialized netlists.
//!
//! [`NetlistBuilder`](crate::NetlistBuilder) enforces the IR's structural
//! invariants with assertions — the right contract for programmatic
//! construction, where a width mismatch is a bug in the calling code. A
//! netlist decoded from an *untrusted* source (the serve crate's wire
//! format) must not be able to reach those assertions: a hostile payload
//! panicking the decoding thread is a denial of service. This module is
//! the panic-free counterpart: [`Netlist::from_parts`] takes raw IR
//! pieces, checks every invariant the builder asserts (id validity,
//! operand counts, width rules, register/memory wiring, acyclicity), and
//! returns a typed [`ValidateError`] instead of panicking.
//!
//! The invariants checked here are exactly the ones the rest of the stack
//! (the evaluator, the compiler's lowering pass) relies on; a netlist
//! accepted by `from_parts` is as trustworthy as one built with the DSL.

use std::fmt;

use manticore_bits::MAX_WIDTH;

use crate::ir::{
    CellOp, DisplayCell, ExpectCell, FinishCell, Memory, Net, NetId, Netlist, Register,
};
use crate::topo;

/// Why a deserialized netlist was rejected. Indices identify the
/// offending element; `detail` is a human-readable explanation suitable
/// for echoing back to the submitting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A net is structurally invalid (bad width, bad operand reference,
    /// wrong operand count, width-rule violation).
    BadNet {
        /// Index of the offending net.
        net: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A register is mis-wired (bad width, init mismatch, dangling or
    /// mismatched `next`/`q` nets).
    BadRegister {
        /// Index of the offending register.
        register: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A memory is structurally invalid (bad geometry, init overflow,
    /// mis-wired write port).
    BadMemory {
        /// Index of the offending memory.
        memory: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A testbench cell or named port references a missing or wrongly
    /// sized net.
    BadPort {
        /// Which cell family (`output`, `input`, `display`, `expect`,
        /// `finish`).
        kind: &'static str,
        /// Index within that family.
        index: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalLoop {
        /// One net on the cycle.
        net: NetId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadNet { net, detail } => write!(f, "net {net}: {detail}"),
            ValidateError::BadRegister { register, detail } => {
                write!(f, "register {register}: {detail}")
            }
            ValidateError::BadMemory { memory, detail } => write!(f, "memory {memory}: {detail}"),
            ValidateError::BadPort {
                kind,
                index,
                detail,
            } => write!(f, "{kind} {index}: {detail}"),
            ValidateError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {}", net.0)
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// The raw pieces of a netlist, as a decoder produces them. All ids are
/// plain indices into the sibling vectors; nothing is trusted until
/// [`Netlist::from_parts`] has checked it.
#[derive(Debug, Clone, Default)]
pub struct NetlistParts {
    /// Design name (free-form; used in diagnostics only).
    pub name: String,
    /// All nets; [`Net::args`] reference indices in this vector.
    pub nets: Vec<Net>,
    /// All registers; their `next`/`q` fields reference `nets`.
    pub registers: Vec<Register>,
    /// All memories; write ports reference `nets`.
    pub memories: Vec<Memory>,
    /// Primary inputs as `(name, net)` pairs.
    pub inputs: Vec<(String, NetId)>,
    /// Named observation points as `(name, net)` pairs.
    pub outputs: Vec<(String, NetId)>,
    /// `$display` cells.
    pub displays: Vec<DisplayCell>,
    /// Assertion cells.
    pub expects: Vec<ExpectCell>,
    /// `$finish` cells.
    pub finishes: Vec<FinishCell>,
}

impl Netlist {
    /// Builds a [`Netlist`] from untrusted raw parts, verifying every
    /// structural invariant the builder asserts: net widths in
    /// `1..=MAX_WIDTH`, operand counts and width rules per [`CellOp`],
    /// id validity everywhere, register `next`/`q` wiring, memory
    /// geometry and write-port widths, 1-bit testbench conditions, and
    /// combinational acyclicity. Never panics on any input.
    ///
    /// # Errors
    ///
    /// The first [`ValidateError`] found, in net / register / memory /
    /// port / cycle order.
    pub fn from_parts(parts: NetlistParts) -> Result<Netlist, ValidateError> {
        let NetlistParts {
            name,
            nets,
            registers,
            memories,
            inputs,
            outputs,
            displays,
            expects,
            finishes,
        } = parts;

        let bad_net = |net: usize, detail: String| ValidateError::BadNet { net, detail };
        let width_of = |id: NetId| nets[id.index()].width;

        for (i, net) in nets.iter().enumerate() {
            if net.width == 0 || net.width > MAX_WIDTH {
                return Err(bad_net(
                    i,
                    format!("width {} outside 1..={MAX_WIDTH}", net.width),
                ));
            }
            for &arg in &net.args {
                if arg.index() >= nets.len() {
                    return Err(bad_net(
                        i,
                        format!("operand {} out of range ({} nets)", arg.0, nets.len()),
                    ));
                }
            }
            let want_args = match net.op {
                CellOp::Const(_) | CellOp::Input | CellOp::RegQ(_) => 0,
                CellOp::Not
                | CellOp::Slice { .. }
                | CellOp::ZExt
                | CellOp::SExt
                | CellOp::RedOr
                | CellOp::RedAnd
                | CellOp::RedXor
                | CellOp::MemRead(_) => 1,
                CellOp::And
                | CellOp::Or
                | CellOp::Xor
                | CellOp::Add
                | CellOp::Sub
                | CellOp::Mul
                | CellOp::Eq
                | CellOp::Ult
                | CellOp::Slt
                | CellOp::Shl
                | CellOp::Shr
                | CellOp::Ashr
                | CellOp::Concat => 2,
                CellOp::Mux => 3,
            };
            if net.args.len() != want_args {
                return Err(bad_net(
                    i,
                    format!(
                        "`{}` takes {want_args} operand(s), got {}",
                        net.op.mnemonic(),
                        net.args.len()
                    ),
                ));
            }
            match &net.op {
                CellOp::Const(bits) => {
                    if bits.width() != net.width {
                        return Err(bad_net(
                            i,
                            format!(
                                "constant is {} bits but the net is {}",
                                bits.width(),
                                net.width
                            ),
                        ));
                    }
                }
                CellOp::Input => {}
                CellOp::RegQ(r) => {
                    let Some(reg) = registers.get(r.index()) else {
                        return Err(bad_net(
                            i,
                            format!("references register {} of {}", r.0, registers.len()),
                        ));
                    };
                    if reg.width != net.width {
                        return Err(bad_net(
                            i,
                            format!(
                                "register is {} bits but the q net is {}",
                                reg.width, net.width
                            ),
                        ));
                    }
                }
                CellOp::MemRead(m) => {
                    let Some(mem) = memories.get(m.index()) else {
                        return Err(bad_net(
                            i,
                            format!("references memory {} of {}", m.0, memories.len()),
                        ));
                    };
                    if mem.width != net.width {
                        return Err(bad_net(
                            i,
                            format!(
                                "memory words are {} bits but the read net is {}",
                                mem.width, net.width
                            ),
                        ));
                    }
                }
                CellOp::And
                | CellOp::Or
                | CellOp::Xor
                | CellOp::Add
                | CellOp::Sub
                | CellOp::Mul => {
                    let (a, b) = (width_of(net.args[0]), width_of(net.args[1]));
                    if a != net.width || b != net.width {
                        return Err(bad_net(
                            i,
                            format!(
                                "operand widths {a}/{b} must equal the net width {}",
                                net.width
                            ),
                        ));
                    }
                }
                CellOp::Not => {
                    let a = width_of(net.args[0]);
                    if a != net.width {
                        return Err(bad_net(
                            i,
                            format!("operand width {a} must equal the net width {}", net.width),
                        ));
                    }
                }
                CellOp::Eq | CellOp::Ult | CellOp::Slt => {
                    let (a, b) = (width_of(net.args[0]), width_of(net.args[1]));
                    if a != b {
                        return Err(bad_net(i, format!("comparison operand widths {a} != {b}")));
                    }
                    if net.width != 1 {
                        return Err(bad_net(
                            i,
                            format!("comparison result must be 1 bit, got {}", net.width),
                        ));
                    }
                }
                CellOp::Shl | CellOp::Shr | CellOp::Ashr => {
                    let a = width_of(net.args[0]);
                    if a != net.width {
                        return Err(bad_net(
                            i,
                            format!("shifted value is {a} bits but the net is {}", net.width),
                        ));
                    }
                }
                CellOp::Slice { offset } => {
                    let a = width_of(net.args[0]);
                    if offset.checked_add(net.width).is_none_or(|end| end > a) {
                        return Err(bad_net(
                            i,
                            format!(
                                "slice [{offset} +: {}] exceeds the {a}-bit operand",
                                net.width
                            ),
                        ));
                    }
                }
                CellOp::Concat => {
                    let (lo, hi) = (width_of(net.args[0]), width_of(net.args[1]));
                    if lo + hi != net.width {
                        return Err(bad_net(
                            i,
                            format!("concat of {lo}+{hi} bits must be {} wide", lo + hi),
                        ));
                    }
                }
                CellOp::ZExt | CellOp::SExt => {
                    let a = width_of(net.args[0]);
                    if net.width < a {
                        return Err(bad_net(
                            i,
                            format!("extension from {a} to {} bits shrinks", net.width),
                        ));
                    }
                }
                CellOp::Mux => {
                    let sel = width_of(net.args[0]);
                    let (t, f_) = (width_of(net.args[1]), width_of(net.args[2]));
                    if sel != 1 {
                        return Err(bad_net(i, format!("mux select must be 1 bit, got {sel}")));
                    }
                    if t != net.width || f_ != net.width {
                        return Err(bad_net(
                            i,
                            format!("mux arms {t}/{f_} must equal the net width {}", net.width),
                        ));
                    }
                }
                CellOp::RedOr | CellOp::RedAnd | CellOp::RedXor => {
                    if net.width != 1 {
                        return Err(bad_net(
                            i,
                            format!("reduction result must be 1 bit, got {}", net.width),
                        ));
                    }
                }
            }
        }

        let check_id = |id: NetId| id.index() < nets.len();
        for (ri, reg) in registers.iter().enumerate() {
            let bad = |detail: String| ValidateError::BadRegister {
                register: ri,
                detail,
            };
            if reg.width == 0 || reg.width > MAX_WIDTH {
                return Err(bad(format!("width {} outside 1..={MAX_WIDTH}", reg.width)));
            }
            if reg.init.width() != reg.width {
                return Err(bad(format!(
                    "init value is {} bits for a {}-bit register",
                    reg.init.width(),
                    reg.width
                )));
            }
            if !check_id(reg.next) {
                return Err(bad(format!("next net {} out of range", reg.next.0)));
            }
            if width_of(reg.next) != reg.width {
                return Err(bad(format!(
                    "next net is {} bits for a {}-bit register",
                    width_of(reg.next),
                    reg.width
                )));
            }
            if !check_id(reg.q) {
                return Err(bad(format!("q net {} out of range", reg.q.0)));
            }
            let q_op = &nets[reg.q.index()].op;
            if !matches!(q_op, CellOp::RegQ(r) if r.index() == ri) {
                return Err(bad(format!(
                    "q net {} is `{}`, not this register's regq",
                    reg.q.0,
                    q_op.mnemonic()
                )));
            }
        }

        for (mi, mem) in memories.iter().enumerate() {
            let bad = |detail: String| ValidateError::BadMemory { memory: mi, detail };
            if mem.width == 0 || mem.width > MAX_WIDTH {
                return Err(bad(format!("width {} outside 1..={MAX_WIDTH}", mem.width)));
            }
            if mem.depth == 0 {
                return Err(bad("depth must be at least 1".to_string()));
            }
            if mem.init.len() > mem.depth {
                return Err(bad(format!(
                    "{} init words for a {}-deep memory",
                    mem.init.len(),
                    mem.depth
                )));
            }
            for (wi, word) in mem.init.iter().enumerate() {
                if word.width() != mem.width {
                    return Err(bad(format!(
                        "init word {wi} is {} bits for a {}-bit memory",
                        word.width(),
                        mem.width
                    )));
                }
            }
            for (pi, port) in mem.writes.iter().enumerate() {
                if !check_id(port.addr) || !check_id(port.data) || !check_id(port.en) {
                    return Err(bad(format!("write port {pi} references a missing net")));
                }
                if width_of(port.data) != mem.width {
                    return Err(bad(format!(
                        "write port {pi} data is {} bits for a {}-bit memory",
                        width_of(port.data),
                        mem.width
                    )));
                }
                if width_of(port.en) != 1 {
                    return Err(bad(format!(
                        "write port {pi} enable must be 1 bit, got {}",
                        width_of(port.en)
                    )));
                }
            }
        }

        let check_port =
            |kind: &'static str, index: usize, id: NetId| -> Result<(), ValidateError> {
                if !check_id(id) {
                    return Err(ValidateError::BadPort {
                        kind,
                        index,
                        detail: format!("net {} out of range", id.0),
                    });
                }
                Ok(())
            };
        let check_cond =
            |kind: &'static str, index: usize, id: NetId| -> Result<(), ValidateError> {
                check_port(kind, index, id)?;
                if width_of(id) != 1 {
                    return Err(ValidateError::BadPort {
                        kind,
                        index,
                        detail: format!("condition must be 1 bit, got {}", width_of(id)),
                    });
                }
                Ok(())
            };
        for (i, (_, id)) in inputs.iter().enumerate() {
            check_port("input", i, *id)?;
        }
        for (i, (_, id)) in outputs.iter().enumerate() {
            check_port("output", i, *id)?;
        }
        for (i, d) in displays.iter().enumerate() {
            check_cond("display", i, d.cond)?;
            for &arg in &d.args {
                check_port("display", i, arg)?;
            }
        }
        for (i, e) in expects.iter().enumerate() {
            check_cond("expect", i, e.cond)?;
        }
        for (i, f_) in finishes.iter().enumerate() {
            check_cond("finish", i, f_.cond)?;
        }

        let netlist = Netlist {
            name,
            nets,
            registers,
            memories,
            inputs,
            outputs,
            displays,
            expects,
            finishes,
        };
        topo::topological_order(&netlist)
            .map_err(|net| ValidateError::CombinationalLoop { net })?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;
    use manticore_bits::Bits;

    /// Decomposes a builder-made netlist into parts (what a decoder would
    /// produce) for round-trip checks.
    fn parts_of(n: &Netlist) -> NetlistParts {
        NetlistParts {
            name: n.name().to_string(),
            nets: n.nets().to_vec(),
            registers: n.registers().to_vec(),
            memories: n.memories().to_vec(),
            inputs: n.inputs().to_vec(),
            outputs: n.outputs().to_vec(),
            displays: n.displays().to_vec(),
            expects: n.expects().to_vec(),
            finishes: n.finishes().to_vec(),
        }
    }

    fn counter() -> Netlist {
        let mut b = NetlistBuilder::new("counter");
        let r = b.reg("count", 16, 7);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        b.finish_build().unwrap()
    }

    #[test]
    fn builder_output_round_trips_through_from_parts() {
        let n = counter();
        let back = Netlist::from_parts(parts_of(&n)).unwrap();
        assert_eq!(back.nets().len(), n.nets().len());
        assert_eq!(back.registers().len(), n.registers().len());
    }

    #[test]
    fn width_mismatches_are_typed_errors_not_panics() {
        // An add whose operands disagree with the net width.
        let mut parts = parts_of(&counter());
        let add = parts
            .nets
            .iter()
            .position(|n| matches!(n.op, CellOp::Add))
            .unwrap();
        parts.nets[add].width = 8;
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::BadNet { .. })
        ));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let mut parts = parts_of(&counter());
        let add = parts
            .nets
            .iter()
            .position(|n| matches!(n.op, CellOp::Add))
            .unwrap();
        parts.nets[add].args[0] = NetId(u32::MAX);
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::BadNet { .. })
        ));
    }

    #[test]
    fn miswired_register_q_is_rejected() {
        let mut parts = parts_of(&counter());
        // Point q at the add net instead of the regq net.
        let add = parts
            .nets
            .iter()
            .position(|n| matches!(n.op, CellOp::Add))
            .unwrap();
        parts.registers[0].q = NetId(add as u32);
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::BadRegister { .. })
        ));
    }

    #[test]
    fn bad_const_and_bad_init_are_rejected() {
        let mut parts = parts_of(&counter());
        let c = parts
            .nets
            .iter()
            .position(|n| matches!(n.op, CellOp::Const(_)))
            .unwrap();
        parts.nets[c].op = CellOp::Const(Bits::from_u64(1, 4));
        assert!(Netlist::from_parts(parts).is_err());

        let mut parts = parts_of(&counter());
        parts.registers[0].init = Bits::from_u64(0, 3);
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::BadRegister { .. })
        ));
    }

    #[test]
    fn combinational_loops_are_rejected() {
        // a = not b; b = not a — a 2-net cycle with consistent widths.
        let parts = NetlistParts {
            name: "loop".into(),
            nets: vec![
                Net {
                    op: CellOp::Not,
                    args: vec![NetId(1)],
                    width: 1,
                },
                Net {
                    op: CellOp::Not,
                    args: vec![NetId(0)],
                    width: 1,
                },
            ],
            ..NetlistParts::default()
        };
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn slice_overflow_cannot_wrap() {
        let parts = NetlistParts {
            name: "slice".into(),
            nets: vec![
                Net {
                    op: CellOp::Const(Bits::from_u64(0, 8)),
                    args: vec![],
                    width: 8,
                },
                Net {
                    op: CellOp::Slice { offset: usize::MAX },
                    args: vec![NetId(0)],
                    width: 2,
                },
            ],
            ..NetlistParts::default()
        };
        assert!(matches!(
            Netlist::from_parts(parts),
            Err(ValidateError::BadNet { .. })
        ));
    }
}
