//! Netlist statistics: the |V|, |E|, cell-mix numbers reported in the
//! paper's Table 8 and used to size experiments.

use std::collections::BTreeMap;
use std::fmt;

use crate::ir::Netlist;
use crate::topo;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total nets (DAG vertices).
    pub nets: usize,
    /// Total operand edges.
    pub edges: usize,
    /// Registers (state bits are `state_bits`).
    pub registers: usize,
    /// Total register state bits.
    pub state_bits: usize,
    /// Memory banks.
    pub memories: usize,
    /// Total memory bits.
    pub memory_bits: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Combinational critical path length in cells.
    pub critical_path: usize,
    /// Cell count per mnemonic.
    pub cell_mix: BTreeMap<&'static str, usize>,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut cell_mix: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut edges = 0;
        for net in netlist.nets() {
            *cell_mix.entry(net.op.mnemonic()).or_insert(0) += 1;
            edges += net.args.len();
        }
        NetlistStats {
            nets: netlist.nets().len(),
            edges,
            registers: netlist.registers().len(),
            state_bits: netlist.registers().iter().map(|r| r.width).sum(),
            memories: netlist.memories().len(),
            memory_bits: netlist.memories().iter().map(|m| m.depth * m.width).sum(),
            inputs: netlist.inputs().len(),
            critical_path: topo::critical_path_length(netlist),
            cell_mix,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nets={} edges={} regs={} state_bits={} mems={} mem_bits={} inputs={} critpath={}",
            self.nets,
            self.edges,
            self.registers,
            self.state_bits,
            self.memories,
            self.memory_bits,
            self.inputs,
            self.critical_path
        )?;
        for (k, v) in &self.cell_mix {
            writeln!(f, "  {k:>8}: {v}")?;
        }
        Ok(())
    }
}
