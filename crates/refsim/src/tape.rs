//! Tape codegen: netlist → flat, topologically-ordered op list over `u64`
//! values.
//!
//! This is the moral equivalent of Verilator's generated C++: one tightly
//! packed operation per net, evaluated in a fixed order every cycle. Nets
//! wider than 64 bits are rejected — the benchmark suite stays within
//! 64-bit nets, and the arbitrary-width reference path is
//! `manticore_netlist::eval`.

use std::fmt;

use manticore_bits::Bits;
use manticore_netlist::{topo, CellOp, NetId, Netlist};

/// Codegen errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    /// A net exceeds the 64-bit fast-path width.
    TooWide {
        /// The offending net.
        net: NetId,
        /// Its width.
        width: usize,
    },
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::TooWide { net, width } => {
                write!(f, "net {net:?} is {width} bits; the tape supports ≤ 64")
            }
        }
    }
}

impl std::error::Error for TapeError {}

/// One tape operation. `dst`/`a`/`b`/`c` index the value array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `v[dst] = imm`.
    Const { dst: u32, imm: u64 },
    /// `v[dst] = regs[idx]`.
    RegRead { dst: u32, idx: u32 },
    /// `v[dst] = mem[idx][v[a] % depth]` (0 out of range).
    MemRead { dst: u32, idx: u32, a: u32 },
    /// Binary ALU op: `v[dst] = f(v[a], v[b]) & mask`.
    Bin {
        kind: BinKind,
        dst: u32,
        a: u32,
        b: u32,
        mask: u64,
    },
    /// `v[dst] = !v[a] & mask`.
    Not { dst: u32, a: u32, mask: u64 },
    /// `v[dst] = (v[a] >> sh) & mask`.
    Slice { dst: u32, a: u32, sh: u8, mask: u64 },
    /// `v[dst] = (v[a] | (v[b] << sh)) & mask` (concat `{b, a}`).
    Concat {
        dst: u32,
        a: u32,
        b: u32,
        sh: u8,
        mask: u64,
    },
    /// `v[dst] = if v[a] != 0 { v[b] } else { v[c] }`.
    Mux { dst: u32, a: u32, b: u32, c: u32 },
    /// Sign extension from `from` bits: `v[dst] = sext(v[a]) & mask`.
    Sext {
        dst: u32,
        a: u32,
        from: u8,
        mask: u64,
    },
    /// Reductions.
    Red {
        kind: RedKind,
        dst: u32,
        a: u32,
        ones: u64,
    },
}

/// Binary op kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// Wrapping add.
    Add,
    /// Wrapping sub.
    Sub,
    /// Wrapping mul.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Signed less-than at the operand width (1-bit result).
    Slt { width: u8 },
    /// Dynamic shifts (amount ≥ width gives 0 / sign fill).
    Shl { width: u8 },
    /// Dynamic logical right shift.
    Shr { width: u8 },
    /// Dynamic arithmetic right shift.
    Ashr { width: u8 },
}

/// Reduction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedKind {
    /// OR-reduce.
    Or,
    /// AND-reduce (against the width's all-ones).
    And,
    /// XOR-reduce (parity).
    Xor,
}

/// A register commit: `regs[idx] = v[src]`.
#[derive(Debug, Clone, Copy)]
pub struct RegCommit {
    /// Register index.
    pub idx: u32,
    /// Value slot of the next value.
    pub src: u32,
}

/// A memory write port: `if v[en] != 0 { mem[idx][v[addr]] = v[data] }`.
#[derive(Debug, Clone, Copy)]
pub struct MemCommit {
    /// Memory index.
    pub idx: u32,
    /// Address slot.
    pub addr: u32,
    /// Data slot.
    pub data: u32,
    /// Enable slot.
    pub en: u32,
}

/// Testbench hooks evaluated after the compute phase.
#[derive(Debug, Clone)]
pub enum Check {
    /// `$display` when `cond` is non-zero.
    Display {
        /// Condition slot.
        cond: u32,
        /// Format string.
        format: String,
        /// `(slot, width)` per argument.
        args: Vec<(u32, u8)>,
    },
    /// Assertion: fails when `cond` is zero.
    Expect {
        /// Condition slot.
        cond: u32,
        /// Failure message.
        message: String,
    },
    /// `$finish` when `cond` is non-zero.
    Finish {
        /// Condition slot.
        cond: u32,
    },
}

/// The compiled tape.
#[derive(Debug, Clone)]
pub struct Tape {
    /// Compute ops in evaluation order (one per live net).
    pub ops: Vec<Op>,
    /// Value-array size.
    pub num_values: usize,
    /// Register initial values.
    pub reg_init: Vec<u64>,
    /// Register widths (for state readback).
    pub reg_widths: Vec<u8>,
    /// Memory initial contents.
    pub mem_init: Vec<Vec<u64>>,
    /// Register commits (applied at cycle end).
    pub reg_commits: Vec<RegCommit>,
    /// Memory commits (applied at cycle end, in port order).
    pub mem_commits: Vec<MemCommit>,
    /// Testbench checks.
    pub checks: Vec<Check>,
    /// Value slot of each net (dense, one slot per net).
    pub slot_of_net: Vec<u32>,
}

impl Tape {
    /// Compiles `netlist` into a tape.
    ///
    /// # Errors
    ///
    /// [`TapeError::TooWide`] for nets over 64 bits.
    pub fn compile(netlist: &Netlist) -> Result<Tape, TapeError> {
        for (i, net) in netlist.nets().iter().enumerate() {
            if net.width > 64 {
                return Err(TapeError::TooWide {
                    net: NetId(i as u32),
                    width: net.width,
                });
            }
        }
        let order = topo::topological_order(netlist).expect("netlist is acyclic");
        let slot_of_net: Vec<u32> = (0..netlist.nets().len() as u32).collect();
        let mask_of = |id: NetId| mask64(netlist.net(id).width);
        let mut ops = Vec::with_capacity(order.len());
        for id in order {
            let net = netlist.net(id);
            let dst = id.0;
            let a = |i: usize| net.args[i].0;
            let mask = mask64(net.width);
            let w = |i: usize| netlist.net(net.args[i]).width as u8;
            let op = match &net.op {
                CellOp::Const(c) => Op::Const {
                    dst,
                    imm: bits_to_u64(c),
                },
                CellOp::Input => Op::Const { dst, imm: 0 },
                CellOp::RegQ(r) => Op::RegRead { dst, idx: r.0 },
                CellOp::MemRead(m) => Op::MemRead {
                    dst,
                    idx: m.0,
                    a: a(0),
                },
                CellOp::And => Op::Bin {
                    kind: BinKind::And,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Or => Op::Bin {
                    kind: BinKind::Or,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Xor => Op::Bin {
                    kind: BinKind::Xor,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Not => Op::Not { dst, a: a(0), mask },
                CellOp::Add => Op::Bin {
                    kind: BinKind::Add,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Sub => Op::Bin {
                    kind: BinKind::Sub,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Mul => Op::Bin {
                    kind: BinKind::Mul,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Eq => Op::Bin {
                    kind: BinKind::Eq,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask: 1,
                },
                CellOp::Ult => Op::Bin {
                    kind: BinKind::Ult,
                    dst,
                    a: a(0),
                    b: a(1),
                    mask: 1,
                },
                CellOp::Slt => Op::Bin {
                    kind: BinKind::Slt { width: w(0) },
                    dst,
                    a: a(0),
                    b: a(1),
                    mask: 1,
                },
                CellOp::Shl => Op::Bin {
                    kind: BinKind::Shl {
                        width: net.width as u8,
                    },
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Shr => Op::Bin {
                    kind: BinKind::Shr {
                        width: net.width as u8,
                    },
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Ashr => Op::Bin {
                    kind: BinKind::Ashr {
                        width: net.width as u8,
                    },
                    dst,
                    a: a(0),
                    b: a(1),
                    mask,
                },
                CellOp::Slice { offset } => Op::Slice {
                    dst,
                    a: a(0),
                    sh: *offset as u8,
                    mask,
                },
                CellOp::Concat => Op::Concat {
                    dst,
                    a: a(0),
                    b: a(1),
                    sh: w(0),
                    mask,
                },
                CellOp::ZExt => Op::Slice {
                    dst,
                    a: a(0),
                    sh: 0,
                    mask: mask_of(net.args[0]),
                },
                CellOp::SExt => Op::Sext {
                    dst,
                    a: a(0),
                    from: w(0),
                    mask,
                },
                CellOp::Mux => Op::Mux {
                    dst,
                    a: a(0),
                    b: a(1),
                    c: a(2),
                },
                CellOp::RedOr => Op::Red {
                    kind: RedKind::Or,
                    dst,
                    a: a(0),
                    ones: 0,
                },
                CellOp::RedAnd => Op::Red {
                    kind: RedKind::And,
                    dst,
                    a: a(0),
                    ones: mask_of(net.args[0]),
                },
                CellOp::RedXor => Op::Red {
                    kind: RedKind::Xor,
                    dst,
                    a: a(0),
                    ones: 0,
                },
            };
            ops.push(op);
        }
        let reg_init = netlist
            .registers()
            .iter()
            .map(|r| bits_to_u64(&r.init))
            .collect();
        let reg_widths = netlist.registers().iter().map(|r| r.width as u8).collect();
        let mem_init = netlist
            .memories()
            .iter()
            .map(|m| {
                let mut words: Vec<u64> = m.init.iter().map(bits_to_u64).collect();
                words.resize(m.depth, 0);
                words
            })
            .collect();
        let reg_commits = netlist
            .registers()
            .iter()
            .enumerate()
            .map(|(i, r)| RegCommit {
                idx: i as u32,
                src: r.next.0,
            })
            .collect();
        let mut mem_commits = Vec::new();
        for (i, m) in netlist.memories().iter().enumerate() {
            for wport in &m.writes {
                mem_commits.push(MemCommit {
                    idx: i as u32,
                    addr: wport.addr.0,
                    data: wport.data.0,
                    en: wport.en.0,
                });
            }
        }
        let mut checks = Vec::new();
        for d in netlist.displays() {
            checks.push(Check::Display {
                cond: d.cond.0,
                format: d.format.clone(),
                args: d
                    .args
                    .iter()
                    .map(|x| (x.0, netlist.net(*x).width as u8))
                    .collect(),
            });
        }
        for e in netlist.expects() {
            checks.push(Check::Expect {
                cond: e.cond.0,
                message: e.message.clone(),
            });
        }
        for f in netlist.finishes() {
            checks.push(Check::Finish { cond: f.cond.0 });
        }
        Ok(Tape {
            ops,
            num_values: netlist.nets().len(),
            reg_init,
            reg_widths,
            mem_init,
            reg_commits,
            mem_commits,
            checks,
            slot_of_net,
        })
    }

    /// Ops per simulated cycle — the step-size metric of Table 3's
    /// "# instr" row.
    pub fn step_size(&self) -> usize {
        self.ops.len()
    }
}

/// Evaluates one op against the value array, register file and memories.
#[inline]
pub fn eval_op(op: &Op, v: &mut [u64], regs: &[u64], mems: &[Vec<u64>]) {
    match *op {
        Op::Const { dst, imm } => v[dst as usize] = imm,
        Op::RegRead { dst, idx } => v[dst as usize] = regs[idx as usize],
        Op::MemRead { dst, idx, a } => {
            let m = &mems[idx as usize];
            let addr = v[a as usize] as usize;
            v[dst as usize] = if addr < m.len() { m[addr] } else { 0 };
        }
        Op::Bin {
            kind,
            dst,
            a,
            b,
            mask,
        } => {
            let x = v[a as usize];
            let y = v[b as usize];
            v[dst as usize] = eval_bin(kind, x, y) & mask;
        }
        Op::Not { dst, a, mask } => v[dst as usize] = !v[a as usize] & mask,
        Op::Slice { dst, a, sh, mask } => v[dst as usize] = (v[a as usize] >> sh) & mask,
        Op::Concat {
            dst,
            a,
            b,
            sh,
            mask,
        } => v[dst as usize] = (v[a as usize] | (v[b as usize] << sh)) & mask,
        Op::Mux { dst, a, b, c } => {
            v[dst as usize] = if v[a as usize] != 0 {
                v[b as usize]
            } else {
                v[c as usize]
            }
        }
        Op::Sext { dst, a, from, mask } => {
            let x = v[a as usize];
            let sign = 64 - from as u32;
            v[dst as usize] = (((x << sign) as i64 >> sign) as u64) & mask;
        }
        Op::Red { kind, dst, a, ones } => {
            let x = v[a as usize];
            v[dst as usize] = match kind {
                RedKind::Or => (x != 0) as u64,
                RedKind::And => (x == ones) as u64,
                RedKind::Xor => (x.count_ones() & 1) as u64,
            };
        }
    }
}

#[inline]
fn eval_bin(kind: BinKind, x: u64, y: u64) -> u64 {
    match kind {
        BinKind::Add => x.wrapping_add(y),
        BinKind::Sub => x.wrapping_sub(y),
        BinKind::Mul => x.wrapping_mul(y),
        BinKind::And => x & y,
        BinKind::Or => x | y,
        BinKind::Xor => x ^ y,
        BinKind::Eq => (x == y) as u64,
        BinKind::Ult => (x < y) as u64,
        BinKind::Slt { width } => {
            let s = 64 - width as u32;
            ((((x << s) as i64) >> s) < (((y << s) as i64) >> s)) as u64
        }
        BinKind::Shl { width } => {
            if y >= width as u64 {
                0
            } else {
                x << y
            }
        }
        BinKind::Shr { width } => {
            if y >= width as u64 {
                0
            } else {
                x >> y
            }
        }
        BinKind::Ashr { width } => {
            let s = 64 - width as u32;
            let xv = ((x << s) as i64) >> s; // sign-extended
            let sh = y.min(63) as u32;
            if y >= width as u64 {
                (xv >> 63) as u64
            } else {
                (xv >> sh) as u64
            }
        }
    }
}

fn mask64(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn bits_to_u64(b: &Bits) -> u64 {
    b.to_u64()
}
