//! Multithreaded macro-task executor — the analog of `verilator --threads`
//! (§7.3).
//!
//! Construction mirrors Verilator's pipeline: the op DAG is partitioned
//! into macro-tasks (initially per-sink, without duplicating work), tasks
//! are coarsened by merging along communication edges (Sarkar-style
//! smallest-cost merging), and the final tasks are statically assigned to a
//! thread pool (LPT). At runtime a macro-task starts once its predecessor
//! tasks complete — enforced with atomic counters and spin waits — and all
//! threads rendezvous at two barriers per simulated cycle (end of compute,
//! end of commit), exactly the synchronization structure whose cost §7.1
//! models and Fig. 6 measures.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Instant;

use crate::spin::SpinBarrier;

use crate::serial::{commit, run_checks, RunStats, SimEvents, TapeState};
use crate::tape::{eval_op, Op, Tape};

/// One macro-task: a contiguous-in-topo-order list of op indices.
#[derive(Debug, Clone, Default)]
struct Task {
    ops: Vec<u32>,
    /// Tasks that must complete first.
    deps: Vec<u32>,
    /// Tasks waiting on this one.
    dependents: Vec<u32>,
}

/// The macro-task execution plan for a tape: the coarsened task graph and
/// its static thread assignment. Building the plan (partitioning,
/// Sarkar-style coarsening, SCC condensation, LPT scheduling) is the
/// expensive part of constructing a parallel simulator; it depends only on
/// the tape, so it can be built once and reused across any number of runs
/// — which is what the facade's resumable `Simulator` backend does.
#[derive(Debug)]
pub struct MacroTaskPlan {
    tasks: Vec<Task>,
    /// Task ids each thread executes, in topological order.
    assignment: Vec<Vec<u32>>,
    threads: usize,
}

/// A parallel simulator: a tape plus its macro-task plan.
#[derive(Debug)]
pub struct ParallelSim<'t> {
    tape: &'t Tape,
    plan: MacroTaskPlan,
}

impl<'t> ParallelSim<'t> {
    /// Partitions the tape into macro-tasks of at least `grain` ops and
    /// assigns them to `threads` threads.
    pub fn new(tape: &'t Tape, threads: usize, grain: usize) -> Self {
        ParallelSim {
            tape,
            plan: MacroTaskPlan::build(tape, threads, grain),
        }
    }

    /// Number of macro-tasks.
    pub fn num_tasks(&self) -> usize {
        self.plan.num_tasks()
    }

    /// Runs up to `max_cycles` from the initial state; returns stats,
    /// final state, and events.
    pub fn run(&self, max_cycles: u64) -> ParallelRun {
        let mut state = TapeState::new(self.tape);
        self.run_with(&mut state, max_cycles)
    }

    /// Runs up to `max_cycles`, continuing from (and updating) `state`.
    pub fn run_with(&self, state: &mut TapeState, max_cycles: u64) -> ParallelRun {
        self.plan.run_with(self.tape, state, max_cycles)
    }
}

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Timing statistics.
    pub stats: RunStats,
    /// Final committed register values.
    pub final_regs: Vec<u64>,
    /// All `$display` output in order.
    pub displays: Vec<String>,
    /// First failed assertion.
    pub failed_assert: Option<String>,
}

impl MacroTaskPlan {
    /// Partitions the tape into macro-tasks of at least `grain` ops and
    /// assigns them to `threads` threads.
    pub fn build(tape: &Tape, threads: usize, grain: usize) -> Self {
        let threads = threads.max(1);
        let n = tape.ops.len();
        // Producer op of each value slot.
        let mut producer: Vec<Option<u32>> = vec![None; tape.num_values];
        for (i, op) in tape.ops.iter().enumerate() {
            producer[dst_of(op) as usize] = Some(i as u32);
        }
        let op_deps = |i: usize| -> Vec<u32> {
            srcs_of(&tape.ops[i])
                .into_iter()
                .filter_map(|s| producer[s as usize])
                .collect()
        };

        // 1. Initial partition: backward growth from sinks, no duplication.
        let mut task_of_op: Vec<u32> = vec![u32::MAX; n];
        let mut sink_slots: Vec<u32> = Vec::new();
        for rc in &tape.reg_commits {
            sink_slots.push(rc.src);
        }
        for mc in &tape.mem_commits {
            sink_slots.extend([mc.addr, mc.data, mc.en]);
        }
        for ch in &tape.checks {
            match ch {
                crate::tape::Check::Display { cond, args, .. } => {
                    sink_slots.push(*cond);
                    sink_slots.extend(args.iter().map(|(s, _)| *s));
                }
                crate::tape::Check::Expect { cond, .. } | crate::tape::Check::Finish { cond } => {
                    sink_slots.push(*cond)
                }
            }
        }
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for slot in sink_slots {
            let Some(root) = producer[slot as usize] else {
                continue;
            };
            if task_of_op[root as usize] != u32::MAX {
                continue;
            }
            let tid = groups.len() as u32;
            let mut ops = Vec::new();
            let mut stack = vec![root];
            task_of_op[root as usize] = tid;
            while let Some(i) = stack.pop() {
                ops.push(i);
                for d in op_deps(i as usize) {
                    if task_of_op[d as usize] == u32::MAX {
                        task_of_op[d as usize] = tid;
                        stack.push(d);
                    }
                }
            }
            ops.sort_unstable();
            groups.push(ops);
        }
        // Orphan ops (unused nets) go into a final task.
        let mut orphans: Vec<u32> = (0..n as u32)
            .filter(|&i| task_of_op[i as usize] == u32::MAX)
            .collect();
        if !orphans.is_empty() {
            let tid = groups.len() as u32;
            for &o in &orphans {
                task_of_op[o as usize] = tid;
            }
            orphans.sort_unstable();
            groups.push(orphans);
        }

        // 2. Coarsen: merge small tasks into the neighbour they talk to
        //    most (Sarkar's smallest-cost-increase merging, simplified).
        let edge_weight = |a: &Vec<u32>, b_id: u32, task_of_op: &Vec<u32>| -> usize {
            a.iter()
                .flat_map(|&i| op_deps(i as usize))
                .filter(|&d| task_of_op[d as usize] == b_id)
                .count()
        };
        loop {
            let (smallest, _) = match groups
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .min_by_key(|(_, g)| g.len())
            {
                Some((i, g)) if g.len() < grain && live_count(&groups) > 1 => (i, g.len()),
                _ => break,
            };
            // Best neighbour: strongest communication edge, else any live.
            let mut best: Option<(usize, usize)> = None; // (weight, task)
            for (j, g) in groups.iter().enumerate() {
                if j == smallest || g.is_empty() {
                    continue;
                }
                let w = edge_weight(&groups[smallest], j as u32, &task_of_op)
                    + edge_weight(g, smallest as u32, &task_of_op);
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, j));
                }
            }
            let Some((_, j)) = best else { break };
            let moved = std::mem::take(&mut groups[smallest]);
            for &o in &moved {
                task_of_op[o as usize] = j as u32;
            }
            groups[j].extend(moved);
            groups[j].sort_unstable();
        }
        groups.retain(|g| !g.is_empty());
        // Renumber.
        for (tid, g) in groups.iter().enumerate() {
            for &o in g {
                task_of_op[o as usize] = tid as u32;
            }
        }

        // 3. Coarsening by union can create cyclic task dependencies;
        //    collapse strongly-connected components so the task graph is a
        //    DAG (the condensation), then build dependency edges.
        let groups = condense_sccs(groups, &mut task_of_op, &op_deps);
        let mut tasks: Vec<Task> = groups
            .iter()
            .map(|g| Task {
                ops: g.clone(),
                ..Default::default()
            })
            .collect();
        for (tid, g) in groups.iter().enumerate() {
            let mut deps: Vec<u32> = g
                .iter()
                .flat_map(|&i| op_deps(i as usize))
                .map(|d| task_of_op[d as usize])
                .filter(|&d| d != tid as u32)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            for &d in &deps {
                tasks[d as usize].dependents.push(tid as u32);
            }
            tasks[tid].deps = deps;
        }

        // 4. Static LPT assignment to threads. Each thread executes its
        //    tasks in *global topological rank* order — a thread spinning
        //    on a task only ever waits for tasks earlier in the global
        //    order, which makes the spin discipline deadlock-free.
        let topo_rank = {
            let mut indeg: Vec<u32> = tasks.iter().map(|t| t.deps.len() as u32).collect();
            let mut stack: Vec<u32> = (0..tasks.len() as u32)
                .filter(|&t| indeg[t as usize] == 0)
                .collect();
            let mut rank = vec![0u32; tasks.len()];
            let mut next_rank = 0u32;
            while let Some(t) = stack.pop() {
                rank[t as usize] = next_rank;
                next_rank += 1;
                for &d in &tasks[t as usize].dependents {
                    indeg[d as usize] -= 1;
                    if indeg[d as usize] == 0 {
                        stack.push(d);
                    }
                }
            }
            assert_eq!(
                next_rank as usize,
                tasks.len(),
                "task graph must be acyclic"
            );
            rank
        };
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(tasks[t as usize].ops.len()));
        let mut assignment: Vec<Vec<u32>> = vec![Vec::new(); threads];
        let mut load = vec![0usize; threads];
        for t in order {
            let b = (0..threads).min_by_key(|&b| load[b]).unwrap();
            assignment[b].push(t);
            load[b] += tasks[t as usize].ops.len();
        }
        for a in &mut assignment {
            a.sort_by_key(|&t| topo_rank[t as usize]);
        }

        MacroTaskPlan {
            tasks,
            assignment,
            threads,
        }
    }

    /// Number of macro-tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Worker-thread count the plan was built for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs up to `max_cycles` of `tape`, continuing from (and updating)
    /// `state`. `tape` must be the tape the plan was built from.
    pub fn run_with(&self, tape: &Tape, state: &mut TapeState, max_cycles: u64) -> ParallelRun {
        let TapeState {
            values,
            regs,
            mems,
            cycle,
        } = state;
        let mut displays = Vec::new();
        let mut failed_assert = None;
        let mut stats = RunStats::default();

        let pending: Vec<AtomicU32> = self
            .tasks
            .iter()
            .map(|t| AtomicU32::new(t.deps.len() as u32))
            .collect();
        let stop = AtomicBool::new(false);
        let b_start = SpinBarrier::new(self.threads);
        let b_end = SpinBarrier::new(self.threads);
        let shared = SharedState {
            values: values.as_mut_ptr(),
            regs: regs.as_ptr(),
            mems: &*mems as *const Vec<Vec<u64>>,
        };

        let start = Instant::now();
        std::thread::scope(|scope| {
            // Workers 1..threads.
            for w in 1..self.threads {
                let my_tasks = &self.assignment[w];
                let tasks = &self.tasks;
                let pending = &pending;
                let stop = &stop;
                let b_start = &b_start;
                let b_end = &b_end;
                scope.spawn(move || loop {
                    b_start.wait().expect("tape barrier is never poisoned");
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    run_tasks(tape, tasks, my_tasks, pending, shared);
                    b_end.wait().expect("tape barrier is never poisoned");
                });
            }
            // Main thread drives cycles and the serial phase.
            let mut finished = false;
            for _ in 0..max_cycles {
                b_start.wait().expect("tape barrier is never poisoned");
                run_tasks(tape, &self.tasks, &self.assignment[0], &pending, shared);
                b_end.wait().expect("tape barrier is never poisoned");
                // Serial phase: checks, commit, counter reset (the second
                // rendezvous of the cycle).
                let ev: SimEvents = run_checks(&tape.checks, values);
                displays.extend(ev.displays);
                if failed_assert.is_none() {
                    failed_assert = ev.failed_assert;
                }
                commit(tape, values, regs, mems);
                for (t, p) in self.tasks.iter().zip(&pending) {
                    p.store(t.deps.len() as u32, Ordering::Release);
                }
                stats.cycles += 1;
                if ev.finished || failed_assert.is_some() {
                    finished = ev.finished;
                    break;
                }
            }
            stats.finished = finished;
            stop.store(true, Ordering::Release);
            b_start.wait().expect("tape barrier is never poisoned"); // release workers into exit
        });
        stats.seconds = start.elapsed().as_secs_f64();
        *cycle += stats.cycles;
        ParallelRun {
            stats,
            final_regs: regs.clone(),
            displays,
            failed_assert,
        }
    }
}

/// Raw shared pointers into the cycle state. Safety argument: each op
/// writes only its own `dst` slot, every slot has exactly one producer, and
/// a task reads foreign slots only after the producing task's completion
/// (enforced by the `pending` counters); registers and memories are only
/// read during the compute phase and only written in the serial phase
/// between barriers.
#[derive(Clone, Copy)]
struct SharedState {
    values: *mut u64,
    regs: *const u64,
    mems: *const Vec<Vec<u64>>,
}

unsafe impl Send for SharedState {}
unsafe impl Sync for SharedState {}

fn run_tasks(
    tape: &Tape,
    tasks: &[Task],
    mine: &[u32],
    pending: &[AtomicU32],
    shared: SharedState,
) {
    for &tid in mine {
        let task = &tasks[tid as usize];
        // Spin until all predecessor tasks completed (Verilator uses the
        // same fetch-and-add spin discipline); the shared backoff policy
        // yields once the producer evidently isn't running.
        manticore_util::spin_until(|| pending[tid as usize].load(Ordering::Acquire) == 0);
        // SAFETY: see `SharedState`.
        unsafe {
            let values = std::slice::from_raw_parts_mut(shared.values, tape.num_values);
            let regs = std::slice::from_raw_parts(shared.regs, tape.reg_init.len());
            let mems = &*shared.mems;
            for &oi in &task.ops {
                eval_op(&tape.ops[oi as usize], values, regs, mems);
            }
        }
        for &d in &task.dependents {
            pending[d as usize].fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn dst_of(op: &Op) -> u32 {
    match *op {
        Op::Const { dst, .. }
        | Op::RegRead { dst, .. }
        | Op::MemRead { dst, .. }
        | Op::Bin { dst, .. }
        | Op::Not { dst, .. }
        | Op::Slice { dst, .. }
        | Op::Concat { dst, .. }
        | Op::Mux { dst, .. }
        | Op::Sext { dst, .. }
        | Op::Red { dst, .. } => dst,
    }
}

fn srcs_of(op: &Op) -> Vec<u32> {
    match *op {
        Op::Const { .. } | Op::RegRead { .. } => vec![],
        Op::MemRead { a, .. } => vec![a],
        Op::Bin { a, b, .. } | Op::Concat { a, b, .. } => vec![a, b],
        Op::Not { a, .. } | Op::Slice { a, .. } | Op::Sext { a, .. } | Op::Red { a, .. } => {
            vec![a]
        }
        Op::Mux { a, b, c, .. } => vec![a, b, c],
    }
}

fn live_count(groups: &[Vec<u32>]) -> usize {
    groups.iter().filter(|g| !g.is_empty()).count()
}

/// Collapses strongly-connected components of the task dependency graph
/// into single tasks (Kosaraju), updating `task_of_op`.
fn condense_sccs(
    groups: Vec<Vec<u32>>,
    task_of_op: &mut [u32],
    op_deps: &dyn Fn(usize) -> Vec<u32>,
) -> Vec<Vec<u32>> {
    let n = groups.len();
    // Task-level edges dep -> user.
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (tid, g) in groups.iter().enumerate() {
        let mut deps: Vec<u32> = g
            .iter()
            .flat_map(|&i| op_deps(i as usize))
            .map(|d| task_of_op[d as usize])
            .filter(|&d| d != tid as u32)
            .collect();
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            fwd[d as usize].push(tid as u32);
            rev[tid].push(d);
        }
    }
    // Kosaraju pass 1: finish order on the forward graph (iterative DFS).
    let mut visited = vec![false; n];
    let mut finish: Vec<u32> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(start as u32, 0)];
        visited[start] = true;
        while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
            if *ei < fwd[v as usize].len() {
                let next = fwd[v as usize][*ei];
                *ei += 1;
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                finish.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the reverse graph in reverse finish order.
    let mut comp = vec![u32::MAX; n];
    let mut ncomp = 0u32;
    for &start in finish.iter().rev() {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start as usize] = ncomp;
        while let Some(v) = stack.pop() {
            for &u in &rev[v as usize] {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = ncomp;
                    stack.push(u);
                }
            }
        }
        ncomp += 1;
    }
    // Merge groups by component.
    let mut merged: Vec<Vec<u32>> = vec![Vec::new(); ncomp as usize];
    for (tid, g) in groups.into_iter().enumerate() {
        merged[comp[tid] as usize].extend(g);
    }
    merged.retain(|g| !g.is_empty());
    for (tid, g) in merged.iter_mut().enumerate() {
        g.sort_unstable();
        for &o in g.iter() {
            task_of_op[o as usize] = tid as u32;
        }
    }
    merged
}
