//! The §7.1 models of parallel RTL simulation on general-purpose hardware.
//!
//! Model 1 (Listing 1): `P` threads each execute `N/P` mock-computation
//! instructions per simulated cycle, then rendezvous at two barriers (end
//! of compute, end of communication) — the minimum synchronization of a
//! BSP simulation step. The measured rate isolates barrier cost vs.
//! granularity.
//!
//! Model 2 additionally models the instruction-cache pressure of a fully
//! unrolled model: the paper unrolls the compute loop so the code footprint
//! scales with `N/P`. Rust cannot easily generate `N/P` unique instructions
//! at runtime, so the footprint is reproduced on the data side: each thread
//! walks a private buffer sized proportionally to its instruction share,
//! touching one cache line per mock instruction group. The effect —
//! per-thread cache footprint shrinks as `P` grows, so parallelism relieves
//! capacity pressure — is the same phenomenon the paper measures (see
//! DESIGN.md substitutions).

use std::time::Instant;

use crate::spin::SpinBarrier;

/// Result of one model run.
#[derive(Debug, Clone, Copy)]
pub struct ModelRun {
    /// Threads used.
    pub threads: usize,
    /// Mock instructions per simulated cycle (granularity).
    pub instructions: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ModelRun {
    /// Simulation rate in kHz.
    pub fn rate_khz(&self) -> f64 {
        self.cycles as f64 / self.seconds / 1e3
    }
}

/// The unoptimizable four-variable kernel of Listing 1:
/// `a ^= a+1; b ^= b+1; c ^= c+1; d ^= d+1` — independent ops that avoid
/// read-after-write stalls.
#[inline(always)]
fn non_opt(state: &mut [u64; 4]) {
    state[0] ^= state[0].wrapping_add(1);
    state[1] ^= state[1].wrapping_add(2);
    state[2] ^= state[2].wrapping_add(3);
    state[3] ^= state[3].wrapping_add(4);
}

/// Instructions modelled per `non_opt` call (4 adds + 4 xors).
const INSTR_PER_KERNEL: u64 = 8;

/// Model 1: barrier cost only.
///
/// Simulates `cycles` RTL cycles of a design needing `instructions` mock
/// instructions per cycle, split over `threads` threads with two barriers
/// per cycle.
pub fn model1(threads: usize, instructions: u64, cycles: u64) -> ModelRun {
    run_model(threads, instructions, cycles, 0)
}

/// Model 2: barriers + cache pressure. `footprint_bytes_per_instr` scales
/// the per-thread buffer (default in the harness: 4 bytes per modelled
/// instruction, approximating unrolled x86 code bytes).
pub fn model2(threads: usize, instructions: u64, cycles: u64) -> ModelRun {
    run_model(threads, instructions, cycles, 4)
}

fn run_model(
    threads: usize,
    instructions: u64,
    cycles: u64,
    footprint_bytes_per_instr: u64,
) -> ModelRun {
    let threads = threads.max(1);
    let per_thread = instructions / threads as u64;
    let kernels = (per_thread / INSTR_PER_KERNEL).max(1);
    let barrier = SpinBarrier::new(threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 1..threads {
            let barrier = &barrier;
            scope.spawn(move || {
                thread_body(barrier, kernels, cycles, footprint_bytes_per_instr);
            });
        }
        thread_body(&barrier, kernels, cycles, footprint_bytes_per_instr);
    });
    let seconds = start.elapsed().as_secs_f64();
    ModelRun {
        threads,
        instructions,
        cycles,
        seconds,
    }
}

fn thread_body(barrier: &SpinBarrier, kernels: u64, cycles: u64, footprint_per_instr: u64) {
    let mut state = [1u64, 2, 3, 4];
    // Model-2 footprint: one 64-byte line per kernel's worth of unrolled
    // code bytes.
    let lines = if footprint_per_instr == 0 {
        0
    } else {
        ((kernels * INSTR_PER_KERNEL * footprint_per_instr) / 64).max(1)
    };
    let mut footprint: Vec<u64> = vec![0; (lines as usize) * 8];
    for _ in 0..cycles {
        // Compute phase.
        if footprint.is_empty() {
            for _ in 0..kernels {
                non_opt(&mut state);
            }
        } else {
            for k in 0..kernels {
                non_opt(&mut state);
                // Touch the k-th line, emulating the i-cache walking
                // through unrolled code.
                let idx = ((k as usize) * 8) % footprint.len();
                footprint[idx] = footprint[idx].wrapping_add(state[0]);
            }
        }
        // Barrier at end of computation...
        barrier.wait().expect("model barrier is never poisoned");
        // ...and at end of (zero-cost) communication.
        barrier.wait().expect("model barrier is never poisoned");
    }
    // Defeat optimization.
    std::hint::black_box((&state, &footprint));
}
