//! A Verilator-analog software RTL simulator: the baseline Manticore is
//! evaluated against (§7.3).
//!
//! Like Verilator, this is a *full-cycle* simulator: the netlist is
//! compiled once into a flat, topologically-ordered operation tape
//! ([`tape`]) that is re-evaluated every cycle regardless of activity.
//! Two executors share the tape:
//!
//! - [`serial`] — single-threaded, the analog of Verilator's default
//!   single-thread codegen;
//! - [`parallel`] — multi-threaded over *macro-tasks*: the net DAG is
//!   partitioned (without duplication), coarsened by merging communicating
//!   tasks (Sarkar-style, as Verilator does), statically assigned to a
//!   thread pool, and synchronized at runtime with atomic dependency
//!   counters (spin waits) plus two barrier rendezvous per simulated cycle
//!   — exactly the execution structure §7.3 describes, and the source of
//!   the fine-grain synchronization costs Fig. 6 measures.
//!
//! [`models`] implements the paper's §7.1 analytical models 1 and 2
//! (barrier-cost-only and barrier+cache-pressure) with real threads.

pub mod models;
pub mod parallel;
pub mod serial;
pub mod spin;
pub mod tape;

pub use parallel::{MacroTaskPlan, ParallelSim};
pub use serial::{SerialSim, TapeState};
pub use tape::{Tape, TapeError};

#[cfg(test)]
mod tests;
