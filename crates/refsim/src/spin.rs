//! A spinning barrier: the arrive-await rendezvous Verilator's runtime
//! uses between macro-task phases. `std::sync::Barrier` parks threads on a
//! mutex/condvar, costing microseconds per rendezvous — enough to drown
//! the fine-grain synchronization effects §7.1 measures. Spinning keeps
//! the rendezvous in the hundreds-of-nanoseconds regime of the paper's
//! testbeds.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable spinning barrier for a fixed number of participants.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        SpinBarrier {
            n: n.max(1),
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks (spinning) until all `n` participants arrive.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver resets and releases the generation.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SpinBarrier;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_phases() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for phase in 1..=100usize {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // After the barrier every thread of this phase has
                        // incremented.
                        assert!(counter.load(Ordering::Relaxed) >= phase * n);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100 * n);
    }
}
