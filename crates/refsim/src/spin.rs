//! Re-export of the shared spinning barrier.
//!
//! The barrier originally lived here, private to the Verilator-analog
//! executor. The sharded bulk-synchronous grid engine in
//! `manticore_machine` needs the same rendezvous primitive, so the
//! implementation moved to [`manticore_util::spin`]; this module keeps the
//! historical `manticore_refsim::spin::SpinBarrier` path working.

pub use manticore_util::spin::SpinBarrier;
