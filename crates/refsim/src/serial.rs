//! Single-threaded full-cycle executor — the analog of serial Verilator.

use std::time::Instant;

use manticore_bits::Bits;

use crate::tape::{eval_op, Check, Tape};

/// Events observed in one cycle.
#[derive(Debug, Clone, Default)]
pub struct SimEvents {
    /// Rendered `$display` lines.
    pub displays: Vec<String>,
    /// First failed assertion, if any.
    pub failed_assert: Option<String>,
    /// `$finish` fired.
    pub finished: bool,
}

/// Result of a timed run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// True if the design finished.
    pub finished: bool,
}

impl RunStats {
    /// Simulation rate in kHz (the paper's Table 3 metric).
    pub fn rate_khz(&self) -> f64 {
        if self.seconds == 0.0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.seconds / 1e3
        }
    }
}

/// The complete mutable state of a tape simulation — combinational value
/// slots, committed registers, memories, and the cycle count.
///
/// Owning the state separately from an executor makes backends *resumable*
/// and executor-agnostic: the same `TapeState` can be stepped serially,
/// handed to the macro-task parallel executor for a while, and back —
/// which is what the facade's `Simulator` backends do.
#[derive(Debug, Clone)]
pub struct TapeState {
    /// Combinational value slots (scratch, recomputed every cycle).
    pub values: Vec<u64>,
    /// Committed register values.
    pub regs: Vec<u64>,
    /// Memory contents.
    pub mems: Vec<Vec<u64>>,
    /// Cycles simulated so far.
    pub cycle: u64,
}

impl TapeState {
    /// State at the tape's initial values.
    pub fn new(tape: &Tape) -> Self {
        TapeState {
            values: vec![0; tape.num_values],
            regs: tape.reg_init.clone(),
            mems: tape.mem_init.clone(),
            cycle: 0,
        }
    }

    /// Current committed value of register `idx`.
    pub fn reg_value(&self, tape: &Tape, idx: usize) -> Bits {
        Bits::from_u64(self.regs[idx], tape.reg_widths[idx] as usize)
    }
}

/// Advances `state` by one cycle on the calling thread.
pub fn step_state(tape: &Tape, state: &mut TapeState) -> SimEvents {
    for op in &tape.ops {
        eval_op(op, &mut state.values, &state.regs, &state.mems);
    }
    let events = run_checks(&tape.checks, &state.values);
    commit(tape, &state.values, &mut state.regs, &mut state.mems);
    state.cycle += 1;
    events
}

/// Serial simulator state over a tape.
#[derive(Debug, Clone)]
pub struct SerialSim<'t> {
    tape: &'t Tape,
    state: TapeState,
}

impl<'t> SerialSim<'t> {
    /// Creates a simulator with state at initial values.
    pub fn new(tape: &'t Tape) -> Self {
        SerialSim {
            state: TapeState::new(tape),
            tape,
        }
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.state.cycle
    }

    /// Current committed value of register `idx`.
    pub fn reg_value(&self, idx: usize) -> Bits {
        self.state.reg_value(self.tape, idx)
    }

    /// Simulates one cycle.
    pub fn step(&mut self) -> SimEvents {
        step_state(self.tape, &mut self.state)
    }

    /// Runs until `$finish`, assertion failure, or `max_cycles`; returns
    /// timing statistics.
    ///
    /// # Panics
    ///
    /// Panics on assertion failure (self-checking harness).
    pub fn run(&mut self, max_cycles: u64) -> RunStats {
        let start = Instant::now();
        let mut stats = RunStats::default();
        for _ in 0..max_cycles {
            let ev = self.step();
            stats.cycles += 1;
            if let Some(m) = ev.failed_assert {
                panic!("assertion failed at cycle {}: {m}", self.state.cycle);
            }
            if ev.finished {
                stats.finished = true;
                break;
            }
        }
        stats.seconds = start.elapsed().as_secs_f64();
        stats
    }
}

/// Evaluates testbench checks against computed values.
pub(crate) fn run_checks(checks: &[Check], values: &[u64]) -> SimEvents {
    let mut events = SimEvents::default();
    for check in checks {
        match check {
            Check::Display { cond, format, args } => {
                if values[*cond as usize] != 0 {
                    let mut out = String::new();
                    let mut it = args.iter();
                    let mut chars = format.chars().peekable();
                    while let Some(c) = chars.next() {
                        if c == '{' && chars.peek() == Some(&'}') {
                            chars.next();
                            match it.next() {
                                Some((slot, _w)) => {
                                    out.push_str(&format!("{:x}", values[*slot as usize]))
                                }
                                None => out.push_str("<missing>"),
                            }
                        } else {
                            out.push(c);
                        }
                    }
                    events.displays.push(out);
                }
            }
            Check::Expect { cond, message } => {
                if values[*cond as usize] == 0 && events.failed_assert.is_none() {
                    events.failed_assert = Some(message.clone());
                }
            }
            Check::Finish { cond } => {
                if values[*cond as usize] != 0 {
                    events.finished = true;
                }
            }
        }
    }
    events
}

/// Applies register and memory commits (cycle boundary).
pub(crate) fn commit(tape: &Tape, values: &[u64], regs: &mut [u64], mems: &mut [Vec<u64>]) {
    for rc in &tape.reg_commits {
        regs[rc.idx as usize] = values[rc.src as usize];
    }
    for mc in &tape.mem_commits {
        if values[mc.en as usize] != 0 {
            let m = &mut mems[mc.idx as usize];
            let addr = values[mc.addr as usize] as usize;
            if addr < m.len() {
                m[addr] = values[mc.data as usize];
            }
        }
    }
}
