//! Refsim tests: tape semantics vs. the arbitrary-width evaluator, serial
//! vs. parallel equivalence, model smoke tests.

use manticore_bits::Bits;
use manticore_netlist::{eval::Evaluator, Netlist, NetlistBuilder};
use manticore_util::SmallRng;

use crate::parallel::ParallelSim;
use crate::serial::SerialSim;
use crate::tape::{Tape, TapeError};

fn counter(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new("counter");
    let r = b.reg("c", width, 0);
    let one = b.lit(1, width);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("c", r.q());

    b.finish_build().unwrap()
}

#[test]
fn serial_counter_counts() {
    let n = counter(16);
    let tape = Tape::compile(&n).unwrap();
    let mut sim = SerialSim::new(&tape);
    for i in 1..=100u64 {
        sim.step();
        assert_eq!(sim.reg_value(0).to_u64(), i);
    }
}

#[test]
fn tape_rejects_wide_nets() {
    let n = counter(65);
    match Tape::compile(&n) {
        Err(TapeError::TooWide { width, .. }) => assert_eq!(width, 65),
        other => panic!("expected TooWide, got {other:?}"),
    }
}

#[test]
fn finish_stops_run() {
    let mut b = NetlistBuilder::new("f");
    let r = b.reg("c", 8, 0);
    let one = b.lit(1, 8);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let ten = b.lit(10, 8);
    let done = b.eq(r.q(), ten);
    b.finish(done);
    let n = b.finish_build().unwrap();
    let tape = Tape::compile(&n).unwrap();
    let mut sim = SerialSim::new(&tape);
    let stats = sim.run(1000);
    assert!(stats.finished);
    assert_eq!(stats.cycles, 11);
}

#[test]
fn displays_render() {
    let mut b = NetlistBuilder::new("d");
    let r = b.reg("c", 8, 0);
    let one = b.lit(1, 8);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let two = b.lit(2, 8);
    let hit = b.eq(r.q(), two);
    b.display(hit, "c = {}", &[r.q()]);
    let n = b.finish_build().unwrap();
    let tape = Tape::compile(&n).unwrap();
    let mut sim = SerialSim::new(&tape);
    let mut all = Vec::new();
    for _ in 0..5 {
        all.extend(sim.step().displays);
    }
    assert_eq!(all, vec!["c = 2"]);
}

/// Random closed netlist within 64-bit widths.
fn random_netlist(seed: u64, ops: usize) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(seed);
    let widths = [5usize, 16, 31, 64];
    let mut b = NetlistBuilder::new("rand");
    let mut pool: Vec<Vec<manticore_netlist::NetId>> = Vec::new();
    let mut regs = Vec::new();
    for (wi, &w) in widths.iter().enumerate() {
        let r = b.reg_init(format!("r{wi}"), w, Bits::from_u128(rng.next_u128(), w));
        regs.push(r);
        let c = b.constant(Bits::from_u128(rng.next_u128(), w));
        pool.push(vec![r.q(), c]);
    }
    let mem = b.memory("m", 16, 16);
    let addr = b.slice(regs[1].q(), 0, 4);
    let rd = b.mem_read(mem, addr);
    pool[1].push(rd);
    for _ in 0..ops {
        let wi = rng.gen_range(0..widths.len());
        let w = widths[wi];
        let a = pool[wi][rng.gen_range(0..pool[wi].len())];
        let c = pool[wi][rng.gen_range(0..pool[wi].len())];
        let v = match rng.gen_range(0..12) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            4 => b.or(a, c),
            5 => b.xor(a, c),
            6 => b.not(a),
            7 => {
                let e = b.ult(a, c);
                b.zext(e, w)
            }
            8 => {
                let s = b.slt(a, c);
                b.zext(s, w)
            }
            9 => {
                let sel = b.bit(a, rng.gen_range(0..w));
                b.mux(sel, a, c)
            }
            10 => {
                let amt = b.slice(c, 0, 6.min(w));
                let amt = b.zext(amt, w);
                match rng.gen_range(0..3) {
                    0 => b.shl(a, amt),
                    1 => b.shr(a, amt),
                    _ => b.ashr(a, amt),
                }
            }
            _ => {
                let cut = rng.gen_range(1..w);
                let lo = b.slice(a, 0, cut);
                let hi = b.slice(c, cut, w - cut);
                b.concat(lo, hi)
            }
        };
        pool[wi].push(v);
    }
    for (wi, r) in regs.iter().enumerate() {
        let v = pool[wi][rng.gen_range(0..pool[wi].len())];
        b.set_next(*r, v);
    }
    let wdata = b.slice(pool[3][pool[3].len() - 1], 0, 16);
    let wen = b.bit(regs[0].q(), 0);
    b.mem_write(mem, addr, wdata, wen);
    b.finish_build().unwrap()
}

#[test]
fn prop_tape_matches_evaluator() {
    let mut meta = SmallRng::seed_from_u64(0x41);
    for _ in 0..24 {
        let seed = meta.next_u64();
        let ops = meta.gen_range(10..80);
        let n = random_netlist(seed, ops);
        let tape = Tape::compile(&n).unwrap();
        let mut fast = SerialSim::new(&tape);
        let mut slow = Evaluator::new(&n);
        for cycle in 0..16u64 {
            fast.step();
            slow.step();
            for (ri, reg) in n.registers().iter().enumerate() {
                assert_eq!(
                    fast.reg_value(ri).to_u64(),
                    slow.reg_value(ri).to_u64(),
                    "reg `{}` diverged at cycle {cycle} (seed {seed})",
                    &reg.name,
                );
            }
        }
    }
}

#[test]
fn prop_parallel_matches_serial() {
    let mut meta = SmallRng::seed_from_u64(0x42);
    for _ in 0..24 {
        let seed = meta.next_u64();
        let threads = meta.gen_range(1..6);
        let n = random_netlist(seed, 60);
        let tape = Tape::compile(&n).unwrap();
        let cycles = 25;
        let mut serial = SerialSim::new(&tape);
        for _ in 0..cycles {
            serial.step();
        }
        let par = ParallelSim::new(&tape, threads, 8);
        let run = par.run(cycles);
        assert_eq!(run.stats.cycles, cycles);
        for ri in 0..n.registers().len() {
            assert_eq!(
                run.final_regs[ri],
                serial.reg_value(ri).to_u64(),
                "register {ri} diverged (seed={seed}, threads={threads}, tasks={})",
                par.num_tasks()
            );
        }
    }
}

#[test]
fn parallel_preserves_events() {
    let mut b = NetlistBuilder::new("ev");
    let r = b.reg("c", 8, 0);
    let one = b.lit(1, 8);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let three = b.lit(3, 8);
    let hit = b.eq(r.q(), three);
    b.display(hit, "hit {}", &[r.q()]);
    let six = b.lit(6, 8);
    let done = b.eq(r.q(), six);
    b.finish(done);
    let n = b.finish_build().unwrap();
    let tape = Tape::compile(&n).unwrap();
    let par = ParallelSim::new(&tape, 3, 2);
    let run = par.run(100);
    assert!(run.stats.finished);
    assert_eq!(run.stats.cycles, 7);
    assert_eq!(run.displays, vec!["hit 3"]);
    assert!(run.failed_assert.is_none());
}

#[test]
fn parallel_task_graph_sane() {
    let n = random_netlist(99, 120);
    let tape = Tape::compile(&n).unwrap();
    let par = ParallelSim::new(&tape, 4, 10);
    assert!(par.num_tasks() >= 1);
}

#[test]
fn model_runs_produce_time() {
    let r1 = crate::models::model1(2, 1000, 200);
    assert!(r1.rate_khz() > 0.0);
    let r2 = crate::models::model2(2, 1000, 200);
    assert!(r2.rate_khz() > 0.0);
}

#[test]
fn step_size_reports_ops() {
    let n = counter(16);
    let tape = Tape::compile(&n).unwrap();
    assert!(tape.step_size() >= 3);
}
