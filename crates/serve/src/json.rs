//! A minimal JSON value model with both a parser and a renderer.
//!
//! The workspace deliberately carries no external dependencies, so the
//! wire protocol's JSON is hand-rolled, in the same spirit as
//! `manticore_bench::json` (which only renders). The server and client
//! both speak through [`Value`]: parse with [`Value::parse`], render with
//! [`Value::render`].
//!
//! The model is deliberately small: unsigned integers are kept exact
//! ([`Value::Int`], so 64-bit register payloads and hashes round-trip
//! bit-for-bit), everything else numeric is an `f64`, and object keys
//! keep their insertion order (renders are deterministic).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without fraction or exponent —
    /// kept exact so u64 payloads survive the wire.
    Int(u64),
    /// Any other number (negative, fractional, or exponent form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object; `None` for other shapes or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`: an exact [`Value::Int`], or a [`Value::Num`]
    /// that is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders to compact JSON (no whitespace; deterministic field
    /// order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Num(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => render_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, requiring the whole input to be
    /// consumed (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Maximum container nesting depth. The parser recurses per `[`/`{`, so
/// without a cap a frame of a few hundred KiB of `[[[[…` would overflow
/// the reader thread's stack and abort the whole process — the cheapest
/// possible remote kill. No legitimate protocol shape nests deeper than a
/// handful of levels.
pub const MAX_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Value::Null),
        b't' => parse_lit(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {:?} at {pos}", other as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    // A plain non-negative integer stays exact; everything else is f64.
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("malformed number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "malformed \\u escape")?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting here.
                let seq_start = *pos - 1;
                let len = utf8_len(b);
                let end = seq_start + len;
                let chunk = bytes
                    .get(seq_start..end)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {seq_start}"))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let v = Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("id", Value::Int(u64::MAX)),
            ("vcycles", Value::Int(1000)),
            ("park", Value::Bool(true)),
            ("pokes", Value::obj(vec![("count", Value::Int(42))])),
            (
                "reads",
                Value::Arr(vec![Value::Str("count".into()), Value::Str("q\"x".into())]),
            ),
            ("none", Value::Null),
            ("frac", Value::Num(-1.5)),
        ]);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        // u64::MAX survived exactly — the reason Int exists.
        assert_eq!(back.get("id").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5 , \"x\\n\\u0041é\" ] , \"b\" : { } } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Value::Num(2.5));
        assert_eq!(arr[2].as_str(), Some("x\nAé"));
        assert_eq!(v.get("b").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "\"\\q\"", "1 2"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // A megabyte of `[` used to recurse once per byte and abort the
        // process; now it must return an error well within the cap.
        let deep = "[".repeat(1 << 20);
        assert!(Value::parse(&deep).is_err());
        let deep_obj = "{\"a\":".repeat(1 << 18);
        assert!(Value::parse(&deep_obj).is_err());
        // Nesting at the cap still parses.
        let ok = format!(
            "{}1{}",
            "[".repeat(super::MAX_DEPTH),
            "]".repeat(super::MAX_DEPTH)
        );
        assert!(Value::parse(&ok).is_ok());
    }
}
