//! The wire protocol: length-prefixed JSON frames and the typed
//! request/reply vocabulary layered on them.
//!
//! Every message — in both directions — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Length prefixing keeps framing trivial (no delimiter scanning, no
//! partial-line state) and lets both sides reject oversized payloads
//! before allocating. SERVING.md documents every frame shape with
//! byte-level examples; this module is the single source of truth for
//! the field names.
//!
//! Requests are parsed into [`Request`] and replies rendered from
//! [`Reply`]; both directions go through the same types, so the client
//! helper and the server can never disagree about a field name.

use std::fmt;
use std::io::{Read, Write};

use crate::json::Value;

/// Frames larger than this are a protocol error — nothing in the
/// vocabulary comes close, so a bigger length prefix means a confused or
/// hostile peer, and the connection is dropped before allocating.
pub const MAX_FRAME: usize = 1 << 24;

/// Most one `reserve` call will pre-allocate for an incoming frame. The
/// length prefix is attacker-controlled until the payload bytes actually
/// arrive, so [`read_frame`] never sizes a buffer from it directly: the
/// buffer grows as bytes are read, and a peer that advertises 16 MiB but
/// sends nothing costs 64 KiB, not 16 MiB.
const READ_RESERVE: usize = 64 * 1024;

/// A typed framing violation, carried inside the [`std::io::Error`] that
/// [`read_frame`] returns (downcast via
/// [`std::io::Error::get_ref`]/`downcast`). The server logs these
/// distinctly from transport failures; tests assert on the variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize {
        /// The advertised payload length.
        len: usize,
    },
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the prefix promised.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "frame truncated: {got} of {expected} payload bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes `value` as one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failure (a disconnected peer, typically).
pub fn write_frame(w: &mut impl Write, value: &Value) -> std::io::Result<()> {
    let payload = value.render();
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); an EOF *inside* a frame, an oversized length prefix,
/// or malformed JSON is an error.
///
/// # Errors
///
/// I/O failure, a frame over [`MAX_FRAME`], or a payload that is not
/// valid JSON.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Value>> {
    let mut len_buf = [0u8; 4];
    // A clean close may land exactly on the frame boundary.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 4 => r.read_exact(&mut len_buf[n..])?,
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            FrameError::Oversize { len },
        ));
    }
    // Never `vec![0; len]` here: `len` is attacker-controlled until the
    // bytes arrive. `take` + `read_to_end` grows the buffer only as data
    // shows up, with at most READ_RESERVE pre-reserved.
    let mut payload = Vec::new();
    payload.reserve_exact(len.min(READ_RESERVE));
    r.by_ref().take(len as u64).read_to_end(&mut payload)?;
    if payload.len() < len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            FrameError::Truncated {
                expected: len,
                got: payload.len(),
            },
        ));
    }
    let text = String::from_utf8(payload)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Value::parse(&text)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// A job submission: which design, the input vector, the budget, and the
/// result/lifecycle options.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitReq {
    /// Client-chosen correlation id, echoed on the job's reply. The
    /// server never interprets it.
    pub id: u64,
    /// Catalog design name (see [`crate::catalog`]).
    pub design: String,
    /// Grid side override; `None` runs the design's default grid. Designs
    /// are cached per `(netlist, config)`, so distinct grids are distinct
    /// cache entries.
    pub grid: Option<usize>,
    /// Vcycle budget for the run.
    pub vcycles: u64,
    /// Input vector: named RTL registers overwritten before the first
    /// Vcycle (resolved through the compiler's placement metadata,
    /// width-masked like [`manticore::fleet::FleetJob::with_reg`]).
    pub pokes: Vec<(String, u64)>,
    /// RTL registers to read back into the reply after the run.
    pub reads: Vec<String>,
    /// Wall-clock deadline, milliseconds from admission; the run stops
    /// cooperatively at the first Vcycle boundary past it.
    pub deadline_ms: Option<u64>,
    /// Park the finished machine server-side and return a session id for
    /// [`ResumeReq`] instead of discarding the state.
    pub park: bool,
}

/// A continuation of a parked session: run `vcycles` more on the stored
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeReq {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// The session id a previous parked job returned.
    pub session: String,
    /// Additional Vcycle budget.
    pub vcycles: u64,
    /// Registers to overwrite before the slice, as in [`SubmitReq`].
    pub pokes: Vec<(String, u64)>,
    /// Registers to read back after the slice.
    pub reads: Vec<String>,
    /// Park again afterwards (returning a fresh session id); otherwise
    /// the machine is dropped when the slice completes.
    pub park: bool,
}

/// A job submission carrying the client's *own* netlist instead of a
/// catalog name (`{"op":"submit_netlist",...}`). The netlist travels as
/// the [`crate::wire`] JSON encoding and is kept as a raw [`Value`] here:
/// decoding and resource-limit validation happen at admission, where a
/// violation turns into a typed reject naming the limit rather than a
/// parse error at the framing layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitNetlistReq {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// The [`crate::wire`]-encoded netlist, undecoded.
    pub netlist: Value,
    /// Grid side; `None` uses the server's default for untrusted designs.
    pub grid: Option<usize>,
    /// Vcycle budget for the run.
    pub vcycles: u64,
    /// Registers to overwrite before the first Vcycle, as in
    /// [`SubmitReq`].
    pub pokes: Vec<(String, u64)>,
    /// Registers to read back after the run.
    pub reads: Vec<String>,
    /// Wall-clock deadline for the *run*, as in [`SubmitReq`] (the
    /// compile has its own server-configured deadline).
    pub deadline_ms: Option<u64>,
    /// Park the finished machine and return a session id.
    pub park: bool,
}

/// Everything a client can ask of the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a job (`{"op":"submit",...}`).
    Submit(SubmitReq),
    /// Run a client-supplied netlist (`{"op":"submit_netlist",...}`).
    SubmitNetlist(SubmitNetlistReq),
    /// Continue a parked session (`{"op":"resume",...}`).
    Resume(ResumeReq),
    /// Drop a parked session without running it
    /// (`{"op":"drop_session","session":...}`).
    DropSession {
        /// The session to discard.
        session: String,
    },
    /// Snapshot the server counters (`{"op":"stats"}`).
    Stats,
    /// Ask the server to shut down (`{"op":"shutdown"}`). Intended for
    /// harnesses that own the server; a production deployment would gate
    /// it.
    Shutdown,
}

impl Request {
    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A description of the malformed or missing field — sent back to the
    /// client verbatim in an error reply.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no `op` field")?;
        match op {
            "submit" => Ok(Request::Submit(SubmitReq {
                id: req_u64(v, "id")?,
                design: req_str(v, "design")?,
                grid: opt_u64(v, "grid")?.map(|g| g as usize),
                vcycles: req_u64(v, "vcycles")?,
                pokes: pokes_of(v)?,
                reads: reads_of(v)?,
                deadline_ms: opt_u64(v, "deadline_ms")?,
                park: v.get("park").and_then(Value::as_bool).unwrap_or(false),
            })),
            "submit_netlist" => Ok(Request::SubmitNetlist(SubmitNetlistReq {
                id: req_u64(v, "id")?,
                netlist: v.get("netlist").cloned().ok_or("missing `netlist`")?,
                grid: opt_u64(v, "grid")?.map(|g| g as usize),
                vcycles: req_u64(v, "vcycles")?,
                pokes: pokes_of(v)?,
                reads: reads_of(v)?,
                deadline_ms: opt_u64(v, "deadline_ms")?,
                park: v.get("park").and_then(Value::as_bool).unwrap_or(false),
            })),
            "resume" => Ok(Request::Resume(ResumeReq {
                id: req_u64(v, "id")?,
                session: req_str(v, "session")?,
                vcycles: req_u64(v, "vcycles")?,
                pokes: pokes_of(v)?,
                reads: reads_of(v)?,
                park: v.get("park").and_then(Value::as_bool).unwrap_or(false),
            })),
            "drop_session" => Ok(Request::DropSession {
                session: req_str(v, "session")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Renders the request as a frame payload — the client side of
    /// [`Request::from_value`].
    pub fn to_value(&self) -> Value {
        match self {
            Request::Submit(s) => {
                let mut fields = vec![
                    ("op", Value::Str("submit".into())),
                    ("id", Value::Int(s.id)),
                    ("design", Value::Str(s.design.clone())),
                    ("vcycles", Value::Int(s.vcycles)),
                ];
                if let Some(grid) = s.grid {
                    fields.push(("grid", Value::Int(grid as u64)));
                }
                if !s.pokes.is_empty() {
                    fields.push(("pokes", pokes_value(&s.pokes)));
                }
                if !s.reads.is_empty() {
                    fields.push(("reads", reads_value(&s.reads)));
                }
                if let Some(ms) = s.deadline_ms {
                    fields.push(("deadline_ms", Value::Int(ms)));
                }
                if s.park {
                    fields.push(("park", Value::Bool(true)));
                }
                Value::obj(fields)
            }
            Request::SubmitNetlist(s) => {
                let mut fields = vec![
                    ("op", Value::Str("submit_netlist".into())),
                    ("id", Value::Int(s.id)),
                    ("netlist", s.netlist.clone()),
                    ("vcycles", Value::Int(s.vcycles)),
                ];
                if let Some(grid) = s.grid {
                    fields.push(("grid", Value::Int(grid as u64)));
                }
                if !s.pokes.is_empty() {
                    fields.push(("pokes", pokes_value(&s.pokes)));
                }
                if !s.reads.is_empty() {
                    fields.push(("reads", reads_value(&s.reads)));
                }
                if let Some(ms) = s.deadline_ms {
                    fields.push(("deadline_ms", Value::Int(ms)));
                }
                if s.park {
                    fields.push(("park", Value::Bool(true)));
                }
                Value::obj(fields)
            }
            Request::Resume(r) => {
                let mut fields = vec![
                    ("op", Value::Str("resume".into())),
                    ("id", Value::Int(r.id)),
                    ("session", Value::Str(r.session.clone())),
                    ("vcycles", Value::Int(r.vcycles)),
                ];
                if !r.pokes.is_empty() {
                    fields.push(("pokes", pokes_value(&r.pokes)));
                }
                if !r.reads.is_empty() {
                    fields.push(("reads", reads_value(&r.reads)));
                }
                if r.park {
                    fields.push(("park", Value::Bool(true)));
                }
                Value::obj(fields)
            }
            Request::DropSession { session } => Value::obj(vec![
                ("op", Value::Str("drop_session".into())),
                ("session", Value::Str(session.clone())),
            ]),
            Request::Stats => Value::obj(vec![("op", Value::Str("stats".into()))]),
            Request::Shutdown => Value::obj(vec![("op", Value::Str("shutdown".into()))]),
        }
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer `{key}`")),
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn pokes_of(v: &Value) -> Result<Vec<(String, u64)>, String> {
    match v.get("pokes") {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Obj(fields)) => fields
            .iter()
            .map(|(name, val)| {
                val.as_u64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| format!("poke `{name}` is not an unsigned integer"))
            })
            .collect(),
        Some(_) => Err("`pokes` must be an object of register -> value".into()),
    }
}

fn reads_of(v: &Value) -> Result<Vec<String>, String> {
    match v.get("reads") {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Arr(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or("`reads` entries must be strings".to_string())
            })
            .collect(),
        Some(_) => Err("`reads` must be an array of register names".into()),
    }
}

fn pokes_value(pokes: &[(String, u64)]) -> Value {
    Value::Obj(
        pokes
            .iter()
            .map(|(name, value)| (name.clone(), Value::Int(*value)))
            .collect(),
    )
}

fn reads_value(reads: &[String]) -> Value {
    Value::Arr(reads.iter().map(|r| Value::Str(r.clone())).collect())
}

/// One finished job, as it appears on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The correlation id from the submitting request.
    pub id: u64,
    /// How the run ended (the fleet's outcome taxonomy, lower-cased:
    /// `complete`, `budget`, `deadline`, `cancelled`, `faulted`,
    /// `panic`).
    pub outcome: String,
    /// Vcycles the run actually executed.
    pub vcycles_run: u64,
    /// The requested register read-backs, in request order. Registers
    /// wider than 64 bits report their low 64.
    pub regs: Vec<(String, u64)>,
    /// FNV-1a fingerprint of the machine's architectural state (hex, as
    /// `0x…`) — the bit-identity witness: equal fingerprints mean equal
    /// counters, registers, and scratch memory.
    pub fingerprint: String,
    /// `$display` output the run produced.
    pub displays: Vec<String>,
    /// The session id, when the job asked to park.
    pub session: Option<String>,
    /// The fault description, for `faulted`/`panic` outcomes.
    pub error: Option<String>,
}

/// The violated limit named by a permanent [`Reply::Reject`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectLimit {
    /// Stable limit name (e.g. `grid_cores`, `nets`, `registers`,
    /// `memory_words`, `netlist_bytes`, `conn_netlist_bytes`).
    pub limit: String,
    /// The configured maximum.
    pub max: u64,
    /// The value the request asked for.
    pub got: u64,
}

/// Everything the server can say to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A finished job (`{"type":"result",...}`).
    Result(JobResult),
    /// The job was not admitted (`{"type":"reject",...}`). A non-zero
    /// `retry_after_ms` is transient backpressure (`queue_full`,
    /// `compile_busy`) — wait and retry. A zero `retry_after_ms` is
    /// *permanent*: the request violated a resource limit or quota and
    /// will never be admitted as-is; `limit` names what was violated.
    Reject {
        /// Correlation id of the rejected request.
        id: u64,
        /// Why: `queue_full`, `compile_busy`, `compile_deadline`,
        /// `netlist_limit`, `netlist_quota`.
        reason: String,
        /// Backpressure hint: milliseconds to wait before retrying;
        /// `0` means the rejection is permanent.
        retry_after_ms: u64,
        /// For limit rejections: which limit, its cap, and the offending
        /// value.
        limit: Option<RejectLimit>,
    },
    /// The request itself was invalid — unknown design, bad field, dead
    /// session (`{"type":"error",...}`).
    Error {
        /// Correlation id when the request carried one.
        id: Option<u64>,
        /// What was wrong.
        message: String,
    },
    /// Acknowledges a `drop_session` (`{"type":"dropped",...}`).
    Dropped {
        /// The session id from the request.
        session: String,
        /// Whether there was a parked session to drop.
        existed: bool,
    },
    /// Counter snapshot (`{"type":"stats",...}`); the payload is
    /// free-form and documented in SERVING.md's runbook.
    Stats(Value),
}

impl Reply {
    /// Renders the reply as a frame payload.
    pub fn to_value(&self) -> Value {
        match self {
            Reply::Result(r) => {
                let mut fields = vec![
                    ("type", Value::Str("result".into())),
                    ("id", Value::Int(r.id)),
                    ("outcome", Value::Str(r.outcome.clone())),
                    ("vcycles_run", Value::Int(r.vcycles_run)),
                    (
                        "regs",
                        Value::Obj(
                            r.regs
                                .iter()
                                .map(|(name, value)| (name.clone(), Value::Int(*value)))
                                .collect(),
                        ),
                    ),
                    ("fingerprint", Value::Str(r.fingerprint.clone())),
                ];
                if !r.displays.is_empty() {
                    fields.push((
                        "displays",
                        Value::Arr(r.displays.iter().map(|d| Value::Str(d.clone())).collect()),
                    ));
                }
                if let Some(session) = &r.session {
                    fields.push(("session", Value::Str(session.clone())));
                }
                if let Some(error) = &r.error {
                    fields.push(("error", Value::Str(error.clone())));
                }
                Value::obj(fields)
            }
            Reply::Reject {
                id,
                reason,
                retry_after_ms,
                limit,
            } => {
                let mut fields = vec![
                    ("type", Value::Str("reject".into())),
                    ("id", Value::Int(*id)),
                    ("reason", Value::Str(reason.clone())),
                    ("retry_after_ms", Value::Int(*retry_after_ms)),
                ];
                if let Some(l) = limit {
                    fields.push(("limit", Value::Str(l.limit.clone())));
                    fields.push(("max", Value::Int(l.max)));
                    fields.push(("got", Value::Int(l.got)));
                }
                Value::obj(fields)
            }
            Reply::Error { id, message } => {
                let mut fields = vec![("type", Value::Str("error".into()))];
                if let Some(id) = id {
                    fields.push(("id", Value::Int(*id)));
                }
                fields.push(("message", Value::Str(message.clone())));
                Value::obj(fields)
            }
            Reply::Dropped { session, existed } => Value::obj(vec![
                ("type", Value::Str("dropped".into())),
                ("session", Value::Str(session.clone())),
                ("existed", Value::Bool(*existed)),
            ]),
            Reply::Stats(payload) => {
                let mut fields = vec![("type", Value::Str("stats".into()))];
                if let Some(obj) = payload.as_obj() {
                    for (k, v) in obj {
                        fields.push((k.as_str(), v.clone()));
                    }
                }
                Value::Obj(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                )
            }
        }
    }

    /// Parses a reply frame — the client side of [`Reply::to_value`].
    ///
    /// # Errors
    ///
    /// A description of the malformed or missing field.
    pub fn from_value(v: &Value) -> Result<Reply, String> {
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("reply has no `type` field")?;
        match kind {
            "result" => Ok(Reply::Result(JobResult {
                id: req_u64(v, "id")?,
                outcome: req_str(v, "outcome")?,
                vcycles_run: req_u64(v, "vcycles_run")?,
                regs: match v.get("regs") {
                    Some(Value::Obj(fields)) => fields
                        .iter()
                        .map(|(name, val)| {
                            val.as_u64()
                                .map(|v| (name.clone(), v))
                                .ok_or_else(|| format!("reg `{name}` is not an integer"))
                        })
                        .collect::<Result<_, _>>()?,
                    _ => Vec::new(),
                },
                fingerprint: req_str(v, "fingerprint")?,
                displays: match v.get("displays") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .map(|d| {
                            d.as_str()
                                .map(str::to_string)
                                .ok_or("display entries must be strings".to_string())
                        })
                        .collect::<Result<_, _>>()?,
                    _ => Vec::new(),
                },
                session: v.get("session").and_then(Value::as_str).map(str::to_string),
                error: v.get("error").and_then(Value::as_str).map(str::to_string),
            })),
            "reject" => Ok(Reply::Reject {
                id: req_u64(v, "id")?,
                reason: req_str(v, "reason")?,
                retry_after_ms: req_u64(v, "retry_after_ms")?,
                limit: match v.get("limit").and_then(Value::as_str) {
                    Some(name) => Some(RejectLimit {
                        limit: name.to_string(),
                        max: opt_u64(v, "max")?.unwrap_or(0),
                        got: opt_u64(v, "got")?.unwrap_or(0),
                    }),
                    None => None,
                },
            }),
            "error" => Ok(Reply::Error {
                id: opt_u64(v, "id")?,
                message: req_str(v, "message")?,
            }),
            "dropped" => Ok(Reply::Dropped {
                session: req_str(v, "session")?,
                existed: v.get("existed").and_then(Value::as_bool).unwrap_or(false),
            }),
            "stats" => Ok(Reply::Stats(v.clone())),
            other => Err(format!("unknown reply type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        let req = Request::Submit(SubmitReq {
            id: 7,
            design: "counter".into(),
            grid: Some(2),
            vcycles: 100,
            pokes: vec![("count".into(), 41)],
            reads: vec!["count".into()],
            deadline_ms: Some(250),
            park: true,
        });
        write_frame(&mut buf, &req.to_value()).unwrap();
        write_frame(&mut buf, &Request::Stats.to_value()).unwrap();

        let mut r = &buf[..];
        let first = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::from_value(&first).unwrap(), req);
        let second = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(Request::from_value(&second).unwrap(), Request::Stats);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Result(JobResult {
                id: 3,
                outcome: "complete".into(),
                vcycles_run: 12,
                regs: vec![("count".into(), 53)],
                fingerprint: "0xdeadbeef".into(),
                displays: vec!["hello".into()],
                session: Some("s-1".into()),
                error: None,
            }),
            Reply::Reject {
                id: 9,
                reason: "queue_full".into(),
                retry_after_ms: 40,
                limit: None,
            },
            Reply::Reject {
                id: 10,
                reason: "netlist_limit".into(),
                retry_after_ms: 0,
                limit: Some(RejectLimit {
                    limit: "grid_cores".into(),
                    max: 256,
                    got: 1024,
                }),
            },
            Reply::Error {
                id: None,
                message: "unknown op `frob`".into(),
            },
        ];
        for reply in replies {
            let back = Reply::from_value(&reply.to_value()).unwrap();
            assert_eq!(back, reply);
        }
    }

    /// The typed [`FrameError`] carried by a framing io::Error, if any.
    fn frame_error(e: &std::io::Error) -> Option<FrameError> {
        e.get_ref()
            .and_then(|inner| inner.downcast_ref::<FrameError>())
            .cloned()
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        // Hostile length prefixes from u32::MAX down to just over the cap:
        // all must yield a typed Oversize error before reading (or
        // allocating for) any payload.
        for len in [u32::MAX, (MAX_FRAME as u32) + 1, 0x8000_0000] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&len.to_be_bytes());
            buf.extend_from_slice(b"whatever");
            let mut r = &buf[..];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(
                frame_error(&err),
                Some(FrameError::Oversize { len: len as usize }),
            );
        }
    }

    #[test]
    fn a_large_prefix_with_no_payload_does_not_preallocate() {
        // The prefix promises MAX_FRAME bytes but the stream ends
        // immediately. The reader must report truncation (having grown
        // its buffer only as far as data arrived), not allocate 16 MiB
        // up front. The typed error records both sides of the shortfall.
        let buf = (MAX_FRAME as u32).to_be_bytes().to_vec();
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(
            frame_error(&err),
            Some(FrameError::Truncated {
                expected: MAX_FRAME,
                got: 0
            }),
        );
    }

    #[test]
    fn truncated_frames_are_an_error_not_a_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Value::Int(1)).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(matches!(
            frame_error(&err),
            Some(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_length_prefix_is_an_error() {
        // One to three bytes of prefix then EOF: inside-a-frame EOF, not
        // a clean close.
        for n in 1..4 {
            let buf = vec![0u8; n];
            let mut r = &buf[..];
            assert!(read_frame(&mut r).is_err(), "{n}-byte prefix must error");
        }
    }

    #[test]
    fn submit_netlist_round_trips() {
        let req = Request::SubmitNetlist(SubmitNetlistReq {
            id: 11,
            netlist: Value::obj(vec![("version", Value::Int(1))]),
            grid: Some(2),
            vcycles: 64,
            pokes: vec![("count".into(), 3)],
            reads: vec!["count".into()],
            deadline_ms: None,
            park: true,
        });
        let back = Request::from_value(&req.to_value()).unwrap();
        assert_eq!(back, req);
    }
}
