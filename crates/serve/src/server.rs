//! The job server: accept connections, admit jobs, schedule them fairly
//! onto a shared fleet, and stream results back as they finish.
//!
//! ## Thread anatomy
//!
//! One **accept** thread takes connections. Each connection gets a
//! **reader** (parses frames, runs admission — including the compile on
//! a cache miss — and enqueues) and a **writer** (drains a channel of
//! reply frames; results are pushed to it from whatever thread finished
//! the job). One **dispatcher** thread assembles batches with deficit
//! round robin across connections and runs them on the fleet via the
//! streaming path, so each result is written back the moment its job
//! finishes — not at the batch barrier. One **reaper** thread drops idle
//! parked sessions.
//!
//! ## Fairness, backpressure, cancellation
//!
//! Admission rejects (with a retry hint) once the total queued work
//! passes the high-water mark — the client, not an unbounded queue,
//! holds the overload. Dispatch is deficit round robin: each connection
//! accrues `drr_quantum` Vcycles of credit per round and dispatches jobs
//! while its credit covers their cost, so a flood of cheap jobs from one
//! client cannot starve another's. Every job carries its connection's
//! cancel token: a disconnect trips it, stopping that client's running
//! jobs at their next Vcycle boundary and discarding its queued ones,
//! while everyone else's work is untouched.

use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use manticore::compiler::{
    compile, compile_controlled, CompileControl, CompileError, CompileOptions, CompileOutput,
};
use manticore::fleet::{BatchPolicy, Fleet, JobOutcome, JobOutput, SimJob};
use manticore::isa::MachineConfig;
use manticore::machine::{load_checkpoint, save_checkpoint, CompiledProgram};
use manticore::netlist::Netlist;
use manticore_util::{catch_silent_mut, CancelToken};

use crate::cache::{CacheEntry, CacheStats, ProgramCache};
use crate::catalog;
use crate::durable::{DurableStore, Envelope};
use crate::json::Value;
use crate::proto::{
    read_frame, write_frame, JobResult, RejectLimit, Reply, Request, ResumeReq, SubmitNetlistReq,
    SubmitReq,
};
use crate::session::{ParkedSession, SessionSource, SessionStats, SessionTable};
use crate::wire::{self, WireError, WireLimits};

/// Server tuning knobs. `Default` is sized for a small host (the CI
/// runner): two fleet workers, a 64 MiB cache, one compile slot.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet worker threads executing jobs.
    pub workers: usize,
    /// Gang lanes: compatible same-program jobs from one connection run
    /// in lockstep, up to this many per gang.
    pub lanes: usize,
    /// Compiled-program cache budget in bytes.
    pub cache_bytes: usize,
    /// Concurrent compilations allowed (cache misses beyond this queue).
    pub compile_slots: usize,
    /// Total queued jobs (across all connections) beyond which admission
    /// rejects with a retry hint.
    pub queue_high_water: usize,
    /// Milliseconds clients are told to back off when rejected.
    pub retry_after_ms: u64,
    /// Most jobs dispatched to the fleet in one batch.
    pub batch_max: usize,
    /// Vcycles of credit each connection accrues per scheduling round.
    pub drr_quantum: u64,
    /// Idle time after which a parked session is reaped.
    pub session_ttl: Duration,
    /// How often the reaper scans the session table.
    pub reaper_period: Duration,
    /// Wall-clock budget for compiling an untrusted (`submit_netlist`)
    /// design; exceeding it is a permanent `compile_deadline` reject.
    /// `None` disables the deadline (trusted deployments only).
    pub compile_deadline: Option<Duration>,
    /// Lifetime cap on netlist bytes one connection may submit for
    /// compilation; past it every `submit_netlist` is a permanent
    /// `netlist_quota` reject. Reconnecting resets the quota — the cap
    /// bounds damage per connection, not per client.
    pub conn_netlist_bytes: u64,
    /// Untrusted compilations allowed at once, across all connections.
    /// Beyond this, `submit_netlist` gets a transient `compile_busy`
    /// reject instead of queueing unbounded compile work.
    pub untrusted_compile_slots: u64,
    /// Resource limits applied to every submitted netlist before it is
    /// decoded or compiled.
    pub wire_limits: WireLimits,
    /// When set, parked sessions also spill to this directory and a
    /// restarted server recovers them (see [`crate::durable`]).
    pub session_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            lanes: 4,
            cache_bytes: 64 << 20,
            compile_slots: 1,
            queue_high_water: 1024,
            retry_after_ms: 20,
            batch_max: 256,
            drr_quantum: 50_000,
            session_ttl: Duration::from_secs(30),
            reaper_period: Duration::from_millis(500),
            compile_deadline: Some(Duration::from_secs(10)),
            conn_netlist_bytes: 16 << 20,
            untrusted_compile_slots: 1,
            wire_limits: WireLimits::default(),
            session_dir: None,
        }
    }
}

/// One admitted job waiting for dispatch.
struct PendingJob {
    job: SimJob,
    meta: JobMeta,
    /// DRR cost: the job's Vcycle budget (minimum 1).
    cost: u64,
}

/// Everything needed to turn a finished [`JobOutput`] into a reply.
struct JobMeta {
    id: u64,
    reads: Vec<String>,
    output: Arc<CompileOutput>,
    park: bool,
    /// The design's provenance — carried so a park can spill a
    /// recompilable record to the durable store.
    source: SessionSource,
    /// Reply channel of the submitting connection. Held per-job so a
    /// disconnect (which removes the connection's queue) cannot strand
    /// an in-flight job's reply path.
    tx: Sender<Value>,
}

struct ConnQueue {
    queue: VecDeque<PendingJob>,
    deficit: u64,
    cancel: CancelToken,
}

#[derive(Default)]
struct Sched {
    conns: HashMap<u64, ConnQueue>,
    /// Total queued jobs across all connections.
    queued: usize,
    /// Where the next DRR round starts, for rotating first-served.
    cursor: usize,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    /// Durable session files skipped at recovery (failed checksum,
    /// undecodable source, checkpoint/program mismatch).
    durable_corrupt: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    fleet: Fleet,
    cache: ProgramCache,
    sessions: SessionTable,
    durable: Option<DurableStore>,
    shutdown: CancelToken,
    sched: Mutex<Sched>,
    work: Condvar,
    counters: Counters,
    /// Gauge of untrusted compiles currently running, bounded by
    /// [`ServerConfig::untrusted_compile_slots`].
    untrusted_compiling: AtomicU64,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, the dispatcher, and the reaper; queued jobs that have
/// not been dispatched are discarded.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Socket bind failure.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let durable = match &cfg.session_dir {
            Some(dir) => Some(DurableStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            fleet: Fleet::new(cfg.workers),
            cache: ProgramCache::new(cfg.cache_bytes, cfg.compile_slots),
            sessions: SessionTable::new(cfg.session_ttl),
            durable,
            shutdown: CancelToken::new(),
            sched: Mutex::new(Sched::default()),
            work: Condvar::new(),
            counters: Counters::default(),
            untrusted_compiling: AtomicU64::new(0),
            cfg,
        });
        // Recover spilled sessions before serving a single request, so a
        // client that reconnects immediately after a restart finds its
        // parked sessions already re-adopted under their original ids.
        recover_sessions(&shared);

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || dispatch_loop(shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || reaper_loop(shared)));
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Compiled-program cache counters (for harnesses and tests; clients
    /// get the same numbers via the `stats` op).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Session table counters.
    pub fn session_stats(&self) -> SessionStats {
        self.shared.sessions.stats()
    }

    /// Blocks until something trips the shutdown token — a client's
    /// `shutdown` op, typically — then joins the service threads. The
    /// daemon binary's main loop.
    pub fn shutdown_when_requested(&mut self) {
        while !self.shared.shutdown.is_cancelled() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.shutdown();
    }

    /// Stops the server: trips the shutdown token, wakes every service
    /// thread, and joins them. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.cancel();
        self.shared.work.notify_all();
        // The accept loop is blocked in `accept`; a throwaway connection
        // makes it observe the tripped token.
        let _ = TcpStream::connect(self.local_addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.is_cancelled() {
            break;
        }
        let Ok(stream) = stream else { continue };
        next_conn += 1;
        let conn_id = next_conn;
        shared.counters.conns_opened.fetch_add(1, Ordering::Relaxed);

        let (tx, rx) = std::sync::mpsc::channel::<Value>();
        let cancel = CancelToken::new();
        {
            let mut sched = shared.sched.lock().expect("sched lock poisoned");
            sched.conns.insert(
                conn_id,
                ConnQueue {
                    queue: VecDeque::new(),
                    deficit: 0,
                    cancel: cancel.clone(),
                },
            );
        }

        let write_half = stream.try_clone().ok();
        if let Some(write_half) = write_half {
            // Writer and reader are detached: they exit when the client
            // disconnects (reader EOF drops the queue and the reply
            // senders; the writer drains and sees the channel close).
            std::thread::spawn(move || writer_loop(write_half, rx));
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                reader_loop(stream, conn_id, tx, cancel, &shared);
                disconnect(conn_id, &shared);
            });
        } else {
            let mut sched = shared.sched.lock().expect("sched lock poisoned");
            sched.conns.remove(&conn_id);
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Value>) {
    for value in rx {
        if write_frame(&mut stream, &value).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}

/// Tears down a connection: trips its cancel token (stopping its running
/// jobs at the next Vcycle boundary) and discards its queued jobs. Other
/// connections' work is untouched.
fn disconnect(conn_id: u64, shared: &Shared) {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    if let Some(conn) = sched.conns.remove(&conn_id) {
        conn.cancel.cancel();
        sched.queued -= conn.queue.len();
    }
    drop(sched);
    shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
}

fn reader_loop(
    stream: TcpStream,
    conn_id: u64,
    tx: Sender<Value>,
    cancel: CancelToken,
    shared: &Shared,
) {
    let mut reader = std::io::BufReader::new(stream);
    // Lifetime quota of netlist bytes this connection may submit for
    // compilation; lives on the reader so no lock is needed.
    let mut netlist_bytes_used: u64 = 0;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean close, I/O error, or garbage framing: either way the
            // conversation is over.
            Ok(None) | Err(_) => return,
        };
        let request = match Request::from_value(&frame) {
            Ok(request) => request,
            Err(message) => {
                let id = frame.get("id").and_then(Value::as_u64);
                let _ = tx.send(Reply::Error { id, message }.to_value());
                continue;
            }
        };
        match request {
            Request::Submit(req) => {
                let reply = admit_submit(&req, conn_id, &tx, &cancel, shared);
                if let Some(reply) = reply {
                    let _ = tx.send(reply.to_value());
                }
            }
            Request::SubmitNetlist(req) => {
                let reply = admit_submit_netlist(
                    &req,
                    conn_id,
                    &tx,
                    &cancel,
                    &mut netlist_bytes_used,
                    shared,
                );
                if let Some(reply) = reply {
                    let _ = tx.send(reply.to_value());
                }
            }
            Request::Resume(req) => {
                let reply = admit_resume(&req, conn_id, &tx, &cancel, shared);
                if let Some(reply) = reply {
                    let _ = tx.send(reply.to_value());
                }
            }
            Request::DropSession { session } => {
                let existed = shared.sessions.drop_session(&session);
                if let Some(store) = &shared.durable {
                    store.remove(&session);
                }
                let _ = tx.send(Reply::Dropped { session, existed }.to_value());
            }
            Request::Stats => {
                let _ = tx.send(Reply::Stats(stats_value(shared)).to_value());
            }
            Request::Shutdown => {
                // Final counters first — harnesses use them — then stop
                // the service threads.
                let _ = tx.send(Reply::Stats(stats_value(shared)).to_value());
                shared.shutdown.cancel();
                shared.work.notify_all();
                return;
            }
        }
    }
}

/// Admits a submission: resolve the design through the cache, build the
/// input vector, and enqueue — or explain why not. `None` means the job
/// was enqueued (its reply comes later, from the dispatcher's sink).
fn admit_submit(
    req: &SubmitReq,
    conn_id: u64,
    tx: &Sender<Value>,
    cancel: &CancelToken,
    shared: &Shared,
) -> Option<Reply> {
    let err = |message: String| {
        Some(Reply::Error {
            id: Some(req.id),
            message,
        })
    };
    let Some((netlist, config)) = catalog::lookup(&req.design, req.grid) else {
        return err(format!("unknown design `{}`", req.design));
    };
    let key = catalog::netlist_hash(&netlist, &config);
    // Miss path: compile on this reader thread, bounded by the cache's
    // compile slots; concurrent requests for the same key wait and share.
    let entry = shared.cache.get_or_compile(key, || {
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let output = Arc::new(compile(&netlist, &options).map_err(|e| e.to_string())?);
        let program = CompiledProgram::compile_shared(config.clone(), &output.binary)
            .map_err(|e| e.to_string())?;
        let bytes = program.approx_bytes() + output.binary.total_instructions() * 8;
        Ok(CacheEntry {
            output,
            program,
            bytes,
        })
    });
    let entry = match entry {
        Ok(entry) => entry,
        Err(e) => return err(format!("compile failed for `{}`: {e}", req.design)),
    };

    let mut job = SimJob::new(&entry.program, req.vcycles).cancel_token(cancel.clone());
    for (name, value) in &req.pokes {
        let Some(words) = manticore::rtl_reg_words(&entry.output, name, *value) else {
            return err(format!("no register `{name}` in `{}`", req.design));
        };
        for (core, mreg, word) in words {
            job = job.poke(core, mreg, word);
        }
    }
    for name in &req.reads {
        if !entry
            .output
            .optimized
            .registers()
            .iter()
            .any(|r| &r.name == name)
        {
            return err(format!("no register `{name}` in `{}`", req.design));
        }
    }
    if let Some(ms) = req.deadline_ms {
        job = job.deadline(Instant::now() + Duration::from_millis(ms));
    }

    enqueue(
        PendingJob {
            job,
            meta: JobMeta {
                id: req.id,
                reads: req.reads.clone(),
                output: Arc::clone(&entry.output),
                park: req.park,
                source: SessionSource::Catalog {
                    name: req.design.clone(),
                    grid: config.grid_width,
                },
                tx: tx.clone(),
            },
            cost: req.vcycles.max(1),
        },
        conn_id,
        shared,
    )
}

/// How an untrusted compile failed — deadlines get a structured reject,
/// everything else an error reply.
enum UntrustedCompileError {
    /// The compile hit the server's deadline (or the connection's cancel
    /// token) at a pass-manager poll point.
    Deadline,
    /// Compiler error or panic, with the message.
    Other(String),
}

/// Compiles an untrusted netlist through the shared cache, under the
/// server's compile deadline and the connection's cancel token. Panics
/// inside the compiler are caught *inside* the build closure — a panic
/// that escaped `get_or_compile` would strand the key in `Building` and
/// hang every waiter, which is exactly the failure mode a hostile
/// netlist would aim for.
fn compile_untrusted(
    netlist: &Netlist,
    config: &MachineConfig,
    cancel: &CancelToken,
    shared: &Shared,
) -> Result<Arc<CacheEntry>, UntrustedCompileError> {
    let key = catalog::netlist_hash(netlist, config);
    let deadline_hit = Cell::new(false);
    let entry = shared.cache.get_or_compile(key, || {
        catch_silent_mut(|| {
            let options = CompileOptions {
                config: config.clone(),
                ..Default::default()
            };
            let control = CompileControl {
                cancel: Some(cancel.clone()),
                deadline: shared.cfg.compile_deadline.map(|d| Instant::now() + d),
            };
            let output = compile_controlled(netlist, &options, &control).map_err(|e| {
                if matches!(
                    e,
                    CompileError::DeadlineExceeded { .. } | CompileError::Cancelled { .. }
                ) {
                    deadline_hit.set(true);
                }
                e.to_string()
            })?;
            let output = Arc::new(output);
            let program = CompiledProgram::compile_shared(config.clone(), &output.binary)
                .map_err(|e| e.to_string())?;
            let bytes = program.approx_bytes() + output.binary.total_instructions() * 8;
            Ok(CacheEntry {
                output,
                program,
                bytes,
            })
        })
        .unwrap_or_else(|panic| Err(format!("compiler panicked: {panic}")))
    });
    entry.map_err(|e| {
        if deadline_hit.get() {
            UntrustedCompileError::Deadline
        } else {
            UntrustedCompileError::Other(e)
        }
    })
}

/// Admits a client-supplied netlist. The full gauntlet, cheapest checks
/// first: connection byte quota, grid limit, wire decode under the
/// resource limits (counts checked before elements), structural
/// validation, then a deadline-bounded compile in a bounded slot. Only
/// a design that survives all of it touches the fleet.
fn admit_submit_netlist(
    req: &SubmitNetlistReq,
    conn_id: u64,
    tx: &Sender<Value>,
    cancel: &CancelToken,
    netlist_bytes_used: &mut u64,
    shared: &Shared,
) -> Option<Reply> {
    let err = |message: String| {
        Some(Reply::Error {
            id: Some(req.id),
            message,
        })
    };
    let reject = |reason: &str, retry_after_ms: u64, limit: Option<RejectLimit>| {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        Some(Reply::Reject {
            id: req.id,
            reason: reason.to_string(),
            retry_after_ms,
            limit,
        })
    };
    let limits = &shared.cfg.wire_limits;

    // The byte quota is charged on the rendered size of what the client
    // actually sent, before any decode work happens on its behalf.
    let bytes = req.netlist.render().len() as u64;
    if bytes > limits.netlist_bytes as u64 {
        return reject(
            "netlist_limit",
            0,
            Some(RejectLimit {
                limit: "netlist_bytes".into(),
                max: limits.netlist_bytes as u64,
                got: bytes,
            }),
        );
    }
    let charged = netlist_bytes_used.saturating_add(bytes);
    if charged > shared.cfg.conn_netlist_bytes {
        return reject(
            "netlist_quota",
            0,
            Some(RejectLimit {
                limit: "conn_netlist_bytes".into(),
                max: shared.cfg.conn_netlist_bytes,
                got: charged,
            }),
        );
    }

    let side = req.grid.unwrap_or(4);
    match wire::check_grid(side, limits) {
        Ok(()) => {}
        Err(WireError::Limit { limit, max, got }) => {
            return reject(
                "netlist_limit",
                0,
                Some(RejectLimit {
                    limit: limit.into(),
                    max,
                    got,
                }),
            );
        }
        Err(e) => return err(format!("netlist rejected: {e}")),
    }
    let netlist = match wire::decode_netlist(&req.netlist, limits) {
        Ok(netlist) => netlist,
        Err(WireError::Limit { limit, max, got }) => {
            return reject(
                "netlist_limit",
                0,
                Some(RejectLimit {
                    limit: limit.into(),
                    max,
                    got,
                }),
            );
        }
        Err(e) => return err(format!("netlist rejected: {e}")),
    };
    *netlist_bytes_used = charged;

    // Bounded compile concurrency for untrusted work: no free slot means
    // a transient reject, not an unbounded queue of compile jobs.
    let slots = shared.cfg.untrusted_compile_slots.max(1);
    let acquired = shared
        .untrusted_compiling
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < slots).then_some(n + 1)
        })
        .is_ok();
    if !acquired {
        return reject("compile_busy", shared.cfg.retry_after_ms.max(1), None);
    }
    let config = MachineConfig::with_grid(side, side);
    let compiled = compile_untrusted(&netlist, &config, cancel, shared);
    shared.untrusted_compiling.fetch_sub(1, Ordering::AcqRel);
    let entry = match compiled {
        Ok(entry) => entry,
        Err(UntrustedCompileError::Deadline) => return reject("compile_deadline", 0, None),
        Err(UntrustedCompileError::Other(e)) => return err(format!("compile failed: {e}")),
    };

    let mut job = SimJob::new(&entry.program, req.vcycles).cancel_token(cancel.clone());
    for (name, value) in &req.pokes {
        let Some(words) = manticore::rtl_reg_words(&entry.output, name, *value) else {
            return err(format!("no register `{name}` in submitted netlist"));
        };
        for (core, mreg, word) in words {
            job = job.poke(core, mreg, word);
        }
    }
    for name in &req.reads {
        if !entry
            .output
            .optimized
            .registers()
            .iter()
            .any(|r| &r.name == name)
        {
            return err(format!("no register `{name}` in submitted netlist"));
        }
    }
    if let Some(ms) = req.deadline_ms {
        job = job.deadline(Instant::now() + Duration::from_millis(ms));
    }
    enqueue(
        PendingJob {
            job,
            meta: JobMeta {
                id: req.id,
                reads: req.reads.clone(),
                output: Arc::clone(&entry.output),
                park: req.park,
                source: SessionSource::Wire {
                    netlist: req.netlist.clone(),
                    grid: side,
                },
                tx: tx.clone(),
            },
            cost: req.vcycles.max(1),
        },
        conn_id,
        shared,
    )
}

/// Admits a resume: take the parked machine and enqueue its next slice.
fn admit_resume(
    req: &ResumeReq,
    conn_id: u64,
    tx: &Sender<Value>,
    cancel: &CancelToken,
    shared: &Shared,
) -> Option<Reply> {
    let err = |message: String| {
        Some(Reply::Error {
            id: Some(req.id),
            message,
        })
    };
    let Some(parked) = shared.sessions.resume(&req.session) else {
        return err(format!(
            "no parked session `{}` (never parked, already resumed, or reaped)",
            req.session
        ));
    };
    // The machine is live again; its spilled file no longer describes
    // anything (a re-park writes a fresh one under a fresh id).
    if let Some(store) = &shared.durable {
        store.remove(&req.session);
    }
    let ParkedSession {
        machine,
        output,
        source,
    } = parked;
    let mut job = SimJob::resume(machine, req.vcycles).cancel_token(cancel.clone());
    for (name, value) in &req.pokes {
        let Some(words) = manticore::rtl_reg_words(&output, name, *value) else {
            return err(format!("no register `{name}` in session `{}`", req.session));
        };
        for (core, mreg, word) in words {
            job = job.poke(core, mreg, word);
        }
    }
    enqueue(
        PendingJob {
            job,
            meta: JobMeta {
                id: req.id,
                reads: req.reads.clone(),
                output,
                park: req.park,
                source,
                tx: tx.clone(),
            },
            cost: req.vcycles.max(1),
        },
        conn_id,
        shared,
    )
}

/// Queues an admitted job, or bounces it off the high-water mark.
fn enqueue(pending: PendingJob, conn_id: u64, shared: &Shared) -> Option<Reply> {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    if sched.queued >= shared.cfg.queue_high_water {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Some(Reply::Reject {
            id: pending.meta.id,
            reason: "queue_full".to_string(),
            retry_after_ms: shared.cfg.retry_after_ms,
            limit: None,
        });
    }
    let Some(conn) = sched.conns.get_mut(&conn_id) else {
        // The connection vanished between read and enqueue; nobody is
        // left to hear a reply.
        return None;
    };
    conn.queue.push_back(pending);
    sched.queued += 1;
    drop(sched);
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work.notify_all();
    None
}

/// The dispatcher: DRR batch assembly, then a streaming fleet run whose
/// sink writes each reply the moment its job finishes.
fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        let Some(batch) = next_batch(&shared) else {
            return;
        };
        let (jobs, metas): (Vec<SimJob>, Vec<JobMeta>) =
            batch.into_iter().map(|p| (p.job, p.meta)).unzip();
        let policy = BatchPolicy {
            cancel: Some(shared.shutdown.clone()),
            ..BatchPolicy::default()
        };
        shared
            .fleet
            .run_ganged_stream(jobs, shared.cfg.lanes, &policy, &|out: JobOutput| {
                let meta = &metas[out.index];
                let reply = finish_job(meta, out, &shared);
                // A send failure means the client is gone; its work was
                // already cancelled by the disconnect path.
                let _ = meta.tx.send(reply.to_value());
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            });
    }
}

/// Assembles the next batch with deficit round robin, blocking until
/// there is work. `None` on shutdown.
fn next_batch(shared: &Shared) -> Option<Vec<PendingJob>> {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    loop {
        if shared.shutdown.is_cancelled() {
            return None;
        }
        if sched.queued == 0 {
            sched = shared.work.wait(sched).expect("sched lock poisoned");
            continue;
        }
        let mut batch = Vec::new();
        // Rounds continue until something dispatches: every round adds a
        // quantum to each backlogged connection, so even a job costing
        // many quanta eventually accrues the credit to run.
        while batch.len() < shared.cfg.batch_max && sched.queued > 0 {
            let mut ids: Vec<u64> = sched.conns.keys().copied().collect();
            ids.sort_unstable();
            if ids.is_empty() {
                break;
            }
            // Rotate who goes first so low conn ids get no edge.
            let start = sched.cursor % ids.len();
            ids.rotate_left(start);
            sched.cursor = sched.cursor.wrapping_add(1);
            for id in ids {
                let Some(conn) = sched.conns.get_mut(&id) else {
                    continue;
                };
                if conn.queue.is_empty() {
                    // An idle connection banks no credit.
                    conn.deficit = 0;
                    continue;
                }
                conn.deficit = conn.deficit.saturating_add(shared.cfg.drr_quantum);
                let mut popped = 0;
                while batch.len() < shared.cfg.batch_max {
                    let Some(front) = conn.queue.front() else {
                        conn.deficit = 0;
                        break;
                    };
                    // Clamp the charge to one quantum (the classic DRR
                    // requirement): a job dearer than the quantum costs
                    // a full round's credit, not an unbounded wait.
                    let cost = front.cost.clamp(1, shared.cfg.drr_quantum);
                    if cost > conn.deficit {
                        break;
                    }
                    conn.deficit -= cost;
                    let pending = conn.queue.pop_front().expect("front just observed");
                    popped += 1;
                    batch.push(pending);
                }
                sched.queued -= popped;
            }
        }
        if !batch.is_empty() {
            return Some(batch);
        }
    }
}

/// Renders one finished job into its reply: read back the requested
/// registers, fingerprint the state, and park it if asked.
fn finish_job(meta: &JobMeta, out: JobOutput, shared: &Shared) -> Reply {
    let outcome = outcome_label(out.outcome).to_string();
    let (vcycles_run, mut displays, error) = match &out.result {
        Ok(run) => (run.vcycles_run, run.displays.clone(), None),
        Err(e) => (0, Vec::new(), Some(e.to_string())),
    };
    let Some(mut machine) = out.machine else {
        // Worker panic: no state survives, only the structured failure.
        return Reply::Result(JobResult {
            id: meta.id,
            outcome,
            vcycles_run,
            regs: Vec::new(),
            fingerprint: "0x0".to_string(),
            displays,
            session: None,
            error,
        });
    };
    if out.result.is_err() {
        displays = machine.drain_pending_displays();
    }
    let regs = meta
        .reads
        .iter()
        .filter_map(|name| {
            manticore::rtl_reg_read(&meta.output, name, |core, mreg| {
                machine.read_reg(core, mreg)
            })
            .map(|bits| (name.clone(), bits.to_u64()))
        })
        .collect();
    let fingerprint = format!("{:#018x}", machine.state_fingerprint());
    let session = if meta.park {
        // Serialize *before* the park moves the machine; the spill is
        // written after the park so the file name carries the final id.
        let spill = shared
            .durable
            .as_ref()
            .map(|_| save_checkpoint(&machine.checkpoint()));
        let id = shared.sessions.park(ParkedSession {
            machine,
            output: Arc::clone(&meta.output),
            source: meta.source.clone(),
        });
        if let (Some(store), Some(checkpoint)) = (&shared.durable, spill) {
            let env = Envelope {
                id: id.clone(),
                source: meta.source.clone(),
                checkpoint,
            };
            if let Err(e) = store.save(&env) {
                // Durability degrades to memory-only; the session itself
                // stays usable.
                eprintln!("manticore-served: session `{id}` not spilled: {e}");
            }
        }
        Some(id)
    } else {
        None
    };
    Reply::Result(JobResult {
        id: meta.id,
        outcome,
        vcycles_run,
        regs,
        fingerprint,
        displays,
        session,
        error,
    })
}

fn outcome_label(outcome: JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Complete => "complete",
        JobOutcome::BudgetExhausted => "budget",
        JobOutcome::Deadline => "deadline",
        JobOutcome::Cancelled => "cancelled",
        JobOutcome::Faulted => "faulted",
        JobOutcome::WorkerPanic => "panic",
    }
}

/// The stats payload: every counter an operator needs to see queue
/// pressure, cache health, and session churn at a glance.
fn stats_value(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let sessions = shared.sessions.stats();
    let queued = shared.sched.lock().expect("sched lock poisoned").queued;
    let c = &shared.counters;
    Value::obj(vec![
        (
            "jobs_submitted",
            Value::Int(c.submitted.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed",
            Value::Int(c.completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_rejected",
            Value::Int(c.rejected.load(Ordering::Relaxed)),
        ),
        ("queued", Value::Int(queued as u64)),
        (
            "conns_opened",
            Value::Int(c.conns_opened.load(Ordering::Relaxed)),
        ),
        (
            "conns_closed",
            Value::Int(c.conns_closed.load(Ordering::Relaxed)),
        ),
        (
            "cache",
            Value::obj(vec![
                ("hits", Value::Int(cache.hits)),
                ("misses", Value::Int(cache.misses)),
                ("evictions", Value::Int(cache.evictions)),
                ("entries", Value::Int(cache.entries as u64)),
                ("bytes", Value::Int(cache.bytes as u64)),
            ]),
        ),
        (
            "sessions",
            Value::obj(vec![
                ("live", Value::Int(sessions.live as u64)),
                ("parked", Value::Int(sessions.parked)),
                ("resumed", Value::Int(sessions.resumed)),
                ("reaped", Value::Int(sessions.reaped)),
                ("recovered", Value::Int(sessions.recovered)),
            ]),
        ),
        (
            "durable_corrupt",
            Value::Int(c.durable_corrupt.load(Ordering::Relaxed)),
        ),
    ])
}

/// Re-adopts every session the durable store can produce. Runs once, in
/// `bind`, before the accept loop starts. Unrecoverable files (corrupt,
/// source no longer decodable, checkpoint/program mismatch) are removed
/// and counted — a bad file must not fail recovery of the good ones,
/// and must not fail again on every future restart.
fn recover_sessions(shared: &Shared) {
    let Some(store) = &shared.durable else { return };
    let (envelopes, corrupt) = store.load_all();
    shared
        .counters
        .durable_corrupt
        .fetch_add(corrupt as u64, Ordering::Relaxed);
    for env in envelopes {
        if let Err(e) = recover_one(&env, shared) {
            eprintln!(
                "manticore-served: dropping unrecoverable session `{}`: {e}",
                env.id
            );
            store.remove(&env.id);
            shared
                .counters
                .durable_corrupt
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One session's recovery: recompile its recorded source (deterministic,
/// so the program is bit-identical to the pre-crash one), rebind the
/// checkpoint — which re-verifies the structural shape — and re-park
/// under the original id.
fn recover_one(env: &Envelope, shared: &Shared) -> Result<(), String> {
    let (netlist, config) = match &env.source {
        SessionSource::Catalog { name, grid } => catalog::lookup(name, Some(*grid))
            .ok_or_else(|| format!("unknown catalog design `{name}`"))?,
        SessionSource::Wire { netlist, grid } => {
            let decoded = wire::decode_netlist(netlist, &shared.cfg.wire_limits)
                .map_err(|e| e.to_string())?;
            (decoded, MachineConfig::with_grid(*grid, *grid))
        }
    };
    let never_cancelled = CancelToken::new();
    let entry =
        compile_untrusted(&netlist, &config, &never_cancelled, shared).map_err(|e| match e {
            UntrustedCompileError::Deadline => "compile deadline at recovery".to_string(),
            UntrustedCompileError::Other(msg) => msg,
        })?;
    let checkpoint = load_checkpoint(&env.checkpoint, &entry.program).map_err(|e| e.to_string())?;
    shared.sessions.adopt(
        &env.id,
        ParkedSession {
            machine: checkpoint.boot(),
            output: Arc::clone(&entry.output),
            source: env.source.clone(),
        },
    );
    Ok(())
}

fn reaper_loop(shared: Arc<Shared>) {
    while !shared.shutdown.is_cancelled() {
        for id in shared.sessions.reap() {
            if let Some(store) = &shared.durable {
                store.remove(&id);
            }
        }
        // Sleep in short slices so shutdown is prompt even with a long
        // reaper period.
        let mut remaining = shared.cfg.reaper_period;
        while !remaining.is_zero() && !shared.shutdown.is_cancelled() {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}
