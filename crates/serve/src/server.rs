//! The job server: accept connections, admit jobs, schedule them fairly
//! onto a shared fleet, and stream results back as they finish.
//!
//! ## Thread anatomy
//!
//! One **accept** thread takes connections. Each connection gets a
//! **reader** (parses frames, runs admission — including the compile on
//! a cache miss — and enqueues) and a **writer** (drains a channel of
//! reply frames; results are pushed to it from whatever thread finished
//! the job). One **dispatcher** thread assembles batches with deficit
//! round robin across connections and runs them on the fleet via the
//! streaming path, so each result is written back the moment its job
//! finishes — not at the batch barrier. One **reaper** thread drops idle
//! parked sessions.
//!
//! ## Fairness, backpressure, cancellation
//!
//! Admission rejects (with a retry hint) once the total queued work
//! passes the high-water mark — the client, not an unbounded queue,
//! holds the overload. Dispatch is deficit round robin: each connection
//! accrues `drr_quantum` Vcycles of credit per round and dispatches jobs
//! while its credit covers their cost, so a flood of cheap jobs from one
//! client cannot starve another's. Every job carries its connection's
//! cancel token: a disconnect trips it, stopping that client's running
//! jobs at their next Vcycle boundary and discarding its queued ones,
//! while everyone else's work is untouched.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use manticore::compiler::{compile, CompileOptions, CompileOutput};
use manticore::fleet::{BatchPolicy, Fleet, JobOutcome, JobOutput, SimJob};
use manticore::machine::CompiledProgram;
use manticore_util::CancelToken;

use crate::cache::{CacheEntry, CacheStats, ProgramCache};
use crate::catalog;
use crate::json::Value;
use crate::proto::{read_frame, write_frame, JobResult, Reply, Request, ResumeReq, SubmitReq};
use crate::session::{ParkedSession, SessionStats, SessionTable};

/// Server tuning knobs. `Default` is sized for a small host (the CI
/// runner): two fleet workers, a 64 MiB cache, one compile slot.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fleet worker threads executing jobs.
    pub workers: usize,
    /// Gang lanes: compatible same-program jobs from one connection run
    /// in lockstep, up to this many per gang.
    pub lanes: usize,
    /// Compiled-program cache budget in bytes.
    pub cache_bytes: usize,
    /// Concurrent compilations allowed (cache misses beyond this queue).
    pub compile_slots: usize,
    /// Total queued jobs (across all connections) beyond which admission
    /// rejects with a retry hint.
    pub queue_high_water: usize,
    /// Milliseconds clients are told to back off when rejected.
    pub retry_after_ms: u64,
    /// Most jobs dispatched to the fleet in one batch.
    pub batch_max: usize,
    /// Vcycles of credit each connection accrues per scheduling round.
    pub drr_quantum: u64,
    /// Idle time after which a parked session is reaped.
    pub session_ttl: Duration,
    /// How often the reaper scans the session table.
    pub reaper_period: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            lanes: 4,
            cache_bytes: 64 << 20,
            compile_slots: 1,
            queue_high_water: 1024,
            retry_after_ms: 20,
            batch_max: 256,
            drr_quantum: 50_000,
            session_ttl: Duration::from_secs(30),
            reaper_period: Duration::from_millis(500),
        }
    }
}

/// One admitted job waiting for dispatch.
struct PendingJob {
    job: SimJob,
    meta: JobMeta,
    /// DRR cost: the job's Vcycle budget (minimum 1).
    cost: u64,
}

/// Everything needed to turn a finished [`JobOutput`] into a reply.
struct JobMeta {
    id: u64,
    reads: Vec<String>,
    output: Arc<CompileOutput>,
    park: bool,
    /// Reply channel of the submitting connection. Held per-job so a
    /// disconnect (which removes the connection's queue) cannot strand
    /// an in-flight job's reply path.
    tx: Sender<Value>,
}

struct ConnQueue {
    queue: VecDeque<PendingJob>,
    deficit: u64,
    cancel: CancelToken,
}

#[derive(Default)]
struct Sched {
    conns: HashMap<u64, ConnQueue>,
    /// Total queued jobs across all connections.
    queued: usize,
    /// Where the next DRR round starts, for rotating first-served.
    cursor: usize,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
}

struct Shared {
    cfg: ServerConfig,
    fleet: Fleet,
    cache: ProgramCache,
    sessions: SessionTable,
    shutdown: CancelToken,
    sched: Mutex<Sched>,
    work: Condvar,
    counters: Counters,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, the dispatcher, and the reaper; queued jobs that have
/// not been dispatched are discarded.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Socket bind failure.
    pub fn bind(addr: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            fleet: Fleet::new(cfg.workers),
            cache: ProgramCache::new(cfg.cache_bytes, cfg.compile_slots),
            sessions: SessionTable::new(cfg.session_ttl),
            shutdown: CancelToken::new(),
            sched: Mutex::new(Sched::default()),
            work: Condvar::new(),
            counters: Counters::default(),
            cfg,
        });

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(listener, shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || dispatch_loop(shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || reaper_loop(shared)));
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Compiled-program cache counters (for harnesses and tests; clients
    /// get the same numbers via the `stats` op).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Session table counters.
    pub fn session_stats(&self) -> SessionStats {
        self.shared.sessions.stats()
    }

    /// Blocks until something trips the shutdown token — a client's
    /// `shutdown` op, typically — then joins the service threads. The
    /// daemon binary's main loop.
    pub fn shutdown_when_requested(&mut self) {
        while !self.shared.shutdown.is_cancelled() {
            std::thread::sleep(Duration::from_millis(100));
        }
        self.shutdown();
    }

    /// Stops the server: trips the shutdown token, wakes every service
    /// thread, and joins them. Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.cancel();
        self.shared.work.notify_all();
        // The accept loop is blocked in `accept`; a throwaway connection
        // makes it observe the tripped token.
        let _ = TcpStream::connect(self.local_addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutdown.is_cancelled() {
            break;
        }
        let Ok(stream) = stream else { continue };
        next_conn += 1;
        let conn_id = next_conn;
        shared.counters.conns_opened.fetch_add(1, Ordering::Relaxed);

        let (tx, rx) = std::sync::mpsc::channel::<Value>();
        let cancel = CancelToken::new();
        {
            let mut sched = shared.sched.lock().expect("sched lock poisoned");
            sched.conns.insert(
                conn_id,
                ConnQueue {
                    queue: VecDeque::new(),
                    deficit: 0,
                    cancel: cancel.clone(),
                },
            );
        }

        let write_half = stream.try_clone().ok();
        if let Some(write_half) = write_half {
            // Writer and reader are detached: they exit when the client
            // disconnects (reader EOF drops the queue and the reply
            // senders; the writer drains and sees the channel close).
            std::thread::spawn(move || writer_loop(write_half, rx));
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                reader_loop(stream, conn_id, tx, cancel, &shared);
                disconnect(conn_id, &shared);
            });
        } else {
            let mut sched = shared.sched.lock().expect("sched lock poisoned");
            sched.conns.remove(&conn_id);
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<Value>) {
    for value in rx {
        if write_frame(&mut stream, &value).is_err() {
            break;
        }
    }
    let _ = stream.flush();
}

/// Tears down a connection: trips its cancel token (stopping its running
/// jobs at the next Vcycle boundary) and discards its queued jobs. Other
/// connections' work is untouched.
fn disconnect(conn_id: u64, shared: &Shared) {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    if let Some(conn) = sched.conns.remove(&conn_id) {
        conn.cancel.cancel();
        sched.queued -= conn.queue.len();
    }
    drop(sched);
    shared.counters.conns_closed.fetch_add(1, Ordering::Relaxed);
}

fn reader_loop(
    stream: TcpStream,
    conn_id: u64,
    tx: Sender<Value>,
    cancel: CancelToken,
    shared: &Shared,
) {
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean close, I/O error, or garbage framing: either way the
            // conversation is over.
            Ok(None) | Err(_) => return,
        };
        let request = match Request::from_value(&frame) {
            Ok(request) => request,
            Err(message) => {
                let id = frame.get("id").and_then(Value::as_u64);
                let _ = tx.send(Reply::Error { id, message }.to_value());
                continue;
            }
        };
        match request {
            Request::Submit(req) => {
                let reply = admit_submit(&req, conn_id, &tx, &cancel, shared);
                if let Some(reply) = reply {
                    let _ = tx.send(reply.to_value());
                }
            }
            Request::Resume(req) => {
                let reply = admit_resume(&req, conn_id, &tx, &cancel, shared);
                if let Some(reply) = reply {
                    let _ = tx.send(reply.to_value());
                }
            }
            Request::DropSession { session } => {
                let existed = shared.sessions.drop_session(&session);
                let _ = tx.send(Reply::Dropped { session, existed }.to_value());
            }
            Request::Stats => {
                let _ = tx.send(Reply::Stats(stats_value(shared)).to_value());
            }
            Request::Shutdown => {
                // Final counters first — harnesses use them — then stop
                // the service threads.
                let _ = tx.send(Reply::Stats(stats_value(shared)).to_value());
                shared.shutdown.cancel();
                shared.work.notify_all();
                return;
            }
        }
    }
}

/// Admits a submission: resolve the design through the cache, build the
/// input vector, and enqueue — or explain why not. `None` means the job
/// was enqueued (its reply comes later, from the dispatcher's sink).
fn admit_submit(
    req: &SubmitReq,
    conn_id: u64,
    tx: &Sender<Value>,
    cancel: &CancelToken,
    shared: &Shared,
) -> Option<Reply> {
    let err = |message: String| {
        Some(Reply::Error {
            id: Some(req.id),
            message,
        })
    };
    let Some((netlist, config)) = catalog::lookup(&req.design, req.grid) else {
        return err(format!("unknown design `{}`", req.design));
    };
    let key = catalog::netlist_hash(&netlist, &config);
    // Miss path: compile on this reader thread, bounded by the cache's
    // compile slots; concurrent requests for the same key wait and share.
    let entry = shared.cache.get_or_compile(key, || {
        let options = CompileOptions {
            config: config.clone(),
            ..Default::default()
        };
        let output = Arc::new(compile(&netlist, &options).map_err(|e| e.to_string())?);
        let program = CompiledProgram::compile_shared(config.clone(), &output.binary)
            .map_err(|e| e.to_string())?;
        let bytes = program.approx_bytes() + output.binary.total_instructions() * 8;
        Ok(CacheEntry {
            output,
            program,
            bytes,
        })
    });
    let entry = match entry {
        Ok(entry) => entry,
        Err(e) => return err(format!("compile failed for `{}`: {e}", req.design)),
    };

    let mut job = SimJob::new(&entry.program, req.vcycles).cancel_token(cancel.clone());
    for (name, value) in &req.pokes {
        let Some(words) = manticore::rtl_reg_words(&entry.output, name, *value) else {
            return err(format!("no register `{name}` in `{}`", req.design));
        };
        for (core, mreg, word) in words {
            job = job.poke(core, mreg, word);
        }
    }
    for name in &req.reads {
        if !entry
            .output
            .optimized
            .registers()
            .iter()
            .any(|r| &r.name == name)
        {
            return err(format!("no register `{name}` in `{}`", req.design));
        }
    }
    if let Some(ms) = req.deadline_ms {
        job = job.deadline(Instant::now() + Duration::from_millis(ms));
    }

    enqueue(
        PendingJob {
            job,
            meta: JobMeta {
                id: req.id,
                reads: req.reads.clone(),
                output: Arc::clone(&entry.output),
                park: req.park,
                tx: tx.clone(),
            },
            cost: req.vcycles.max(1),
        },
        conn_id,
        shared,
    )
}

/// Admits a resume: take the parked machine and enqueue its next slice.
fn admit_resume(
    req: &ResumeReq,
    conn_id: u64,
    tx: &Sender<Value>,
    cancel: &CancelToken,
    shared: &Shared,
) -> Option<Reply> {
    let err = |message: String| {
        Some(Reply::Error {
            id: Some(req.id),
            message,
        })
    };
    let Some(parked) = shared.sessions.resume(&req.session) else {
        return err(format!(
            "no parked session `{}` (never parked, already resumed, or reaped)",
            req.session
        ));
    };
    let ParkedSession { machine, output } = parked;
    let mut job = SimJob::resume(machine, req.vcycles).cancel_token(cancel.clone());
    for (name, value) in &req.pokes {
        let Some(words) = manticore::rtl_reg_words(&output, name, *value) else {
            return err(format!("no register `{name}` in session `{}`", req.session));
        };
        for (core, mreg, word) in words {
            job = job.poke(core, mreg, word);
        }
    }
    enqueue(
        PendingJob {
            job,
            meta: JobMeta {
                id: req.id,
                reads: req.reads.clone(),
                output,
                park: req.park,
                tx: tx.clone(),
            },
            cost: req.vcycles.max(1),
        },
        conn_id,
        shared,
    )
}

/// Queues an admitted job, or bounces it off the high-water mark.
fn enqueue(pending: PendingJob, conn_id: u64, shared: &Shared) -> Option<Reply> {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    if sched.queued >= shared.cfg.queue_high_water {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        return Some(Reply::Reject {
            id: pending.meta.id,
            reason: "queue_full".to_string(),
            retry_after_ms: shared.cfg.retry_after_ms,
        });
    }
    let Some(conn) = sched.conns.get_mut(&conn_id) else {
        // The connection vanished between read and enqueue; nobody is
        // left to hear a reply.
        return None;
    };
    conn.queue.push_back(pending);
    sched.queued += 1;
    drop(sched);
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work.notify_all();
    None
}

/// The dispatcher: DRR batch assembly, then a streaming fleet run whose
/// sink writes each reply the moment its job finishes.
fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        let Some(batch) = next_batch(&shared) else {
            return;
        };
        let (jobs, metas): (Vec<SimJob>, Vec<JobMeta>) =
            batch.into_iter().map(|p| (p.job, p.meta)).unzip();
        let policy = BatchPolicy {
            cancel: Some(shared.shutdown.clone()),
            ..BatchPolicy::default()
        };
        shared
            .fleet
            .run_ganged_stream(jobs, shared.cfg.lanes, &policy, &|out: JobOutput| {
                let meta = &metas[out.index];
                let reply = finish_job(meta, out, &shared);
                // A send failure means the client is gone; its work was
                // already cancelled by the disconnect path.
                let _ = meta.tx.send(reply.to_value());
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            });
    }
}

/// Assembles the next batch with deficit round robin, blocking until
/// there is work. `None` on shutdown.
fn next_batch(shared: &Shared) -> Option<Vec<PendingJob>> {
    let mut sched = shared.sched.lock().expect("sched lock poisoned");
    loop {
        if shared.shutdown.is_cancelled() {
            return None;
        }
        if sched.queued == 0 {
            sched = shared.work.wait(sched).expect("sched lock poisoned");
            continue;
        }
        let mut batch = Vec::new();
        // Rounds continue until something dispatches: every round adds a
        // quantum to each backlogged connection, so even a job costing
        // many quanta eventually accrues the credit to run.
        while batch.len() < shared.cfg.batch_max && sched.queued > 0 {
            let mut ids: Vec<u64> = sched.conns.keys().copied().collect();
            ids.sort_unstable();
            if ids.is_empty() {
                break;
            }
            // Rotate who goes first so low conn ids get no edge.
            let start = sched.cursor % ids.len();
            ids.rotate_left(start);
            sched.cursor = sched.cursor.wrapping_add(1);
            for id in ids {
                let Some(conn) = sched.conns.get_mut(&id) else {
                    continue;
                };
                if conn.queue.is_empty() {
                    // An idle connection banks no credit.
                    conn.deficit = 0;
                    continue;
                }
                conn.deficit = conn.deficit.saturating_add(shared.cfg.drr_quantum);
                let mut popped = 0;
                while batch.len() < shared.cfg.batch_max {
                    let Some(front) = conn.queue.front() else {
                        conn.deficit = 0;
                        break;
                    };
                    // Clamp the charge to one quantum (the classic DRR
                    // requirement): a job dearer than the quantum costs
                    // a full round's credit, not an unbounded wait.
                    let cost = front.cost.clamp(1, shared.cfg.drr_quantum);
                    if cost > conn.deficit {
                        break;
                    }
                    conn.deficit -= cost;
                    let pending = conn.queue.pop_front().expect("front just observed");
                    popped += 1;
                    batch.push(pending);
                }
                sched.queued -= popped;
            }
        }
        if !batch.is_empty() {
            return Some(batch);
        }
    }
}

/// Renders one finished job into its reply: read back the requested
/// registers, fingerprint the state, and park it if asked.
fn finish_job(meta: &JobMeta, out: JobOutput, shared: &Shared) -> Reply {
    let outcome = outcome_label(out.outcome).to_string();
    let (vcycles_run, mut displays, error) = match &out.result {
        Ok(run) => (run.vcycles_run, run.displays.clone(), None),
        Err(e) => (0, Vec::new(), Some(e.to_string())),
    };
    let Some(mut machine) = out.machine else {
        // Worker panic: no state survives, only the structured failure.
        return Reply::Result(JobResult {
            id: meta.id,
            outcome,
            vcycles_run,
            regs: Vec::new(),
            fingerprint: "0x0".to_string(),
            displays,
            session: None,
            error,
        });
    };
    if out.result.is_err() {
        displays = machine.drain_pending_displays();
    }
    let regs = meta
        .reads
        .iter()
        .filter_map(|name| {
            manticore::rtl_reg_read(&meta.output, name, |core, mreg| {
                machine.read_reg(core, mreg)
            })
            .map(|bits| (name.clone(), bits.to_u64()))
        })
        .collect();
    let fingerprint = format!("{:#018x}", machine.state_fingerprint());
    let session = if meta.park {
        Some(shared.sessions.park(ParkedSession {
            machine,
            output: Arc::clone(&meta.output),
        }))
    } else {
        None
    };
    Reply::Result(JobResult {
        id: meta.id,
        outcome,
        vcycles_run,
        regs,
        fingerprint,
        displays,
        session,
        error,
    })
}

fn outcome_label(outcome: JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Complete => "complete",
        JobOutcome::BudgetExhausted => "budget",
        JobOutcome::Deadline => "deadline",
        JobOutcome::Cancelled => "cancelled",
        JobOutcome::Faulted => "faulted",
        JobOutcome::WorkerPanic => "panic",
    }
}

/// The stats payload: every counter an operator needs to see queue
/// pressure, cache health, and session churn at a glance.
fn stats_value(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let sessions = shared.sessions.stats();
    let queued = shared.sched.lock().expect("sched lock poisoned").queued;
    let c = &shared.counters;
    Value::obj(vec![
        (
            "jobs_submitted",
            Value::Int(c.submitted.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed",
            Value::Int(c.completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_rejected",
            Value::Int(c.rejected.load(Ordering::Relaxed)),
        ),
        ("queued", Value::Int(queued as u64)),
        (
            "conns_opened",
            Value::Int(c.conns_opened.load(Ordering::Relaxed)),
        ),
        (
            "conns_closed",
            Value::Int(c.conns_closed.load(Ordering::Relaxed)),
        ),
        (
            "cache",
            Value::obj(vec![
                ("hits", Value::Int(cache.hits)),
                ("misses", Value::Int(cache.misses)),
                ("evictions", Value::Int(cache.evictions)),
                ("entries", Value::Int(cache.entries as u64)),
                ("bytes", Value::Int(cache.bytes as u64)),
            ]),
        ),
        (
            "sessions",
            Value::obj(vec![
                ("live", Value::Int(sessions.live as u64)),
                ("parked", Value::Int(sessions.parked)),
                ("resumed", Value::Int(sessions.resumed)),
                ("reaped", Value::Int(sessions.reaped)),
            ]),
        ),
    ])
}

fn reaper_loop(shared: Arc<Shared>) {
    while !shared.shutdown.is_cancelled() {
        shared.sessions.reap();
        // Sleep in short slices so shutdown is prompt even with a long
        // reaper period.
        let mut remaining = shared.cfg.reaper_period;
        while !remaining.is_zero() && !shared.shutdown.is_cancelled() {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}
