//! Crash-safe spill of parked sessions.
//!
//! A parked session is a lease on server memory; a durable session is
//! that lease made crash-safe. When the server runs with a session
//! directory, every park also writes one file — the session's design
//! provenance plus its machine checkpoint in the
//! [`manticore::machine::save_checkpoint`] format — and every resume,
//! drop, or reap removes it. A daemon restarted over the same directory
//! re-adopts every file it can read: recompile the recorded source (the
//! compiler is bit-deterministic), rebind the checkpoint to the fresh
//! compilation, and re-park under the *original* session id, so clients
//! holding ids from before the crash keep working.
//!
//! ## File format
//!
//! One file per session, `<id>.mses`, written tmp-then-rename so a crash
//! mid-write never leaves a half file under a live name:
//!
//! ```text
//! magic    b"MSES"
//! version  u32 LE (currently 1)
//! meta     u32 LE length + that many bytes of JSON
//! blob     u64 LE length + machine checkpoint bytes
//! check    u64 LE FNV-1a over everything above
//! ```
//!
//! The meta JSON carries the session id and the design source — either
//! `{"kind":"catalog","name":...,"grid":n}` or
//! `{"kind":"wire","grid":n,"netlist":{...}}` with the netlist in its
//! [`crate::wire`] encoding. The checkpoint blob carries its own
//! checksum; the envelope checksum additionally covers the metadata, so
//! corruption anywhere in the file is detected before any of it is
//! trusted. Corrupt files are *skipped and counted*, never fatal:
//! recovering nine of ten sessions beats refusing to start.

use std::fs;
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};

use manticore_util::FnvHasher;

use crate::json::Value;
use crate::session::SessionSource;

const MAGIC: [u8; 4] = *b"MSES";
const VERSION: u32 = 1;

/// One recoverable session as read from (or written to) disk.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// The original session id (`s-<n>`).
    pub id: String,
    /// The design provenance, for recompilation.
    pub source: SessionSource,
    /// The machine checkpoint, in the [`manticore::machine`] persist
    /// format; rebind it with [`manticore::machine::load_checkpoint`].
    pub checkpoint: Vec<u8>,
}

/// The on-disk session store: one directory, one file per parked
/// session.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
}

impl DurableStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: &Path) -> io::Result<DurableStore> {
        fs::create_dir_all(dir)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, id: &str) -> PathBuf {
        // Session ids are server-generated (`s-<n>`), but belt and
        // braces: refuse path separators so a hostile id recovered from
        // a tampered file can never escape the directory.
        let safe: String = id
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.mses"))
    }

    /// Persists `env` under its session id, atomically: the bytes land
    /// in a temp file first and are renamed into place, so a crash
    /// mid-write leaves either the old file or the new one, never a
    /// torn hybrid.
    ///
    /// # Errors
    ///
    /// On any filesystem failure; the caller decides whether that
    /// degrades the park to memory-only or fails the request.
    pub fn save(&self, env: &Envelope) -> io::Result<()> {
        let bytes = encode(env);
        let path = self.path_for(&env.id);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)
    }

    /// Removes the file for `id`; missing files are not an error (the
    /// session may have been memory-only or already consumed).
    pub fn remove(&self, id: &str) {
        let _ = fs::remove_file(self.path_for(id));
    }

    /// Reads every decodable session in the directory. Returns the
    /// envelopes plus how many files were present but corrupt (bad
    /// magic, failed checksum, malformed metadata) and therefore
    /// skipped.
    pub fn load_all(&self) -> (Vec<Envelope>, usize) {
        let mut envelopes = Vec::new();
        let mut corrupt = 0;
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (envelopes, corrupt);
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "mses"))
            .collect();
        paths.sort();
        for path in paths {
            match fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|b| decode(&b))
            {
                Ok(env) => envelopes.push(env),
                Err(_) => corrupt += 1,
            }
        }
        (envelopes, corrupt)
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(bytes);
    h.finish()
}

fn encode(env: &Envelope) -> Vec<u8> {
    let source = match &env.source {
        SessionSource::Catalog { name, grid } => Value::obj(vec![
            ("kind", Value::Str("catalog".into())),
            ("name", Value::Str(name.clone())),
            ("grid", Value::Int(*grid as u64)),
        ]),
        SessionSource::Wire { netlist, grid } => Value::obj(vec![
            ("kind", Value::Str("wire".into())),
            ("grid", Value::Int(*grid as u64)),
            ("netlist", netlist.clone()),
        ]),
    };
    let meta = Value::obj(vec![("id", Value::Str(env.id.clone())), ("source", source)]).render();
    let mut out = Vec::with_capacity(4 + 4 + 4 + meta.len() + 8 + env.checkpoint.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    out.extend_from_slice(meta.as_bytes());
    out.extend_from_slice(&(env.checkpoint.len() as u64).to_le_bytes());
    out.extend_from_slice(&env.checkpoint);
    let check = fnv64(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

fn decode(bytes: &[u8]) -> Result<Envelope, String> {
    if bytes.len() < 4 + 4 + 4 + 8 + 8 {
        return Err("truncated envelope".into());
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv64(body) != stored {
        return Err("envelope checksum mismatch".into());
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
        let end = pos.checked_add(n).filter(|&e| e <= body.len());
        let end = end.ok_or_else(|| "truncated envelope".to_string())?;
        let s = &body[*pos..end];
        *pos = end;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err("bad magic".into());
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(format!("unsupported envelope version {version}"));
    }
    let meta_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    let meta_bytes = take(&mut pos, meta_len)?;
    let meta_text = std::str::from_utf8(meta_bytes).map_err(|e| e.to_string())?;
    let meta = Value::parse(meta_text)?;
    let blob_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
    let blob_len = usize::try_from(blob_len).map_err(|_| "blob length overflow".to_string())?;
    let checkpoint = take(&mut pos, blob_len)?.to_vec();
    if pos != body.len() {
        return Err("trailing bytes in envelope".into());
    }

    let id = meta
        .get("id")
        .and_then(Value::as_str)
        .ok_or("missing `id` in metadata")?
        .to_string();
    let sv = meta.get("source").ok_or("missing `source` in metadata")?;
    let grid = sv
        .get("grid")
        .and_then(Value::as_u64)
        .ok_or("missing `grid` in source")? as usize;
    let source = match sv.get("kind").and_then(Value::as_str) {
        Some("catalog") => SessionSource::Catalog {
            name: sv
                .get("name")
                .and_then(Value::as_str)
                .ok_or("missing `name` in catalog source")?
                .to_string(),
            grid,
        },
        Some("wire") => SessionSource::Wire {
            netlist: sv
                .get("netlist")
                .cloned()
                .ok_or("missing `netlist` in wire source")?,
            grid,
        },
        other => return Err(format!("unknown source kind {other:?}")),
    };
    Ok(Envelope {
        id,
        source,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("manticore-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Envelope {
        Envelope {
            id: "s-42".into(),
            source: SessionSource::Wire {
                netlist: Value::obj(vec![("version", Value::Int(1))]),
                grid: 3,
            },
            checkpoint: (0..=255u8).collect(),
        }
    }

    #[test]
    fn save_load_round_trips_and_remove_forgets() {
        let dir = temp_dir("roundtrip");
        let store = DurableStore::open(&dir).unwrap();
        store.save(&sample()).unwrap();
        store
            .save(&Envelope {
                id: "s-7".into(),
                source: SessionSource::Catalog {
                    name: "counter".into(),
                    grid: 2,
                },
                checkpoint: vec![1, 2, 3],
            })
            .unwrap();

        let (envs, corrupt) = store.load_all();
        assert_eq!(corrupt, 0);
        assert_eq!(envs.len(), 2);
        let e42 = envs.iter().find(|e| e.id == "s-42").unwrap();
        assert_eq!(e42.checkpoint, sample().checkpoint);
        assert!(matches!(&e42.source, SessionSource::Wire { grid: 3, .. }));
        let e7 = envs.iter().find(|e| e.id == "s-7").unwrap();
        assert!(
            matches!(&e7.source, SessionSource::Catalog { name, grid: 2 } if name == "counter")
        );

        store.remove("s-42");
        store.remove("s-42"); // idempotent
        let (envs, corrupt) = store.load_all();
        assert_eq!((envs.len(), corrupt), (1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_skipped_and_counted_not_fatal() {
        let dir = temp_dir("corrupt");
        let store = DurableStore::open(&dir).unwrap();
        store.save(&sample()).unwrap();

        // A flipped byte anywhere fails the envelope checksum.
        let path = dir.join("s-42.mses");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(dir.join("s-99.mses"), &bytes).unwrap();
        // Garbage and truncation are also just "corrupt".
        fs::write(dir.join("s-98.mses"), b"not an envelope").unwrap();
        fs::write(dir.join("s-97.mses"), []).unwrap();
        // Non-.mses files are ignored entirely.
        fs::write(dir.join("README"), b"ignore me").unwrap();

        let (envs, corrupt) = store.load_all();
        assert_eq!(envs.len(), 1, "the intact session still recovers");
        assert_eq!(envs[0].id, "s-42");
        assert_eq!(corrupt, 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
