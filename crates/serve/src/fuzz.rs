//! Deterministic protocol fuzzer for the hardening harness.
//!
//! Drives a live server with a seeded stream of hostile traffic —
//! hostile length prefixes, truncated frames, raw garbage, malformed
//! JSON, type-confused requests, pathological nesting, over-limit
//! netlists — interleaved with well-formed requests, and checks the
//! server's three survival properties after every frame:
//!
//! 1. **No hangs**: every read runs under a timeout; a server that stops
//!    answering well-formed probes fails the run.
//! 2. **No leaks**: hostile frames never park sessions, so the final
//!    stats probe must report zero live sessions.
//! 3. **No crashes**: the caller owns the server (in-process or child)
//!    and verifies it outlived the run; the fuzzer itself reconnects
//!    whenever the server (correctly) drops a poisoned connection.
//!
//! Determinism is load-bearing: the mutation stream is a pure function
//! of [`FuzzConfig::seed`], so a failing seed from CI reproduces locally
//! with the same bytes in the same order.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use manticore_util::SmallRng;

use crate::json::Value;
use crate::proto::{read_frame, write_frame, Reply, Request, SubmitReq, MAX_FRAME};

/// Fuzzer parameters. Everything the run does follows from these.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// RNG seed; equal seeds produce byte-identical traffic.
    pub seed: u64,
    /// Hostile/well-formed frames to send (probes are extra).
    pub frames: usize,
    /// Per-read timeout; a well-formed probe that gets no reply within
    /// this window fails the run as a hang.
    pub probe_timeout: Duration,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0xF055,
            frames: 1_000,
            probe_timeout: Duration::from_secs(10),
        }
    }
}

/// What a fuzz run did and observed.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Frames sent, by mutation class name.
    pub sent: Vec<(&'static str, usize)>,
    /// Well-formed replies received (from probes and valid frames).
    pub replies: u64,
    /// Connections the server dropped (expected for poisoned frames).
    pub reconnects: u64,
    /// Live sessions the final stats probe reported (must be 0).
    pub live_sessions: u64,
}

const CLASSES: [&str; 8] = [
    "valid",
    "oversize_prefix",
    "truncated_frame",
    "garbage_bytes",
    "malformed_json",
    "type_confusion",
    "deep_nesting",
    "hostile_netlist",
];

/// How often (in frames) to interleave a well-formed stats probe.
const PROBE_PERIOD: usize = 64;

struct Conn {
    stream: TcpStream,
}

impl Conn {
    fn connect(addr: SocketAddr, timeout: Duration) -> Result<Conn, String> {
        let stream =
            TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("fuzz connect: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("fuzz set timeout: {e}"))?;
        Ok(Conn { stream })
    }

    fn send_raw(&mut self, bytes: &[u8]) -> bool {
        self.stream.write_all(bytes).is_ok()
    }

    fn call(&mut self, req: &Request) -> Option<Reply> {
        write_frame(&mut self.stream, &req.to_value()).ok()?;
        let frame = read_frame(&mut self.stream).ok()??;
        Reply::from_value(&frame).ok()
    }
}

/// Runs the fuzzer against a live server at `addr`.
///
/// # Errors
///
/// When the server hangs (a well-formed probe times out), becomes
/// unreachable (reconnect fails), or leaks sessions. Any `Err` is a
/// hardening bug on the server side — the fuzzer sending garbage is the
/// expected case, not the error case.
pub fn run_fuzz(addr: SocketAddr, config: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut report = FuzzReport {
        sent: CLASSES.iter().map(|&c| (c, 0)).collect(),
        ..FuzzReport::default()
    };
    let mut conn = Conn::connect(addr, config.probe_timeout)?;

    for frame_no in 0..config.frames {
        let class = rng.gen_range(0..CLASSES.len());
        report.sent[class].1 += 1;
        let survived = match class {
            0 => match conn.call(&valid_request(&mut rng)) {
                Some(_) => {
                    report.replies += 1;
                    true
                }
                None => false,
            },
            1 => {
                // A length prefix past MAX_FRAME, optionally astronomically
                // large; a hardened server answers with a typed close, not
                // a pre-allocation.
                let len = if rng.gen_bool() {
                    u32::MAX
                } else {
                    (MAX_FRAME as u32).saturating_add(1 + rng.next_u64() as u32 % 1024)
                };
                conn.send_raw(&len.to_be_bytes());
                false
            }
            2 => {
                // Claim more payload than we send, then slam the write
                // side shut: the server must see a typed truncation.
                let claimed = 16 + rng.gen_range(0..4096);
                let sent = rng.gen_range(0..claimed);
                let mut bytes = (claimed as u32).to_be_bytes().to_vec();
                bytes.extend((0..sent).map(|_| rng.next_u64() as u8));
                conn.send_raw(&bytes);
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                false
            }
            3 => {
                // Correctly framed, but the payload is raw bytes (often
                // not even UTF-8).
                let len = 1 + rng.gen_range(0..512);
                let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                let mut bytes = (len as u32).to_be_bytes().to_vec();
                bytes.extend(payload);
                conn.send_raw(&bytes);
                !frame_is_fatal(&mut conn)
            }
            4 => {
                send_text(&mut conn, &malformed_json(&mut rng));
                !frame_is_fatal(&mut conn)
            }
            5 => {
                send_text(&mut conn, &type_confused(&mut rng).render());
                !frame_is_fatal(&mut conn)
            }
            6 => {
                // Nesting far past the parser's depth cap, well under the
                // frame cap: must be a parse error, not a stack overflow.
                let depth = 256 + rng.gen_range(0..4096);
                let mut text = String::with_capacity(2 * depth + 16);
                text.push_str("{\"op\":");
                for _ in 0..depth {
                    text.push('[');
                }
                for _ in 0..depth {
                    text.push(']');
                }
                text.push('}');
                send_text(&mut conn, &text);
                !frame_is_fatal(&mut conn)
            }
            _ => {
                send_text(&mut conn, &hostile_netlist(&mut rng).render());
                !frame_is_fatal(&mut conn)
            }
        };
        if !survived {
            report.reconnects += 1;
            conn = Conn::connect(addr, config.probe_timeout)?;
        }
        if (frame_no + 1) % PROBE_PERIOD == 0 {
            probe(&mut conn, &mut report)?;
        }
    }

    // Final probe: the server must still answer, and must hold no
    // sessions — hostile traffic never parks.
    let stats = probe(&mut conn, &mut report)?;
    report.live_sessions = stats
        .get("sessions")
        .and_then(|s| s.get("live"))
        .and_then(Value::as_u64)
        .ok_or("stats reply missing sessions.live")?;
    if report.live_sessions != 0 {
        return Err(format!(
            "fuzz run leaked {} parked session(s)",
            report.live_sessions
        ));
    }
    Ok(report)
}

/// A well-formed stats round-trip; timing out here means the server
/// hung, which is exactly what the harness exists to catch.
fn probe(conn: &mut Conn, report: &mut FuzzReport) -> Result<Value, String> {
    match conn.call(&Request::Stats) {
        Some(Reply::Stats(v)) => {
            report.replies += 1;
            Ok(v)
        }
        other => Err(format!(
            "server failed a well-formed stats probe (got {other:?}) — hang or crash"
        )),
    }
}

fn send_text(conn: &mut Conn, text: &str) {
    let mut bytes = (text.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(text.as_bytes());
    conn.send_raw(&bytes);
}

/// After a framed-but-rotten payload the server replies with an error
/// frame and keeps the connection; `true` here means the connection
/// died instead (also acceptable — the caller reconnects).
fn frame_is_fatal(conn: &mut Conn) -> bool {
    !matches!(read_frame(&mut conn.stream), Ok(Some(_)))
}

fn valid_request(rng: &mut SmallRng) -> Request {
    match rng.gen_range(0..4) {
        0 => Request::Stats,
        1 => Request::DropSession {
            session: format!("s-{}", rng.next_u64() % 1000),
        },
        2 => Request::Submit(SubmitReq {
            id: rng.next_u64() % 1_000_000,
            design: "no-such-design".into(),
            grid: None,
            vcycles: rng.next_u64() % 16,
            pokes: vec![],
            reads: vec![],
            deadline_ms: None,
            park: false,
        }),
        _ => Request::Resume(crate::proto::ResumeReq {
            id: rng.next_u64() % 1_000_000,
            session: format!("s-{}", rng.next_u64() % 1000),
            vcycles: 1,
            pokes: vec![],
            reads: vec![],
            park: false,
        }),
    }
}

fn malformed_json(rng: &mut SmallRng) -> String {
    const CORPUS: [&str; 8] = [
        "{",
        "{\"op\":",
        "{\"op\" \"stats\"}",
        "[1,2,",
        "{\"op\":\"stats\"}trailing",
        "\"unterminated",
        "{\"a\":1e}",
        "nul",
    ];
    CORPUS[rng.gen_range(0..CORPUS.len())].to_string()
}

/// A structurally valid request with one field's type swapped — the
/// class of bug `as_*` accessors miss when code `unwrap`s shapes.
fn type_confused(rng: &mut SmallRng) -> Value {
    match rng.gen_range(0..6) {
        0 => Value::obj(vec![("op", Value::Int(7))]),
        1 => Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("id", Value::Str("not-a-number".into())),
            ("design", Value::Str("counter".into())),
            ("vcycles", Value::Int(1)),
        ]),
        2 => Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("id", Value::Int(1)),
            ("design", Value::Arr(vec![Value::Int(1)])),
            ("vcycles", Value::Int(1)),
        ]),
        3 => Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("id", Value::Int(1)),
            ("design", Value::Str("counter".into())),
            ("vcycles", Value::Int(1)),
            ("pokes", Value::Int(9)),
        ]),
        4 => Value::obj(vec![
            ("op", Value::Str("submit_netlist".into())),
            ("id", Value::Int(1)),
            ("netlist", Value::Str("not an object".into())),
            ("vcycles", Value::Int(1)),
        ]),
        _ => Value::Arr(vec![Value::Str("op".into()), Value::Str("stats".into())]),
    }
}

/// A well-formed `submit_netlist` whose netlist violates a resource
/// limit (or the wire grammar): must come back as a typed reject or
/// error, never a compile attempt.
fn hostile_netlist(rng: &mut SmallRng) -> Value {
    let netlist = match rng.gen_range(0..4) {
        0 => {
            // Claims a colossal memory by depth alone.
            Value::obj(vec![
                ("version", Value::Int(1)),
                ("name", Value::Str("huge".into())),
                ("nets", Value::Arr(vec![])),
                ("registers", Value::Arr(vec![])),
                (
                    "memories",
                    Value::Arr(vec![Value::obj(vec![
                        ("name", Value::Str("m".into())),
                        ("width", Value::Int(16)),
                        ("depth", Value::Int(u64::MAX)),
                        ("init", Value::Arr(vec![])),
                        ("writes", Value::Arr(vec![])),
                    ])]),
                ),
                ("outputs", Value::Arr(vec![])),
            ])
        }
        1 => {
            // A combinational loop: a = not b, b = not a.
            let net = |arg: u64| {
                Value::obj(vec![
                    ("op", Value::Str("not".into())),
                    ("width", Value::Int(1)),
                    ("args", Value::Arr(vec![Value::Int(arg)])),
                ])
            };
            Value::obj(vec![
                ("version", Value::Int(1)),
                ("name", Value::Str("loop".into())),
                ("nets", Value::Arr(vec![net(1), net(0)])),
                ("registers", Value::Arr(vec![])),
                ("memories", Value::Arr(vec![])),
                ("outputs", Value::Arr(vec![])),
            ])
        }
        2 => Value::obj(vec![("version", Value::Int(99))]),
        _ => Value::Str("netlist is a string".into()),
    };
    Value::obj(vec![
        ("op", Value::Str("submit_netlist".into())),
        ("id", Value::Int(rng.next_u64() % 1_000_000)),
        ("netlist", netlist),
        ("vcycles", Value::Int(1)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mutation_stream_is_deterministic() {
        let a: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..32).map(|_| type_confused(&mut rng).render()).collect()
        };
        let b: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..32).map(|_| type_confused(&mut rng).render()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut rng = SmallRng::seed_from_u64(43);
            (0..32).map(|_| type_confused(&mut rng).render()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
    }
}
