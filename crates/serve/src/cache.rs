//! The compiled-program cache: compile each design once, serve every
//! later job from the shared artifact.
//!
//! Compilation is the expensive step of the serving path (the static-BSP
//! pipeline runs placement, routing, and scheduling), while a cache hit
//! is two `Arc` clones. The cache is keyed by a hash of the *netlist and
//! machine configuration* (see [`crate::catalog::netlist_hash`]), so two
//! clients asking for the same design at the same grid share one
//! compilation even across connections.
//!
//! Three policies keep it bounded and calm under stampedes:
//!
//! - **Single-flight**: the first request for a key compiles; concurrent
//!   requests for the same key block on a condvar and are serviced by
//!   that one compilation. They count as *hits* — a miss is a compilation
//!   actually started, which is what capacity planning needs.
//! - **Bounded compile pool**: at most `compile_slots` compilations run
//!   at once; further misses queue on the same condvar instead of
//!   fork-bombing the CPU with compiler threads.
//! - **LRU-by-bytes eviction**: entries are charged their approximate
//!   footprint ([`manticore::machine::CompiledProgram::approx_bytes`]
//!   plus the compiler output's binary), and the least-recently-used
//!   entries are dropped when the total passes the budget. Eviction only
//!   unlinks the entry — jobs already holding the `Arc` keep running.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use manticore::compiler::CompileOutput;
use manticore::machine::CompiledProgram;

/// One cached compilation: everything a job needs to boot and everything
/// a reply needs to resolve register names.
#[derive(Debug)]
pub struct CacheEntry {
    /// Compiler output — binary, report, and the placement metadata that
    /// resolves RTL register names to machine registers.
    pub output: Arc<CompileOutput>,
    /// The frozen machine program (replay tape + micro-op streams);
    /// booting a job from it is allocation-only.
    pub program: Arc<CompiledProgram>,
    /// The approximate footprint charged against the cache budget.
    pub bytes: usize,
}

/// Counter snapshot for the stats endpoint and the bench gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a present or in-flight compilation.
    pub hits: u64,
    /// Compilations actually started.
    pub misses: u64,
    /// Entries dropped by the byte-budget LRU.
    pub evictions: u64,
    /// Ready entries currently cached.
    pub entries: usize,
    /// Bytes currently charged.
    pub bytes: usize,
}

#[derive(Debug)]
enum Slot {
    /// A compilation is in flight; waiters sleep on the condvar.
    Building,
    /// Ready to serve. `last_used` is a logical tick for LRU ordering.
    Ready {
        entry: Arc<CacheEntry>,
        last_used: u64,
    },
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
    compiling: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The single-flight, byte-budgeted program cache. One per server;
/// shared by every connection.
#[derive(Debug)]
pub struct ProgramCache {
    inner: Mutex<Inner>,
    cond: Condvar,
    budget_bytes: usize,
    compile_slots: usize,
}

impl ProgramCache {
    /// A cache that holds at most `budget_bytes` of compiled artifacts
    /// and runs at most `compile_slots` compilations concurrently.
    pub fn new(budget_bytes: usize, compile_slots: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            budget_bytes,
            compile_slots: compile_slots.max(1),
        }
    }

    /// Returns the entry for `key`, compiling it with `build` on a miss.
    ///
    /// Exactly one caller per key runs `build` at a time; concurrent
    /// callers block and share the result. A failed `build` propagates to
    /// the caller that ran it, wakes the waiters, and leaves the key
    /// absent — the next request retries.
    ///
    /// # Errors
    ///
    /// Whatever `build` returned.
    pub fn get_or_compile(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<CacheEntry, String>,
    ) -> Result<Arc<CacheEntry>, String> {
        enum Action {
            Hit(Arc<CacheEntry>),
            Wait,
            Build,
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        loop {
            let action = match inner.slots.get(&key) {
                Some(Slot::Ready { entry, .. }) => Action::Hit(Arc::clone(entry)),
                // Someone else is compiling this key; their result will
                // serve us. That makes this request a hit (below).
                Some(Slot::Building) => Action::Wait,
                None if inner.compiling < self.compile_slots => Action::Build,
                // The compile pool is full; queue for a slot.
                None => Action::Wait,
            };
            match action {
                Action::Hit(entry) => {
                    inner.tick += 1;
                    let tick = inner.tick;
                    if let Some(Slot::Ready { last_used, .. }) = inner.slots.get_mut(&key) {
                        *last_used = tick;
                    }
                    inner.hits += 1;
                    return Ok(entry);
                }
                Action::Wait => {
                    inner = self.cond.wait(inner).expect("cache lock poisoned");
                }
                Action::Build => {
                    inner.slots.insert(key, Slot::Building);
                    inner.compiling += 1;
                    inner.misses += 1;
                    drop(inner);
                    let built = build();
                    let mut inner = self.inner.lock().expect("cache lock poisoned");
                    inner.compiling -= 1;
                    let result = match built {
                        Ok(entry) => {
                            let entry = Arc::new(entry);
                            inner.tick += 1;
                            inner.bytes += entry.bytes;
                            let tick = inner.tick;
                            inner.slots.insert(
                                key,
                                Slot::Ready {
                                    entry: Arc::clone(&entry),
                                    last_used: tick,
                                },
                            );
                            self.evict_over_budget(&mut inner, key);
                            Ok(entry)
                        }
                        Err(e) => {
                            inner.slots.remove(&key);
                            Err(e)
                        }
                    };
                    self.cond.notify_all();
                    return result;
                }
            }
        }
    }

    /// Drops least-recently-used Ready entries until the budget holds.
    /// The just-inserted `keep` key is exempt — an entry bigger than the
    /// whole budget still gets to serve the jobs that asked for it.
    fn evict_over_budget(&self, inner: &mut Inner, keep: u64) {
        while inner.bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } if *k != keep => Some((*last_used, *k)),
                    _ => None,
                })
                .min()
                .map(|(_, k)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Ready { entry, .. }) = inner.slots.remove(&victim) {
                inner.bytes -= entry.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_entry() -> CacheEntry {
        use manticore::prelude::*;
        let mut b = NetlistBuilder::new("c");
        let r = b.reg("count", 16, 0);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        let netlist = b.finish_build().unwrap();
        let config = MachineConfig::with_grid(2, 2);
        let output = Arc::new(
            manticore::compiler::compile(
                &netlist,
                &CompileOptions {
                    config: config.clone(),
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let program = CompiledProgram::compile_shared(config, &output.binary).unwrap();
        let bytes = program.approx_bytes();
        CacheEntry {
            output,
            program,
            bytes,
        }
    }

    #[test]
    fn single_flight_compiles_once_under_a_stampede() {
        let cache = ProgramCache::new(usize::MAX, 1);
        let compiles = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let entry = cache
                        .get_or_compile(42, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window so the stampede
                            // actually overlaps the build.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(tiny_entry())
                        })
                        .unwrap();
                    assert!(entry.bytes > 0);
                });
            }
        });
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "one compile, 7 hits");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_recency() {
        let probe = tiny_entry();
        // Budget for exactly two entries.
        let cache = ProgramCache::new(probe.bytes * 2, 1);
        for key in [1u64, 2, 3] {
            cache.get_or_compile(key, || Ok(tiny_entry())).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "third insert evicts the oldest");
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= probe.bytes * 2);
        // Key 1 was the LRU victim: re-requesting it is a miss; 2 and 3
        // are still hits.
        cache
            .get_or_compile(2, || panic!("2 must be cached"))
            .unwrap();
        cache
            .get_or_compile(3, || panic!("3 must be cached"))
            .unwrap();
        cache.get_or_compile(1, || Ok(tiny_entry())).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn a_failed_build_propagates_and_leaves_the_key_retryable() {
        let cache = ProgramCache::new(usize::MAX, 2);
        let err = cache
            .get_or_compile(7, || Err("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        // The failure did not wedge the slot: a retry compiles fresh.
        cache.get_or_compile(7, || Ok(tiny_entry())).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
    }
}
