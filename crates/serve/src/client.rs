//! A blocking client for the serve protocol — the reference
//! implementation of the wire format, used by the integration suite, the
//! soak harness, and the worked examples in SERVING.md.
//!
//! The protocol is asynchronous: submissions are pipelined and results
//! stream back in *completion* order, correlated by the `id` each
//! request carries. [`Client::recv`] returns the next reply, whatever
//! job it belongs to; [`Client::call`] is the synchronous convenience
//! for one-at-a-time use.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use manticore_util::SmallRng;

use crate::json::Value;
use crate::proto::{read_frame, write_frame, Reply, Request};

/// Backoff policy for [`Client::call_with_retry`]: capped exponential
/// backoff seeded for deterministic jitter.
///
/// The server's `retry_after_ms` hint is the *floor* for each wait; the
/// exponential term (doubling from `base_ms`, capped at `cap_ms`) takes
/// over when the server keeps saying no, and the jitter term spreads
/// synchronized clients so they do not re-arrive as the same thundering
/// herd that got them rejected in the first place.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Transient rejects tolerated before giving up.
    pub max_retries: u32,
    /// First backoff, before the server hint and jitter.
    pub base_ms: u64,
    /// Ceiling on any single wait.
    pub cap_ms: u64,
    /// Jitter seed; equal seeds produce equal wait sequences.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base_ms: 10,
            cap_ms: 2_000,
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based) of a reject hinting
    /// `retry_after_ms`: `max(hint, base << attempt)`, capped, plus up
    /// to 50% seeded jitter, capped again.
    fn backoff_ms(&self, attempt: u32, retry_after_ms: u64, rng: &mut SmallRng) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        let wait = exp.max(retry_after_ms);
        let jitter = if wait == 0 {
            0
        } else {
            rng.next_u64() % (wait / 2 + 1)
        };
        wait.saturating_add(jitter)
            .min(self.cap_ms.max(retry_after_ms))
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request without waiting for anything — the pipelining
    /// primitive.
    ///
    /// # Errors
    ///
    /// I/O failure (the server hung up, typically).
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &request.to_value())
    }

    /// Receives the next reply, in the server's completion order.
    /// `Ok(None)` when the server closed the connection.
    ///
    /// # Errors
    ///
    /// I/O failure or a frame that does not parse as a reply.
    pub fn recv(&mut self) -> std::io::Result<Option<Reply>> {
        let Some(frame) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        Reply::from_value(&frame)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `request` and blocks for the next reply — correct only when
    /// no other request of this client is still in flight.
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing before replying.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Reply> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// Sends an arbitrary frame payload — well-formed or not — and
    /// blocks for the reply. The protocol-hardening harness's hook for
    /// sending frames [`Request`] cannot express.
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing before replying (which is a
    /// legitimate answer to a hostile frame).
    pub fn call_value(&mut self, value: &Value) -> std::io::Result<Reply> {
        write_frame(&mut self.writer, value)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// [`Client::call`], but transient rejects are retried under
    /// `policy`.
    ///
    /// A [`Reply::Reject`] with non-zero `retry_after_ms` is server
    /// backpressure: wait (honoring the hint, growing exponentially,
    /// jittered) and resend. A reject with `retry_after_ms == 0` is
    /// *permanent* — the request violated a limit or quota and will
    /// never be admitted as-is — so it is returned immediately, as is
    /// any other reply. Exhausting `max_retries` returns the last
    /// reject.
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing before replying.
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> std::io::Result<Reply> {
        let mut rng = SmallRng::seed_from_u64(policy.seed);
        let mut attempt = 0u32;
        loop {
            let reply = self.call(request)?;
            let Reply::Reject { retry_after_ms, .. } = &reply else {
                return Ok(reply);
            };
            if *retry_after_ms == 0 || attempt >= policy.max_retries {
                return Ok(reply);
            }
            let wait = policy.backoff_ms(attempt, *retry_after_ms, &mut rng);
            std::thread::sleep(Duration::from_millis(wait));
            attempt += 1;
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// I/O failure, or a non-stats reply arriving first (don't mix with
    /// in-flight jobs).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        match self.call(&Request::Stats)? {
            Reply::Stats(v) => Ok(v),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-connection server that answers each incoming frame with the
    /// next scripted reply, whatever the request was.
    fn scripted_server(replies: Vec<Reply>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for reply in replies {
                if !matches!(read_frame(&mut reader), Ok(Some(_))) {
                    return;
                }
                if write_frame(&mut stream, &reply.to_value()).is_err() {
                    return;
                }
            }
        });
        addr
    }

    fn transient(ms: u64) -> Reply {
        Reply::Reject {
            id: 1,
            reason: "queue_full".into(),
            retry_after_ms: ms,
            limit: None,
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_ms: 1,
            cap_ms: 4,
            seed: 7,
        }
    }

    #[test]
    fn transient_rejects_are_retried_until_the_server_relents() {
        let addr = scripted_server(vec![
            transient(1),
            transient(1),
            Reply::Stats(Value::obj(vec![])),
        ]);
        let mut client = Client::connect(addr).unwrap();
        let reply = client
            .call_with_retry(&Request::Stats, &fast_policy())
            .unwrap();
        assert!(matches!(reply, Reply::Stats(_)));
    }

    #[test]
    fn permanent_rejects_are_returned_immediately_not_retried() {
        // Only ONE scripted reply: a second call would hang, so getting
        // the reject back proves there was no retry.
        let addr = scripted_server(vec![Reply::Reject {
            id: 1,
            reason: "netlist_limit".into(),
            retry_after_ms: 0,
            limit: None,
        }]);
        let mut client = Client::connect(addr).unwrap();
        let reply = client
            .call_with_retry(&Request::Stats, &fast_policy())
            .unwrap();
        assert!(
            matches!(reply, Reply::Reject { retry_after_ms: 0, ref reason, .. } if reason == "netlist_limit")
        );
    }

    #[test]
    fn exhausted_retries_return_the_last_reject() {
        let mut policy = fast_policy();
        policy.max_retries = 2;
        // 1 initial call + 2 retries = 3 scripted rejects.
        let addr = scripted_server(vec![transient(1), transient(1), transient(1)]);
        let mut client = Client::connect(addr).unwrap();
        let reply = client.call_with_retry(&Request::Stats, &policy).unwrap();
        assert!(matches!(reply, Reply::Reject { .. }));
    }

    #[test]
    fn backoff_is_deterministic_floored_by_the_hint_and_capped() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_ms: 10,
            cap_ms: 100,
            seed: 42,
        };
        let seq = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..6)
                .map(|a| policy.backoff_ms(a, 25, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42), "equal seeds, equal waits");
        for (attempt, &wait) in seq(42).iter().enumerate() {
            assert!(wait >= 25, "attempt {attempt}: hint is the floor");
            assert!(wait <= 100, "attempt {attempt}: cap holds");
        }
        // A hint above the cap still wins: the server knows best.
        let mut rng = SmallRng::seed_from_u64(42);
        assert!(policy.backoff_ms(0, 5_000, &mut rng) >= 5_000);
    }
}
