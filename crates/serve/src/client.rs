//! A blocking client for the serve protocol — the reference
//! implementation of the wire format, used by the integration suite, the
//! soak harness, and the worked examples in SERVING.md.
//!
//! The protocol is asynchronous: submissions are pipelined and results
//! stream back in *completion* order, correlated by the `id` each
//! request carries. [`Client::recv`] returns the next reply, whatever
//! job it belongs to; [`Client::call`] is the synchronous convenience
//! for one-at-a-time use.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::Value;
use crate::proto::{read_frame, write_frame, Reply, Request};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request without waiting for anything — the pipelining
    /// primitive.
    ///
    /// # Errors
    ///
    /// I/O failure (the server hung up, typically).
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &request.to_value())
    }

    /// Receives the next reply, in the server's completion order.
    /// `Ok(None)` when the server closed the connection.
    ///
    /// # Errors
    ///
    /// I/O failure or a frame that does not parse as a reply.
    pub fn recv(&mut self) -> std::io::Result<Option<Reply>> {
        let Some(frame) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        Reply::from_value(&frame)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `request` and blocks for the next reply — correct only when
    /// no other request of this client is still in flight.
    ///
    /// # Errors
    ///
    /// I/O failure, or the server closing before replying.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Reply> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before replying",
            )
        })
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// I/O failure, or a non-stats reply arriving first (don't mix with
    /// in-flight jobs).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        match self.call(&Request::Stats)? {
            Reply::Stats(v) => Ok(v),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }
}
