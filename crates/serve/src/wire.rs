//! Wire encoding for client-supplied netlists, with hard resource limits.
//!
//! Catalog designs are trusted — the server built them itself. A netlist
//! arriving over the wire is not: it is attacker-controlled JSON that, if
//! handed to the in-process `NetlistBuilder`, could
//! panic the reader thread on any width mismatch, and if handed to the
//! compiler unchecked, could pin a compile slot for minutes with a huge
//! design. This module is the trust boundary:
//!
//! 1. **Framing**: a versioned JSON shape (`{"version":1,...}`), decoded
//!    field by field with every id and width checked for range before use.
//! 2. **Resource limits** ([`WireLimits`]): hard caps on grid size, net /
//!    register / memory counts, and total memory-image words, checked on
//!    the *counts* before any per-element work — a violation is a typed
//!    [`WireError::Limit`] naming the limit, sent back as a permanent
//!    reject.
//! 3. **Structural validation**: the decoded parts go through
//!    [`Netlist::from_parts`], which re-checks every invariant the
//!    builder would have asserted (operand widths, wiring, acyclicity)
//!    and returns a typed error instead of panicking.
//!
//! A netlist that makes it through all three is as trustworthy as a
//! catalog design; the compile deadline then bounds what its *size in
//! work* can cost. [`encode_netlist`] is the inverse, used by clients and
//! the durable-session store.
//!
//! Primary inputs are not part of the wire format: Manticore runs closed
//! test harnesses (the compiler rejects inputs), so the decoder rejects
//! `input` cells outright rather than round-tripping a shape that can
//! never compile.

use std::fmt;

use manticore::bits::{Bits, MAX_WIDTH};
use manticore::netlist::{
    CellOp, DisplayCell, ExpectCell, FinishCell, MemWrite, Memory, MemoryId, Net, NetId, Netlist,
    NetlistParts, RegId, Register, ValidateError,
};

use crate::json::Value;

/// Wire-format version this build reads and writes.
pub const WIRE_VERSION: u64 = 1;

/// Hard resource limits applied to untrusted netlists *before*
/// compilation. Each is a cap on a count the decoder can read cheaply;
/// together they bound the compiler's input size, so the compile deadline
/// only has to cover honest-sized designs.
#[derive(Debug, Clone)]
pub struct WireLimits {
    /// Maximum cores in the requested grid (`side * side`). The paper's
    /// largest grid is 15×15 = 225; 256 (16×16) is the serving cap.
    pub grid_cores: usize,
    /// Maximum nets (bounds compiled instruction count).
    pub nets: usize,
    /// Maximum registers.
    pub registers: usize,
    /// Maximum memory banks.
    pub memories: usize,
    /// Maximum total memory-image words (`Σ depth`) across all banks —
    /// bounds both the scratchpad placement problem and the DRAM image.
    pub memory_words: usize,
    /// Maximum named outputs.
    pub outputs: usize,
    /// Maximum `$display` cells.
    pub displays: usize,
    /// Maximum assertion cells.
    pub expects: usize,
    /// Maximum `$finish` cells.
    pub finishes: usize,
    /// Maximum bytes of the rendered netlist JSON (checked by the server
    /// against the request's actual frame payload).
    pub netlist_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            grid_cores: 256,
            nets: 65_536,
            registers: 4_096,
            memories: 256,
            memory_words: 1 << 20,
            outputs: 1_024,
            displays: 256,
            expects: 1_024,
            finishes: 64,
            netlist_bytes: 4 << 20,
        }
    }
}

/// Why an untrusted netlist was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// A resource limit was exceeded. Permanent: resubmitting the same
    /// netlist will never succeed.
    Limit {
        /// Stable limit name (matches the [`WireLimits`] field).
        limit: &'static str,
        /// The configured cap.
        max: u64,
        /// The offending value.
        got: u64,
    },
    /// The JSON shape is wrong (missing field, bad type, unknown op,
    /// unsupported version).
    Malformed(String),
    /// The shape decoded but the netlist is structurally invalid.
    Invalid(ValidateError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Limit { limit, max, got } => {
                write!(f, "netlist exceeds the `{limit}` limit: {got} > {max}")
            }
            WireError::Malformed(m) => write!(f, "malformed netlist: {m}"),
            WireError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(m: impl Into<String>) -> WireError {
    WireError::Malformed(m.into())
}

fn check_limit(limit: &'static str, max: usize, got: usize) -> Result<(), WireError> {
    if got > max {
        return Err(WireError::Limit {
            limit,
            max: max as u64,
            got: got as u64,
        });
    }
    Ok(())
}

/// Checks a requested grid side against the core-count limit.
///
/// # Errors
///
/// [`WireError::Limit`] with limit name `grid_cores`.
pub fn check_grid(side: usize, limits: &WireLimits) -> Result<(), WireError> {
    let cores = side.saturating_mul(side);
    check_limit("grid_cores", limits.grid_cores, cores)?;
    if side == 0 {
        return Err(malformed("grid side must be at least 1"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encode.

fn bits_value(bits: &Bits) -> Value {
    Value::Arr(
        bits.to_words16()
            .into_iter()
            .map(|w| Value::Int(w as u64))
            .collect(),
    )
}

fn ids_value(ids: &[NetId]) -> Value {
    Value::Arr(ids.iter().map(|id| Value::Int(id.0 as u64)).collect())
}

/// Renders a netlist in the wire format. Inverse of [`decode_netlist`]
/// for every netlist the decoder accepts.
pub fn encode_netlist(netlist: &Netlist) -> Value {
    let nets = netlist
        .nets()
        .iter()
        .map(|net| {
            let mut fields = vec![
                ("op", Value::Str(net.op.mnemonic().into())),
                ("width", Value::Int(net.width as u64)),
            ];
            if !net.args.is_empty() {
                fields.push(("args", ids_value(&net.args)));
            }
            match &net.op {
                CellOp::Const(bits) => fields.push(("bits", bits_value(bits))),
                CellOp::RegQ(r) => fields.push(("reg", Value::Int(r.0 as u64))),
                CellOp::MemRead(m) => fields.push(("mem", Value::Int(m.0 as u64))),
                CellOp::Slice { offset } => fields.push(("offset", Value::Int(*offset as u64))),
                _ => {}
            }
            Value::obj(fields)
        })
        .collect();
    let registers = netlist
        .registers()
        .iter()
        .map(|reg| {
            Value::obj(vec![
                ("name", Value::Str(reg.name.clone())),
                ("width", Value::Int(reg.width as u64)),
                ("init", bits_value(&reg.init)),
                ("next", Value::Int(reg.next.0 as u64)),
                ("q", Value::Int(reg.q.0 as u64)),
            ])
        })
        .collect();
    let memories = netlist
        .memories()
        .iter()
        .map(|mem| {
            Value::obj(vec![
                ("name", Value::Str(mem.name.clone())),
                ("width", Value::Int(mem.width as u64)),
                ("depth", Value::Int(mem.depth as u64)),
                (
                    "init",
                    Value::Arr(mem.init.iter().map(bits_value).collect()),
                ),
                (
                    "writes",
                    Value::Arr(
                        mem.writes
                            .iter()
                            .map(|w| {
                                Value::obj(vec![
                                    ("addr", Value::Int(w.addr.0 as u64)),
                                    ("data", Value::Int(w.data.0 as u64)),
                                    ("en", Value::Int(w.en.0 as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let outputs = netlist
        .outputs()
        .iter()
        .map(|(name, id)| Value::Arr(vec![Value::Str(name.clone()), Value::Int(id.0 as u64)]))
        .collect();
    let displays = netlist
        .displays()
        .iter()
        .map(|d| {
            Value::obj(vec![
                ("cond", Value::Int(d.cond.0 as u64)),
                ("format", Value::Str(d.format.clone())),
                ("args", ids_value(&d.args)),
            ])
        })
        .collect();
    let expects = netlist
        .expects()
        .iter()
        .map(|e| {
            Value::obj(vec![
                ("cond", Value::Int(e.cond.0 as u64)),
                ("id", Value::Int(e.id as u64)),
                ("message", Value::Str(e.message.clone())),
            ])
        })
        .collect();
    let finishes = netlist
        .finishes()
        .iter()
        .map(|f_| Value::obj(vec![("cond", Value::Int(f_.cond.0 as u64))]))
        .collect();

    Value::obj(vec![
        ("version", Value::Int(WIRE_VERSION)),
        ("name", Value::Str(netlist.name().to_string())),
        ("nets", Value::Arr(nets)),
        ("registers", Value::Arr(registers)),
        ("memories", Value::Arr(memories)),
        ("outputs", Value::Arr(outputs)),
        ("displays", Value::Arr(displays)),
        ("expects", Value::Arr(expects)),
        ("finishes", Value::Arr(finishes)),
    ])
}

// ---------------------------------------------------------------------------
// Decode.

fn field<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| malformed(format!("{what} has no `{key}`")))
}

fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, WireError> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| malformed(format!("{what} `{key}` is not an unsigned integer")))
}

fn field_usize(v: &Value, key: &str, what: &str) -> Result<usize, WireError> {
    usize::try_from(field_u64(v, key, what)?)
        .map_err(|_| malformed(format!("{what} `{key}` exceeds usize")))
}

fn field_str(v: &Value, key: &str, what: &str) -> Result<String, WireError> {
    field(v, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| malformed(format!("{what} `{key}` is not a string")))
}

fn field_arr<'a>(v: &'a Value, key: &str, what: &str) -> Result<&'a [Value], WireError> {
    field(v, key, what)?
        .as_arr()
        .ok_or_else(|| malformed(format!("{what} `{key}` is not an array")))
}

fn net_id(v: &Value, what: &str) -> Result<NetId, WireError> {
    let raw = v
        .as_u64()
        .ok_or_else(|| malformed(format!("{what} is not an unsigned integer")))?;
    u32::try_from(raw)
        .map(NetId)
        .map_err(|_| malformed(format!("{what} {raw} exceeds the id range")))
}

/// Decodes a `width`-bit value from an array of 16-bit words. Width must
/// already be range-checked; the word count must match exactly.
fn bits_of(v: &Value, width: usize, what: &str) -> Result<Bits, WireError> {
    let words = v
        .as_arr()
        .ok_or_else(|| malformed(format!("{what} is not a word array")))?;
    let expect = width.div_ceil(16);
    if words.len() != expect {
        return Err(malformed(format!(
            "{what} has {} words for {width} bits (need {expect})",
            words.len()
        )));
    }
    let mut decoded = Vec::with_capacity(words.len());
    for w in words {
        let raw = w
            .as_u64()
            .ok_or_else(|| malformed(format!("{what} word is not an integer")))?;
        let word =
            u16::try_from(raw).map_err(|_| malformed(format!("{what} word {raw} exceeds u16")))?;
        decoded.push(word);
    }
    Ok(Bits::from_words16(&decoded, width))
}

/// A width already checked against `1..=MAX_WIDTH`, safe to hand to
/// [`Bits`] constructors.
fn checked_width(v: &Value, what: &str) -> Result<usize, WireError> {
    let width = field_usize(v, "width", what)?;
    if width == 0 || width > MAX_WIDTH {
        return Err(malformed(format!(
            "{what} width {width} outside 1..={MAX_WIDTH}"
        )));
    }
    Ok(width)
}

/// Decodes and fully validates an untrusted wire netlist.
///
/// # Errors
///
/// [`WireError::Limit`] when a resource cap is exceeded (checked on the
/// counts before any per-element decode), [`WireError::Malformed`] for
/// shape errors, [`WireError::Invalid`] when the decoded structure fails
/// [`Netlist::from_parts`] validation. Never panics on any input.
pub fn decode_netlist(v: &Value, limits: &WireLimits) -> Result<Netlist, WireError> {
    let version = field_u64(v, "version", "netlist")?;
    if version != WIRE_VERSION {
        return Err(malformed(format!(
            "unsupported netlist version {version} (this server speaks {WIRE_VERSION})"
        )));
    }
    let name = field_str(v, "name", "netlist")?;
    let nets_v = field_arr(v, "nets", "netlist")?;
    let registers_v = field_arr(v, "registers", "netlist")?;
    let memories_v = field_arr(v, "memories", "netlist")?;
    let outputs_v = field_arr(v, "outputs", "netlist")?;
    let displays_v = match v.get("displays") {
        None | Some(Value::Null) => &[][..],
        Some(val) => val
            .as_arr()
            .ok_or_else(|| malformed("`displays` is not an array"))?,
    };
    let expects_v = match v.get("expects") {
        None | Some(Value::Null) => &[][..],
        Some(val) => val
            .as_arr()
            .ok_or_else(|| malformed("`expects` is not an array"))?,
    };
    let finishes_v = match v.get("finishes") {
        None | Some(Value::Null) => &[][..],
        Some(val) => val
            .as_arr()
            .ok_or_else(|| malformed("`finishes` is not an array"))?,
    };

    // Limits on the raw counts, before any per-element decode.
    check_limit("nets", limits.nets, nets_v.len())?;
    check_limit("registers", limits.registers, registers_v.len())?;
    check_limit("memories", limits.memories, memories_v.len())?;
    check_limit("outputs", limits.outputs, outputs_v.len())?;
    check_limit("displays", limits.displays, displays_v.len())?;
    check_limit("expects", limits.expects, expects_v.len())?;
    check_limit("finishes", limits.finishes, finishes_v.len())?;

    let mut nets = Vec::with_capacity(nets_v.len());
    for (i, nv) in nets_v.iter().enumerate() {
        let what = format!("net {i}");
        let width = checked_width(nv, &what)?;
        let op_name = field_str(nv, "op", &what)?;
        let mut args = Vec::new();
        if let Some(raw_args) = nv.get("args") {
            let items = raw_args
                .as_arr()
                .ok_or_else(|| malformed(format!("{what} `args` is not an array")))?;
            // Per-op arity is validated by `from_parts`; cap the raw count
            // here so a hostile frame can't make one net carry millions
            // of operands.
            if items.len() > 3 {
                return Err(malformed(format!(
                    "{what} has {} operands; no op takes more than 3",
                    items.len()
                )));
            }
            for a in items {
                args.push(net_id(a, &format!("{what} operand"))?);
            }
        }
        let op = match op_name.as_str() {
            "const" => CellOp::Const(bits_of(
                field(nv, "bits", &what)?,
                width,
                &format!("{what} `bits`"),
            )?),
            "input" => {
                return Err(malformed(
                    "`input` cells are not supported: Manticore runs closed harnesses \
                     (drive stimulus from registers instead)",
                ))
            }
            "regq" => {
                let raw = field_u64(nv, "reg", &what)?;
                let id = u32::try_from(raw)
                    .map_err(|_| malformed(format!("{what} `reg` {raw} exceeds the id range")))?;
                CellOp::RegQ(RegId(id))
            }
            "memread" => {
                let raw = field_u64(nv, "mem", &what)?;
                let id = u32::try_from(raw)
                    .map_err(|_| malformed(format!("{what} `mem` {raw} exceeds the id range")))?;
                CellOp::MemRead(MemoryId(id))
            }
            "slice" => CellOp::Slice {
                offset: field_usize(nv, "offset", &what)?,
            },
            "and" => CellOp::And,
            "or" => CellOp::Or,
            "xor" => CellOp::Xor,
            "not" => CellOp::Not,
            "add" => CellOp::Add,
            "sub" => CellOp::Sub,
            "mul" => CellOp::Mul,
            "eq" => CellOp::Eq,
            "ult" => CellOp::Ult,
            "slt" => CellOp::Slt,
            "shl" => CellOp::Shl,
            "shr" => CellOp::Shr,
            "ashr" => CellOp::Ashr,
            "concat" => CellOp::Concat,
            "zext" => CellOp::ZExt,
            "sext" => CellOp::SExt,
            "mux" => CellOp::Mux,
            "redor" => CellOp::RedOr,
            "redand" => CellOp::RedAnd,
            "redxor" => CellOp::RedXor,
            other => return Err(malformed(format!("{what} has unknown op `{other}`"))),
        };
        nets.push(Net { op, args, width });
    }

    let mut registers = Vec::with_capacity(registers_v.len());
    for (i, rv) in registers_v.iter().enumerate() {
        let what = format!("register {i}");
        let width = checked_width(rv, &what)?;
        registers.push(Register {
            name: field_str(rv, "name", &what)?,
            width,
            init: bits_of(field(rv, "init", &what)?, width, &format!("{what} `init`"))?,
            next: net_id(field(rv, "next", &what)?, &format!("{what} `next`"))?,
            q: net_id(field(rv, "q", &what)?, &format!("{what} `q`"))?,
        });
    }

    let mut memories = Vec::with_capacity(memories_v.len());
    let mut total_words = 0usize;
    for (i, mv) in memories_v.iter().enumerate() {
        let what = format!("memory {i}");
        let width = checked_width(mv, &what)?;
        let depth = field_usize(mv, "depth", &what)?;
        total_words = total_words.saturating_add(depth);
        // Checked as banks accumulate so a single absurd `depth` field
        // fails fast, before its (empty) init image is even looked at.
        check_limit("memory_words", limits.memory_words, total_words)?;
        let init_v = field_arr(mv, "init", &what)?;
        if init_v.len() > depth {
            return Err(malformed(format!(
                "{what} has {} init words for depth {depth}",
                init_v.len()
            )));
        }
        let mut init = Vec::with_capacity(init_v.len());
        for (w, wv) in init_v.iter().enumerate() {
            init.push(bits_of(wv, width, &format!("{what} init word {w}"))?);
        }
        let writes_v = field_arr(mv, "writes", &what)?;
        if writes_v.len() > 16 {
            return Err(malformed(format!(
                "{what} has {} write ports; the cap is 16",
                writes_v.len()
            )));
        }
        let mut writes = Vec::with_capacity(writes_v.len());
        for wv in writes_v {
            writes.push(MemWrite {
                addr: net_id(field(wv, "addr", &what)?, &format!("{what} write `addr`"))?,
                data: net_id(field(wv, "data", &what)?, &format!("{what} write `data`"))?,
                en: net_id(field(wv, "en", &what)?, &format!("{what} write `en`"))?,
            });
        }
        memories.push(Memory {
            name: field_str(mv, "name", &what)?,
            depth,
            width,
            init,
            writes,
        });
    }

    let mut outputs = Vec::with_capacity(outputs_v.len());
    for (i, ov) in outputs_v.iter().enumerate() {
        let what = format!("output {i}");
        let pair = ov
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| malformed(format!("{what} is not a [name, net] pair")))?;
        let name = pair[0]
            .as_str()
            .ok_or_else(|| malformed(format!("{what} name is not a string")))?;
        outputs.push((name.to_string(), net_id(&pair[1], &format!("{what} net"))?));
    }

    let mut displays = Vec::with_capacity(displays_v.len());
    for (i, dv) in displays_v.iter().enumerate() {
        let what = format!("display {i}");
        let args_v = field_arr(dv, "args", &what)?;
        let mut args = Vec::with_capacity(args_v.len());
        for a in args_v {
            args.push(net_id(a, &format!("{what} arg"))?);
        }
        displays.push(DisplayCell {
            cond: net_id(field(dv, "cond", &what)?, &format!("{what} `cond`"))?,
            format: field_str(dv, "format", &what)?,
            args,
        });
    }

    let mut expects = Vec::with_capacity(expects_v.len());
    for (i, ev) in expects_v.iter().enumerate() {
        let what = format!("expect {i}");
        let raw_id = field_u64(ev, "id", &what)?;
        expects.push(ExpectCell {
            cond: net_id(field(ev, "cond", &what)?, &format!("{what} `cond`"))?,
            id: u32::try_from(raw_id)
                .map_err(|_| malformed(format!("{what} id {raw_id} exceeds u32")))?,
            message: field_str(ev, "message", &what)?,
        });
    }

    let mut finishes = Vec::with_capacity(finishes_v.len());
    for (i, fv) in finishes_v.iter().enumerate() {
        let what = format!("finish {i}");
        finishes.push(FinishCell {
            cond: net_id(field(fv, "cond", &what)?, &format!("{what} `cond`"))?,
        });
    }

    Netlist::from_parts(NetlistParts {
        name,
        nets,
        registers,
        memories,
        inputs: Vec::new(),
        outputs,
        displays,
        expects,
        finishes,
    })
    .map_err(WireError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manticore::netlist::NetlistBuilder;

    fn counter() -> Netlist {
        let mut b = NetlistBuilder::new("wire_counter");
        let r = b.reg("count", 16, 0);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        b.finish_build().unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let n = counter();
        let encoded = encode_netlist(&n);
        // Survive an actual render/parse cycle, as on the wire.
        let rendered = encoded.render();
        let parsed = Value::parse(&rendered).unwrap();
        let back = decode_netlist(&parsed, &WireLimits::default()).unwrap();
        assert_eq!(back.nets().len(), n.nets().len());
        assert_eq!(back.registers().len(), n.registers().len());
        assert_eq!(back.outputs().len(), n.outputs().len());
        // The round-tripped netlist is the same design: identical debug
        // rendering means identical cache key.
        assert_eq!(format!("{back:?}"), format!("{n:?}"));
    }

    #[test]
    fn count_limits_reject_before_decoding_elements() {
        let limits = WireLimits {
            nets: 2,
            ..WireLimits::default()
        };
        let v = encode_netlist(&counter());
        let err = decode_netlist(&v, &limits).unwrap_err();
        assert!(
            matches!(err, WireError::Limit { limit: "nets", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn memory_words_limit_uses_depth_not_init_len() {
        // A tiny frame declaring a gigantic empty memory must trip the
        // limit: depth is the resource, not the init image.
        let v = Value::obj(vec![
            ("version", Value::Int(1)),
            ("name", Value::Str("huge".into())),
            ("nets", Value::Arr(vec![])),
            ("registers", Value::Arr(vec![])),
            (
                "memories",
                Value::Arr(vec![Value::obj(vec![
                    ("name", Value::Str("m".into())),
                    ("width", Value::Int(16)),
                    ("depth", Value::Int(u32::MAX as u64)),
                    ("init", Value::Arr(vec![])),
                    ("writes", Value::Arr(vec![])),
                ])]),
            ),
            ("outputs", Value::Arr(vec![])),
        ]);
        let err = decode_netlist(&v, &WireLimits::default()).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Limit {
                    limit: "memory_words",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn structural_violations_are_typed_not_panics() {
        // Point the register's next net out of range.
        let mut v = encode_netlist(&counter());
        if let Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "registers" {
                    if let Value::Arr(regs) = val {
                        if let Value::Obj(reg) = &mut regs[0] {
                            for (rk, rv) in reg.iter_mut() {
                                if rk == "next" {
                                    *rv = Value::Int(9999);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = decode_netlist(&v, &WireLimits::default()).unwrap_err();
        assert!(matches!(err, WireError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn input_cells_and_unknown_ops_are_rejected() {
        for op in ["input", "frobnicate"] {
            let v = Value::obj(vec![
                ("version", Value::Int(1)),
                ("name", Value::Str("bad".into())),
                (
                    "nets",
                    Value::Arr(vec![Value::obj(vec![
                        ("op", Value::Str(op.into())),
                        ("width", Value::Int(1)),
                    ])]),
                ),
                ("registers", Value::Arr(vec![])),
                ("memories", Value::Arr(vec![])),
                ("outputs", Value::Arr(vec![])),
            ]);
            let err = decode_netlist(&v, &WireLimits::default()).unwrap_err();
            assert!(matches!(err, WireError::Malformed(_)), "{op}: {err:?}");
        }
    }

    #[test]
    fn grid_limit_is_cores_not_side() {
        let limits = WireLimits::default();
        assert!(check_grid(16, &limits).is_ok());
        assert!(matches!(
            check_grid(17, &limits),
            Err(WireError::Limit {
                limit: "grid_cores",
                max: 256,
                got: 289,
            })
        ));
        assert!(check_grid(0, &limits).is_err());
        // usize overflow in side*side must not wrap to a small number.
        assert!(check_grid(usize::MAX, &limits).is_err());
    }
}
