//! Resumable sessions: park a finished machine server-side, hand the
//! client an id, and continue the run later without replaying.
//!
//! A parked session owns the full `Machine` (architectural state,
//! counters, engine knobs) plus the compilation it ran, so a resume is a
//! [`manticore::fleet::SimJob::resume`] — no recompile, no re-run, and
//! the continued trajectory is bit-identical to a single uninterrupted
//! run (the integration suite asserts this by state fingerprint).
//!
//! Sessions are leases, not persistent state: a reaper drops any session
//! idle past the configured TTL so abandoned clients cannot pin machines
//! forever. Resuming *removes* the session from the table (the machine
//! is on a worker); a job that parks again re-inserts under a fresh id.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use manticore::compiler::CompileOutput;
use manticore::machine::Machine;

use crate::json::Value;

/// Where a parked session's design came from — enough to recompile it
/// deterministically after a restart. The durable store persists this
/// next to the checkpoint; recovery recompiles the source (the compiler
/// is bit-deterministic, so the recompile is the same program) and
/// rebinds the checkpoint to the fresh compilation.
#[derive(Debug, Clone)]
pub enum SessionSource {
    /// A catalog design, by name, at the given grid side.
    Catalog {
        /// Catalog design name.
        name: String,
        /// Grid side the design was compiled at.
        grid: usize,
    },
    /// A client-supplied netlist, kept in its wire encoding.
    Wire {
        /// The [`crate::wire`]-encoded netlist.
        netlist: Value,
        /// Grid side the design was compiled at.
        grid: usize,
    },
}

/// A parked run: the machine mid-flight and the compilation that made
/// it (needed to resolve register names on later slices).
#[derive(Debug)]
pub struct ParkedSession {
    /// The machine, stopped at a Vcycle boundary.
    pub machine: Machine,
    /// The compilation the machine is executing.
    pub output: Arc<CompileOutput>,
    /// The design's provenance, for the durable spill.
    pub source: SessionSource,
}

struct Entry {
    session: ParkedSession,
    last_used: Instant,
}

/// Counter snapshot for the stats endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions currently parked.
    pub live: usize,
    /// Sessions ever parked.
    pub parked: u64,
    /// Sessions resumed by a client.
    pub resumed: u64,
    /// Sessions dropped by the idle reaper.
    pub reaped: u64,
    /// Sessions re-adopted from the durable store after a restart.
    pub recovered: u64,
}

/// The server-wide table of parked sessions.
pub struct SessionTable {
    inner: Mutex<Inner>,
    ttl: Duration,
}

struct Inner {
    entries: HashMap<String, Entry>,
    next_id: u64,
    parked: u64,
    resumed: u64,
    reaped: u64,
    recovered: u64,
}

impl SessionTable {
    /// A table whose reaper drops sessions idle longer than `ttl`.
    pub fn new(ttl: Duration) -> SessionTable {
        SessionTable {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                next_id: 0,
                parked: 0,
                resumed: 0,
                reaped: 0,
                recovered: 0,
            }),
            ttl,
        }
    }

    /// Parks `session` and returns its fresh id (`s-<n>`, unique for the
    /// server's lifetime).
    pub fn park(&self, session: ParkedSession) -> String {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        inner.next_id += 1;
        inner.parked += 1;
        let id = format!("s-{}", inner.next_id);
        inner.entries.insert(
            id.clone(),
            Entry {
                session,
                last_used: Instant::now(),
            },
        );
        id
    }

    /// Re-parks a recovered session under its *original* id, so clients
    /// holding ids from before a crash keep working. Bumps the id
    /// allocator past the adopted id's sequence number, so later parks
    /// can never collide with recovered sessions.
    pub fn adopt(&self, id: &str, session: ParkedSession) {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        if let Some(n) = id.strip_prefix("s-").and_then(|n| n.parse::<u64>().ok()) {
            inner.next_id = inner.next_id.max(n);
        }
        inner.recovered += 1;
        inner.entries.insert(
            id.to_string(),
            Entry {
                session,
                last_used: Instant::now(),
            },
        );
    }

    /// Takes the session out of the table for resumption. `None` when the
    /// id is unknown — never parked, already resumed, or reaped.
    pub fn resume(&self, id: &str) -> Option<ParkedSession> {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        let entry = inner.entries.remove(id)?;
        inner.resumed += 1;
        Some(entry.session)
    }

    /// Drops a session without running it. Returns whether it existed.
    pub fn drop_session(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        inner.entries.remove(id).is_some()
    }

    /// Drops every session idle longer than the TTL and returns their
    /// ids (so the caller can also reap any durable spill). Called
    /// periodically by the server's reaper thread.
    pub fn reap(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect("session lock poisoned");
        let ttl = self.ttl;
        let mut dropped = Vec::new();
        inner.entries.retain(|id, e| {
            let keep = e.last_used.elapsed() <= ttl;
            if !keep {
                dropped.push(id.clone());
            }
            keep
        });
        inner.reaped += dropped.len() as u64;
        dropped
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> SessionStats {
        let inner = self.inner.lock().expect("session lock poisoned");
        SessionStats {
            live: inner.entries.len(),
            parked: inner.parked,
            resumed: inner.resumed,
            reaped: inner.reaped,
            recovered: inner.recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manticore::prelude::*;

    fn parked() -> ParkedSession {
        let mut b = NetlistBuilder::new("c");
        let r = b.reg("count", 16, 0);
        let one = b.lit(1, 16);
        let next = b.add(r.q(), one);
        b.set_next(r, next);
        b.output("count", r.q());
        let n = b.finish_build().unwrap();
        let fleet = FleetSim::compile(&n, MachineConfig::with_grid(2, 2), 1).unwrap();
        let output = std::sync::Arc::clone(fleet.output());
        let mut machine = Machine::from_program(std::sync::Arc::clone(fleet.program()));
        machine.run_vcycles(3).unwrap();
        ParkedSession {
            machine,
            output,
            source: SessionSource::Catalog {
                name: "c".into(),
                grid: 2,
            },
        }
    }

    #[test]
    fn adopt_restores_the_original_id_and_advances_the_allocator() {
        let table = SessionTable::new(Duration::from_secs(60));
        table.adopt("s-7", parked());
        // A fresh park must not collide with the adopted id space.
        let fresh = table.park(parked());
        assert_eq!(fresh, "s-8");
        assert!(table.resume("s-7").is_some());
        assert_eq!(table.stats().recovered, 1);
    }

    #[test]
    fn park_resume_is_single_use_and_drop_is_idempotent() {
        let table = SessionTable::new(Duration::from_secs(60));
        let id = table.park(parked());
        assert!(table.resume(&id).is_some());
        assert!(table.resume(&id).is_none(), "resume consumes the session");
        let id2 = table.park(parked());
        assert_ne!(id, id2, "ids are never reused");
        assert!(table.drop_session(&id2));
        assert!(!table.drop_session(&id2));
        let stats = table.stats();
        assert_eq!((stats.parked, stats.resumed, stats.live), (2, 1, 0));
    }

    #[test]
    fn reaper_drops_only_idle_sessions() {
        let table = SessionTable::new(Duration::from_millis(30));
        let id = table.park(parked());
        assert!(table.reap().is_empty(), "fresh session survives");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(table.reap(), vec![id.clone()]);
        assert!(table.resume(&id).is_none());
        assert_eq!(table.stats().reaped, 1);
    }
}
