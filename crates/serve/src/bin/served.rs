//! `manticore-served` — the standalone simulation-service daemon.
//!
//! Binds the requested address and serves jobs until killed (or until a
//! client sends the `shutdown` op). See SERVING.md for the protocol and
//! a runbook.
//!
//! ```text
//! manticore-served [--addr HOST:PORT] [--workers N] [--lanes N]
//!                  [--cache-mb N] [--compile-slots N]
//!                  [--queue-high-water N] [--session-ttl-secs N]
//!                  [--session-dir PATH] [--compile-deadline-ms N]
//!                  [--conn-netlist-mb N] [--untrusted-compile-slots N]
//! ```
//!
//! `--session-dir` makes parked sessions crash-safe: they spill to the
//! directory and a restarted daemon recovers them under their original
//! ids. `--compile-deadline-ms 0` disables the untrusted-compile
//! deadline (trusted deployments only).

use std::time::Duration;

use manticore_serve::server::{Server, ServerConfig};

fn take_opt(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.remove(pos);
    if pos < args.len() {
        Some(args.remove(pos))
    } else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: String) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{value}`");
        std::process::exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addr = take_opt(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:9118".to_string());
    let mut cfg = ServerConfig::default();
    if let Some(v) = take_opt(&mut args, "--workers") {
        cfg.workers = parse("--workers", v);
    }
    if let Some(v) = take_opt(&mut args, "--lanes") {
        cfg.lanes = parse("--lanes", v);
    }
    if let Some(v) = take_opt(&mut args, "--cache-mb") {
        cfg.cache_bytes = parse::<usize>("--cache-mb", v) << 20;
    }
    if let Some(v) = take_opt(&mut args, "--compile-slots") {
        cfg.compile_slots = parse("--compile-slots", v);
    }
    if let Some(v) = take_opt(&mut args, "--queue-high-water") {
        cfg.queue_high_water = parse("--queue-high-water", v);
    }
    if let Some(v) = take_opt(&mut args, "--session-ttl-secs") {
        cfg.session_ttl = Duration::from_secs(parse("--session-ttl-secs", v));
    }
    if let Some(v) = take_opt(&mut args, "--session-dir") {
        cfg.session_dir = Some(std::path::PathBuf::from(v));
    }
    if let Some(v) = take_opt(&mut args, "--compile-deadline-ms") {
        let ms: u64 = parse("--compile-deadline-ms", v);
        cfg.compile_deadline = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(v) = take_opt(&mut args, "--conn-netlist-mb") {
        cfg.conn_netlist_bytes = parse::<u64>("--conn-netlist-mb", v) << 20;
    }
    if let Some(v) = take_opt(&mut args, "--untrusted-compile-slots") {
        cfg.untrusted_compile_slots = parse("--untrusted-compile-slots", v);
    }
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let mut server = match Server::bind(&addr, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("manticore-served listening on {}", server.local_addr());
    // Serve until a client's `shutdown` op trips the token; the join
    // inside `shutdown` returns once the service threads exit.
    server.shutdown_when_requested();
}
