//! The design catalog: the names a [`crate::proto::SubmitReq`] may ask
//! for, and the cache key that identifies a (design, grid) pair.
//!
//! Two families of designs are served:
//!
//! - **Micro designs** (`counter`, `accum`, `lfsr`, `toggle`) — tiny
//!   state machines built here with the netlist DSL. They compile in
//!   milliseconds at their default 2×2 grid, which is what a soak run
//!   needs: the interesting load is job dispatch and cache traffic, not
//!   compilation.
//! - **Benchmark workloads** — every design in [`manticore::workloads`]
//!   (including the composed `soc`), at a default 8×8 grid.
//!
//! Each micro design exposes a writable input register (`count`, `acc`,
//! `lfsr`, `t`) so jobs can carry distinct input vectors, and keeps its
//! state observable through an output of the same name.

use manticore::isa::MachineConfig;
use manticore::netlist::{Netlist, NetlistBuilder};
use manticore_util::FnvHasher;
use std::hash::Hasher;

/// The micro design names served at grid 2×2 by default.
pub const MICRO_DESIGNS: [&str; 4] = ["counter", "accum", "lfsr", "toggle"];

/// Looks up `name` and returns its netlist plus default machine
/// configuration, or `None` for a name the catalog does not serve.
/// `grid` overrides the default grid side (clamped to at least 1).
pub fn lookup(name: &str, grid: Option<usize>) -> Option<(Netlist, MachineConfig)> {
    let (netlist, default_side) = match name {
        "counter" => (counter(), 2),
        "accum" => (accum(), 2),
        "lfsr" => (lfsr(), 2),
        "toggle" => (toggle(), 2),
        other => (manticore::workloads::by_name(other)?.netlist, 8),
    };
    let side = grid.unwrap_or(default_side).max(1);
    Some((netlist, MachineConfig::with_grid(side, side)))
}

/// The cache key for a (netlist, config) pair: FNV-1a over the debug
/// renderings of both. The netlist IR derives a deterministic `Debug`, so
/// building the same catalog design twice — even on different
/// connections — hashes identically, while any structural difference
/// (including the grid) lands in a different cache entry.
pub fn netlist_hash(netlist: &Netlist, config: &MachineConfig) -> u64 {
    let mut h = FnvHasher::default();
    h.write(format!("{netlist:?}").as_bytes());
    h.write(format!("{config:?}").as_bytes());
    h.finish()
}

/// A free-running 16-bit counter; poke `count` to set the start value.
fn counter() -> Netlist {
    let mut b = NetlistBuilder::new("counter");
    let count = b.reg("count", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(count.q(), one);
    b.set_next(count, next);
    b.output("count", count.q());
    b.finish_build()
        .expect("counter micro design is well-formed")
}

/// An accumulator: `acc += step` every cycle. `step` holds its poked
/// value; `acc` is the observable sum.
fn accum() -> Netlist {
    let mut b = NetlistBuilder::new("accum");
    let step = b.reg("step", 16, 1);
    b.set_next(step, step.q());
    let acc = b.reg("acc", 16, 0);
    let next = b.add(acc.q(), step.q());
    b.set_next(acc, next);
    b.output("acc", acc.q());
    b.output("step", step.q());
    b.finish_build().expect("accum micro design is well-formed")
}

/// A 16-bit Fibonacci LFSR (taps 16, 14, 13, 11); poke `lfsr` to seed
/// it. The all-zero state self-escapes via an inverted feedback on zero.
fn lfsr() -> Netlist {
    let mut b = NetlistBuilder::new("lfsr");
    let state = b.reg("lfsr", 16, 0xACE1);
    let taps = [15usize, 13, 12, 10];
    let mut fb = b.bit(state.q(), taps[0]);
    for &t in &taps[1..] {
        let bit = b.bit(state.q(), t);
        fb = b.xor(fb, bit);
    }
    // Escape hatch: a zero register would otherwise stay zero forever.
    let zero = b.lit(0, 16);
    let is_zero = b.eq(state.q(), zero);
    let one_bit = b.lit(1, 1);
    let fb = b.mux(is_zero, one_bit, fb);
    let shifted = b.shl_const(state.q(), 1);
    let fb_wide = b.zext(fb, 16);
    let next = b.or(shifted, fb_wide);
    b.set_next(state, next);
    b.output("lfsr", state.q());
    b.finish_build().expect("lfsr micro design is well-formed")
}

/// A 1-bit toggle plus an edge counter; poke `t` to set the phase.
fn toggle() -> Netlist {
    let mut b = NetlistBuilder::new("toggle");
    let t = b.reg("t", 1, 0);
    let flipped = b.not(t.q());
    b.set_next(t, flipped);
    let edges = b.reg("edges", 16, 0);
    let one = b.lit(1, 16);
    let bumped = b.add(edges.q(), one);
    let next = b.mux(t.q(), bumped, edges.q());
    b.set_next(edges, next);
    b.output("t", t.q());
    b.output("edges", edges.q());
    b.finish_build()
        .expect("toggle micro design is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_micro_design_compiles_at_its_default_grid() {
        for name in MICRO_DESIGNS {
            let (netlist, config) = lookup(name, None).unwrap();
            manticore::ManticoreSim::compile(&netlist, config)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        }
    }

    #[test]
    fn hash_is_stable_across_rebuilds_and_distinguishes_grids() {
        let (n1, c1) = lookup("counter", None).unwrap();
        let (n2, c2) = lookup("counter", None).unwrap();
        assert_eq!(netlist_hash(&n1, &c1), netlist_hash(&n2, &c2));

        let (_, c4) = lookup("counter", Some(4)).unwrap();
        assert_ne!(netlist_hash(&n1, &c1), netlist_hash(&n1, &c4));

        let (lfsr, cl) = lookup("lfsr", None).unwrap();
        assert_ne!(netlist_hash(&n1, &c1), netlist_hash(&lfsr, &cl));
    }

    #[test]
    fn workload_names_resolve_through_the_catalog() {
        assert!(lookup("soc", None).is_some());
        assert!(lookup("mips32", None).is_some() || lookup("vta", None).is_some());
        assert!(lookup("no_such_design", None).is_none());
    }
}
