//! # Simulation as a service
//!
//! A long-lived job server over the [`manticore`] fleet: clients connect
//! over TCP, stream in simulation jobs against named catalog designs,
//! and stream results back as each job finishes. The expensive artifact
//! — the statically scheduled compilation — is cached and shared across
//! jobs, connections, and time: the first request for a design compiles
//! it, every later request is two `Arc` clones.
//!
//! The daemon turns the paper's compile-once / run-many economics into a
//! service boundary. One compilation of a design amortizes across every
//! scenario any client ever submits for it, the way one FPGA bitstream
//! amortizes across every run of the imaged design; admission control
//! and deficit-round-robin scheduling keep one greedy client from
//! starving the rest; resumable sessions let a client park a simulation
//! mid-flight and continue it later without replaying.
//!
//! ## Module map
//!
//! - [`json`] — the dependency-light JSON value, parser, and renderer;
//! - [`proto`] — length-prefixed frames and the typed request/reply
//!   vocabulary (SERVING.md documents the bytes);
//! - [`catalog`] — the servable designs and the (netlist, config) cache
//!   key;
//! - [`cache`] — single-flight compiled-program cache with a byte budget
//!   and LRU eviction;
//! - [`wire`] — the untrusted-netlist wire encoding and its resource
//!   limits (the trust boundary for `submit_netlist`);
//! - [`session`] — parked machines, resumable by id, reaped when idle;
//! - [`durable`] — crash-safe on-disk spill of parked sessions, recovered
//!   on restart;
//! - [`server`] — the accept/reader/writer/dispatcher/reaper threads;
//! - [`client`] — the blocking reference client, with reject-aware retry;
//! - [`fuzz`] — the deterministic protocol fuzzer the hardening harness
//!   drives against a live server.
//!
//! ## Quick start
//!
//! ```
//! use manticore_serve::client::Client;
//! use manticore_serve::proto::{Reply, Request, SubmitReq};
//! use manticore_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.call(&Request::Submit(SubmitReq {
//!     id: 1,
//!     design: "counter".into(),
//!     grid: None,
//!     vcycles: 10,
//!     pokes: vec![("count".into(), 100)],
//!     reads: vec!["count".into()],
//!     deadline_ms: None,
//!     park: false,
//! }))?;
//! match reply {
//!     Reply::Result(r) => {
//!         assert_eq!(r.outcome, "budget");
//!         assert_eq!(r.regs, vec![("count".into(), 110)]);
//!     }
//!     other => panic!("unexpected reply: {other:?}"),
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod client;
pub mod durable;
pub mod fuzz;
pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod wire;
