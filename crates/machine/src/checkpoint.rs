//! First-class checkpoints: serialize-free, in-memory snapshots of a run.
//!
//! A [`Checkpoint`] captures everything mutable about a [`Machine`] at a
//! Vcycle boundary — the SoA register file and scratchpad, the per-core
//! pipeline rings and epilogue slots, the NoC, the cache (including its
//! DRAM image), the performance counters, and the pending host-event
//! queue — plus the run's engine knobs, and is keyed by the identity of
//! the owning [`CompiledProgram`] so it can only ever be applied to a
//! machine running the same compilation ([`Machine::restore`] returns
//! [`MachineError::CheckpointMismatch`] otherwise, without touching the
//! target).
//!
//! Checkpoints are the nodes of a *scenario tree*: [`Checkpoint::fork`]
//! explodes one snapshot into a K-lane [`GangMachine`] of initially
//! identical children, each of which is then diverged with its own
//! [`GangMachine::poke_reg`] stimulus before resuming — the
//! lane-batched form of "what happens from here under K different
//! inputs?". The differential harness in `tests/checkpoint_equivalence.rs`
//! pins every state-movement path here (snapshot, restore, fork, lane
//! round-trip) bit-identical to an uninterrupted run across all engine
//! variants.
//!
//! The per-Vcycle scratch buffers a machine carries (`send_buf`,
//! `send_vals_buf`, `due_buf`) are deliberately *not* captured: they are
//! empty at every Vcycle boundary, which is the only place a snapshot can
//! be taken or applied.

use std::sync::Arc;

use crate::cache::Cache;
use crate::core::CoreState;
use crate::gang::GangMachine;
use crate::grid::{ExecMode, HostEvent, Machine, MachineError, PerfCounters, ReplayEngine};
use crate::noc::Noc;
use crate::program::CompiledProgram;

/// A snapshot of one run at a Vcycle boundary. Cheap to clone (the
/// compiled program is shared behind its `Arc`; only mutable run state is
/// owned), cheap to take (no serialization — the state vectors are
/// memcpy'd), and inert: a checkpoint never changes once taken.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) regs: Vec<u32>,
    pub(crate) scratch: Vec<u16>,
    pub(crate) noc: Noc,
    pub(crate) cache: Cache,
    pub(crate) compute_time: u64,
    pub(crate) counters: PerfCounters,
    pub(crate) strict_hazards: bool,
    pub(crate) finish_requested: bool,
    pub(crate) events: Vec<HostEvent>,
    pub(crate) exec_mode: ExecMode,
    pub(crate) replay_enabled: bool,
    pub(crate) replay_engine: ReplayEngine,
    pub(crate) tape_invalidated: bool,
    /// `Some` when the snapshot was taken from a parked (faulted) gang
    /// lane or a parked machine: forking it reproduces lanes parked with
    /// this exact error, and [`Checkpoint::boot`] yields the machine
    /// frozen at the abort point (see [`GangMachine::checkpoint_lane`],
    /// [`Machine::fault`]).
    pub(crate) fault: Option<MachineError>,
}

impl Checkpoint {
    /// The program this snapshot was taken under.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Identity of the program this snapshot is keyed to
    /// ([`CompiledProgram::identity`]).
    pub fn identity(&self) -> u64 {
        self.program.identity()
    }

    /// Vcycles the run had completed when the snapshot was taken.
    pub fn vcycles(&self) -> u64 {
        self.counters.vcycles
    }

    /// The error a parked gang lane was carrying when it was snapshotted,
    /// if any. Forking a faulted checkpoint produces lanes that are
    /// already parked with this exact error.
    pub fn fault(&self) -> Option<&MachineError> {
        self.fault.as_ref()
    }

    /// Boots a standalone [`Machine`] from this snapshot: fresh scratch
    /// buffers, everything else an exact copy of the captured state
    /// (including engine knobs), sharing the compiled program. If the
    /// snapshot came from a faulted lane or a parked machine, the boot is
    /// the state frozen at the abort point, still parked with the
    /// recorded fault ([`Machine::fault`]).
    pub fn boot(&self) -> Machine {
        Machine {
            program: Arc::clone(&self.program),
            cores: self.cores.clone(),
            regs: self.regs.clone(),
            scratch: self.scratch.clone(),
            noc: self.noc.clone(),
            cache: self.cache.clone(),
            compute_time: self.compute_time,
            counters: self.counters,
            strict_hazards: self.strict_hazards,
            finish_requested: self.finish_requested,
            events: self.events.clone(),
            exec_mode: self.exec_mode,
            replay_enabled: self.replay_enabled,
            replay_engine: self.replay_engine,
            tape_invalidated: self.tape_invalidated,
            send_buf: Vec::new(),
            send_vals_buf: Vec::new(),
            due_buf: Vec::new(),
            fault: self.fault.clone(),
            // Host-side run control is not part of a snapshot.
            control: None,
        }
    }

    /// Explodes this snapshot into a `lanes`-wide [`GangMachine`] of
    /// initially identical children. Diverge them with per-lane
    /// [`GangMachine::poke_reg`] stimulus before resuming; the gang enters
    /// the lockstep replay path directly (the checkpoint's completed
    /// validation carries over with its Vcycle count).
    ///
    /// # Errors
    ///
    /// [`MachineError::ForkWidth`] when `lanes` is zero or exceeds
    /// [`crate::MAX_LANES`].
    pub fn fork(&self, lanes: usize) -> Result<GangMachine, MachineError> {
        GangMachine::from_checkpoint(self, lanes)
    }
}

impl Machine {
    /// Takes a [`Checkpoint`] of this run. Must be called at a Vcycle
    /// boundary (anywhere the host can observe the machine — i.e. between
    /// [`Machine::run_vcycles`] calls — is one).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            program: Arc::clone(&self.program),
            cores: self.cores.clone(),
            regs: self.regs.clone(),
            scratch: self.scratch.clone(),
            noc: self.noc.clone(),
            cache: self.cache.clone(),
            compute_time: self.compute_time,
            counters: self.counters,
            strict_hazards: self.strict_hazards,
            finish_requested: self.finish_requested,
            events: self.events.clone(),
            exec_mode: self.exec_mode,
            replay_enabled: self.replay_enabled,
            replay_engine: self.replay_engine,
            tape_invalidated: self.tape_invalidated,
            fault: self.fault.clone(),
        }
    }

    /// Restores this machine to a previously captured snapshot, engine
    /// knobs included. The machine must be running the same
    /// [`CompiledProgram`] the snapshot was taken under.
    ///
    /// # Errors
    ///
    /// [`MachineError::CheckpointMismatch`] when the program identities
    /// differ; the machine's state is left completely untouched in that
    /// case.
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), MachineError> {
        if self.program.identity() != cp.identity() {
            return Err(MachineError::CheckpointMismatch {
                expected: cp.identity(),
                got: self.program.identity(),
            });
        }
        self.cores.clone_from(&cp.cores);
        self.regs.clone_from(&cp.regs);
        self.scratch.clone_from(&cp.scratch);
        self.noc = cp.noc.clone();
        self.cache = cp.cache.clone();
        self.compute_time = cp.compute_time;
        self.counters = cp.counters;
        self.strict_hazards = cp.strict_hazards;
        self.finish_requested = cp.finish_requested;
        self.events.clone_from(&cp.events);
        self.exec_mode = cp.exec_mode;
        self.replay_enabled = cp.replay_enabled;
        self.replay_engine = cp.replay_engine;
        self.tape_invalidated = cp.tape_invalidated;
        self.send_buf.clear();
        self.send_vals_buf.clear();
        self.due_buf.clear();
        // The fault is part of the restored state (rewinding to a clean
        // snapshot un-parks a faulted machine); run control is not.
        self.fault = cp.fault.clone();
        Ok(())
    }

    /// [`Machine::checkpoint`] + [`Checkpoint::fork`] in one step: explodes
    /// the current state into a `lanes`-wide [`GangMachine`] of divergent
    /// children without disturbing this machine.
    ///
    /// # Errors
    ///
    /// [`MachineError::ForkWidth`] when `lanes` is zero or exceeds
    /// [`crate::MAX_LANES`].
    pub fn fork(&self, lanes: usize) -> Result<GangMachine, MachineError> {
        self.checkpoint().fork(lanes)
    }
}
