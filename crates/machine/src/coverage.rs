//! Toggle / assert / display coverage maps for coverage-guided scenario
//! exploration.
//!
//! A [`CoverageMap`] tracks, per register word of every core, which bits
//! have been observed both set *and* clear across the states fed to it —
//! classic RTL toggle coverage, evaluated on the architectural (flushed)
//! register view at Vcycle boundaries — plus running counts of `$display`
//! lines and assertion failures the explored scenarios produced.
//!
//! Deliberate design note: the map lives *outside* [`PerfCounters`].
//! The counters are a `Copy` value compared and merged on hot paths
//! (every engine bumps them per Vcycle; equivalence suites compare them
//! bit-for-bit), so growing them by two `Vec`s per map would both break
//! `Copy` and tax the replay loops the bench gates pin within ±25%.
//! Coverage is instead observed only at scenario-tree boundaries
//! ([`CoverageMap::observe`] walks the register file once per finished
//! child), which costs nothing inside a Vcycle.

use manticore_isa::{CoreId, Reg};

use crate::grid::Machine;
use crate::program::CompiledProgram;

/// Per-core toggle coverage over the full register file, with assert and
/// display tallies. Indexed flat like the machine's SoA register file:
/// `regfile_size` consecutive words per core, linear core order.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    /// Bits of each register word ever observed set.
    seen_set: Vec<u16>,
    /// Bits of each register word ever observed clear.
    seen_clear: Vec<u16>,
    regfile_size: usize,
    grid_width: usize,
    /// `$display` lines the observed scenarios produced.
    pub displays: u64,
    /// Assertion failures the observed scenarios produced.
    pub asserts: u64,
}

impl CoverageMap {
    /// An empty map sized for `program`'s grid and register file.
    pub fn for_program(program: &CompiledProgram) -> CoverageMap {
        let words = program.num_cores() * program.config().regfile_size;
        CoverageMap {
            seen_set: vec![0; words],
            seen_clear: vec![0; words],
            regfile_size: program.config().regfile_size,
            grid_width: program.config().grid_width,
            displays: 0,
            asserts: 0,
        }
    }

    /// Folds one machine's architectural state (the flushed host view at
    /// a Vcycle boundary) into the map. Returns the number of bits that
    /// became toggle-covered — seen both set and clear for the first
    /// time — which is the score exploration drivers (`Fleet::explore` in
    /// `manticore-fleet`) use to prioritize children.
    pub fn observe(&mut self, machine: &Machine) -> u64 {
        let rf = self.regfile_size;
        let gw = self.grid_width;
        let mut newly = 0u64;
        for i in 0..self.seen_set.len() {
            let core = i / rf;
            let core_id = CoreId::new((core % gw) as u8, (core / gw) as u8);
            let v = machine.read_reg(core_id, Reg((i % rf) as u16));
            let set = &mut self.seen_set[i];
            let clear = &mut self.seen_clear[i];
            let before = (*set & *clear).count_ones();
            *set |= v;
            *clear |= !v;
            newly += u64::from((*set & *clear).count_ones() - before);
        }
        newly
    }

    /// Adds display/assert tallies from one scenario's outcome.
    pub fn record_events(&mut self, displays: u64, asserts: u64) {
        self.displays += displays;
        self.asserts += asserts;
    }

    /// Total toggle-covered bits (seen both set and clear) over the grid.
    pub fn covered_bits(&self) -> u64 {
        self.seen_set
            .iter()
            .zip(&self.seen_clear)
            .map(|(s, c)| u64::from((s & c).count_ones()))
            .sum()
    }

    /// Toggle-covered bits of one core's register file (linear core
    /// index), the per-core view of the map.
    pub fn core_covered_bits(&self, core: usize) -> u64 {
        let rf = self.regfile_size;
        self.seen_set[core * rf..(core + 1) * rf]
            .iter()
            .zip(&self.seen_clear[core * rf..(core + 1) * rf])
            .map(|(s, c)| u64::from((s & c).count_ones()))
            .sum()
    }

    /// Merges another map (same program geometry) into this one.
    pub fn merge_from(&mut self, other: &CoverageMap) {
        debug_assert_eq!(self.seen_set.len(), other.seen_set.len());
        for (s, o) in self.seen_set.iter_mut().zip(&other.seen_set) {
            *s |= o;
        }
        for (c, o) in self.seen_clear.iter_mut().zip(&other.seen_clear) {
            *c |= o;
        }
        self.displays += other.displays;
        self.asserts += other.asserts;
    }
}
