//! Durable checkpoints: a versioned, checksummed byte encoding of
//! [`Checkpoint`].
//!
//! In-memory checkpoints are keyed to a [`CompiledProgram`] by its
//! process-unique identity, which cannot survive a restart. The durable
//! form therefore stores no identity at all; instead it records the
//! *structural shape* the snapshot was taken under (grid geometry,
//! register-file and scratchpad sizes, Vcycle length, per-core epilogue
//! lengths), and [`load_checkpoint`] re-keys the decoded state to a
//! caller-supplied program after verifying the shapes match. The caller is
//! responsible for recompiling the same design — the compiler's
//! determinism suite guarantees a recompile is byte-identical, and the
//! serving layer keys its on-disk sessions by netlist hash so it always
//! recompiles the right one.
//!
//! The format is fixed-width little-endian with a magic/version header and
//! an FNV-1a checksum trailer over everything before it. Decoding is
//! fail-safe against arbitrary bytes: every length is validated against
//! the program's shape before use, every tag byte is range-checked, and no
//! allocation is sized from an unvalidated count — a truncated, corrupted,
//! or adversarial file yields a typed [`PersistError`], never a panic or
//! an absurd allocation.

use std::hash::Hasher;
use std::sync::Arc;

use manticore_isa::{CoreId, Reg};
use manticore_util::FnvHasher;

use crate::cache::{Cache, CacheStats, Line};
use crate::checkpoint::Checkpoint;
use crate::core::{CoreState, PendingWrite};
use crate::grid::{ExecMode, HostEvent, MachineError, PerfCounters, ReplayEngine};
use crate::noc::{LinkId, Message, Noc};
use crate::program::CompiledProgram;

/// File magic: "MCKP" (Manticore ChecKPoint).
const MAGIC: [u8; 4] = *b"MCKP";
/// Current format version.
const VERSION: u32 = 1;

/// Why a durable checkpoint failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The magic bytes are not a checkpoint's.
    BadMagic,
    /// The format version is not one this build reads.
    BadVersion {
        /// Version found in the header.
        got: u32,
    },
    /// The checksum trailer does not match the content — the file was
    /// corrupted at rest or in transit.
    BadChecksum,
    /// The snapshot was taken under a program with a different structural
    /// shape than the one supplied for rebinding.
    ProgramMismatch {
        /// Which shape field disagreed.
        detail: String,
    },
    /// The stream is well-framed but semantically invalid (bad tag byte,
    /// out-of-range index, impossible length).
    Corrupt {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "checkpoint truncated"),
            PersistError::BadMagic => write!(f, "not a checkpoint file"),
            PersistError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported checkpoint version {got} (expected {VERSION})"
                )
            }
            PersistError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
            PersistError::ProgramMismatch { detail } => {
                write!(f, "checkpoint belongs to a different program: {detail}")
            }
            PersistError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::default();
    h.write(bytes);
    h.finish()
}

fn corrupt(detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Primitive writers/readers: fixed-width little-endian.

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn core_id(&mut self, c: CoreId) {
        self.u8(c.x);
        self.u8(c.y);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("bad bool byte {b}"))),
        }
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("count exceeds usize"))
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }
    fn core_id(&mut self) -> Result<CoreId, PersistError> {
        let x = self.u8()?;
        let y = self.u8()?;
        Ok(CoreId { x, y })
    }
}

// ---------------------------------------------------------------------------
// Enum encodings.

fn write_error(w: &mut Writer, e: &MachineError) {
    match e {
        MachineError::Load(m) => {
            w.u8(0);
            w.str(m);
        }
        MachineError::Hazard {
            core,
            position,
            reg,
        } => {
            w.u8(1);
            w.core_id(*core);
            w.u64(*position);
            w.u16(reg.0);
        }
        MachineError::LinkCollision { link, position } => {
            w.u8(2);
            w.str(link);
            w.u64(*position);
        }
        MachineError::LateMessage { core, slot } => {
            w.u8(3);
            w.core_id(*core);
            w.usize(*slot);
        }
        MachineError::EpilogueOverflow { core } => {
            w.u8(4);
            w.core_id(*core);
        }
        MachineError::MissingMessages {
            core,
            got,
            expected,
        } => {
            w.u8(5);
            w.core_id(*core);
            w.usize(*got);
            w.usize(*expected);
        }
        MachineError::MissingScheduledMessage {
            core,
            slot,
            position,
        } => {
            w.u8(6);
            w.core_id(*core);
            w.usize(*slot);
            w.u64(*position);
        }
        MachineError::NotPrivileged { core } => {
            w.u8(7);
            w.core_id(*core);
        }
        MachineError::AssertFailed { message, vcycle } => {
            w.u8(8);
            w.str(message);
            w.u64(*vcycle);
        }
        MachineError::UnknownException { eid } => {
            w.u8(9);
            w.u16(*eid);
        }
        MachineError::CheckpointMismatch { expected, got } => {
            w.u8(10);
            w.u64(*expected);
            w.u64(*got);
        }
        MachineError::ForkWidth { requested } => {
            w.u8(11);
            w.usize(*requested);
        }
        MachineError::Injected { vcycle } => {
            w.u8(12);
            w.u64(*vcycle);
        }
        MachineError::WorkerPanic { message } => {
            w.u8(13);
            w.str(message);
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<MachineError, PersistError> {
    Ok(match r.u8()? {
        0 => MachineError::Load(r.str()?),
        1 => MachineError::Hazard {
            core: r.core_id()?,
            position: r.u64()?,
            reg: Reg(r.u16()?),
        },
        2 => MachineError::LinkCollision {
            link: r.str()?,
            position: r.u64()?,
        },
        3 => MachineError::LateMessage {
            core: r.core_id()?,
            slot: r.usize()?,
        },
        4 => MachineError::EpilogueOverflow { core: r.core_id()? },
        5 => MachineError::MissingMessages {
            core: r.core_id()?,
            got: r.usize()?,
            expected: r.usize()?,
        },
        6 => MachineError::MissingScheduledMessage {
            core: r.core_id()?,
            slot: r.usize()?,
            position: r.u64()?,
        },
        7 => MachineError::NotPrivileged { core: r.core_id()? },
        8 => MachineError::AssertFailed {
            message: r.str()?,
            vcycle: r.u64()?,
        },
        9 => MachineError::UnknownException { eid: r.u16()? },
        10 => MachineError::CheckpointMismatch {
            expected: r.u64()?,
            got: r.u64()?,
        },
        11 => MachineError::ForkWidth {
            requested: r.usize()?,
        },
        12 => MachineError::Injected { vcycle: r.u64()? },
        13 => MachineError::WorkerPanic { message: r.str()? },
        t => return Err(corrupt(format!("bad error tag {t}"))),
    })
}

fn link_tag(l: LinkId) -> (u8, CoreId) {
    match l {
        LinkId::XPlus(c) => (0, c),
        LinkId::YPlus(c) => (1, c),
        LinkId::Delivery(c) => (2, c),
    }
}

// ---------------------------------------------------------------------------
// Save.

/// Serializes a checkpoint into the durable format. The result is
/// self-contained except for the program, which must be recompiled and
/// supplied to [`load_checkpoint`].
pub fn save_checkpoint(cp: &Checkpoint) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);

    // Structural shape of the owning program, verified at load.
    let config = cp.program.config();
    w.u32(config.grid_width as u32);
    w.u32(config.grid_height as u32);
    w.u32(config.regfile_size as u32);
    w.u32(config.scratch_words as u32);
    w.u32(config.hazard_latency as u32);
    w.u64(cp.program.vcycle_len());
    w.u32(cp.cores.len() as u32);
    for cs in &cp.cores {
        w.u32(cs.epilogue.len() as u32);
    }

    // Per-core run state. The ring is written as its live entries in
    // FIFO order; capacity/head/mask are derived on load.
    for cs in &cp.cores {
        w.u32(cs.ring_len);
        for i in 0..cs.ring_len {
            let slot = ((cs.ring_head + i) & cs.ring_mask) as usize;
            let pw = cs.ring[slot];
            w.u64(pw.commit_at);
            w.u16(pw.reg);
            w.u16(pw.value);
            w.bool(pw.carry);
        }
        w.bool(cs.predicate);
        w.usize(cs.received);
        for slot in &cs.epilogue {
            match slot {
                None => w.u8(0),
                Some((reg, value)) => {
                    w.u8(1);
                    w.u16(reg.0);
                    w.u16(*value);
                }
            }
        }
        w.u64(cs.executed);
    }

    // SoA register file and scratchpad.
    for &word in &cp.regs {
        w.u32(word);
    }
    for &word in &cp.scratch {
        w.u16(word);
    }

    // NoC: reservations sorted (HashMap iteration order is not
    // deterministic; the durable form must be byte-stable for a given
    // state), then in-flight messages in injection order.
    let mut reservations: Vec<((LinkId, u64), CoreId)> =
        cp.noc.reservations.iter().map(|(k, v)| (*k, *v)).collect();
    reservations.sort_by_key(|((link, pos), _)| {
        let (tag, c) = link_tag(*link);
        (tag, c.x, c.y, *pos)
    });
    w.usize(reservations.len());
    for ((link, pos), owner) in reservations {
        let (tag, c) = link_tag(link);
        w.u8(tag);
        w.core_id(c);
        w.u64(pos);
        w.core_id(owner);
    }
    w.usize(cp.noc.in_flight.len());
    for m in &cp.noc.in_flight {
        w.core_id(m.target);
        w.u16(m.rd.0);
        w.u16(m.value);
        w.u64(m.arrive_at);
    }

    // Cache: lines, data, DRAM image (sorted for byte stability), stats.
    w.usize(cp.cache.lines.len());
    for line in &cp.cache.lines {
        w.u64(line.tag);
        w.bool(line.valid);
        w.bool(line.dirty);
    }
    for &word in &cp.cache.data {
        w.u16(word);
    }
    let mut dram: Vec<(u64, u16)> = cp.cache.dram.iter().map(|(a, v)| (*a, *v)).collect();
    dram.sort_unstable_by_key(|&(a, _)| a);
    w.usize(dram.len());
    for (addr, value) in dram {
        w.u64(addr);
        w.u16(value);
    }
    let stats = cp.cache.stats;
    w.u64(stats.hits);
    w.u64(stats.misses);
    w.u64(stats.writebacks);

    // Clock, counters, flags.
    w.u64(cp.compute_time);
    w.u64(cp.counters.compute_cycles);
    w.u64(cp.counters.stall_cycles);
    w.u64(cp.counters.vcycles);
    w.u64(cp.counters.instructions);
    w.u64(cp.counters.sends);
    w.u64(cp.counters.messages_delivered);
    w.u64(cp.counters.exceptions);
    w.bool(cp.strict_hazards);
    w.bool(cp.finish_requested);

    // Pending host events.
    w.usize(cp.events.len());
    for ev in &cp.events {
        match ev {
            HostEvent::Display(s) => {
                w.u8(0);
                w.str(s);
            }
            HostEvent::Finish => w.u8(1),
        }
    }

    // Engine knobs.
    match cp.exec_mode {
        ExecMode::Serial => w.u8(0),
        ExecMode::Parallel { shards } => {
            w.u8(1);
            w.usize(shards);
        }
    }
    w.bool(cp.replay_enabled);
    w.u8(match cp.replay_engine {
        ReplayEngine::Tape => 0,
        ReplayEngine::MicroOps => 1,
    });
    w.bool(cp.tape_invalidated);

    // Fault.
    match &cp.fault {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            write_error(&mut w, e);
        }
    }

    let checksum = fnv64(&w.buf);
    w.u64(checksum);
    w.buf
}

// ---------------------------------------------------------------------------
// Load.

/// Deserializes a durable checkpoint and re-keys it to `program`, which
/// must be a recompile of the same design under the same configuration
/// (the structural shape recorded at save time is verified field by
/// field).
///
/// # Errors
///
/// [`PersistError`] on any framing, checksum, shape, or semantic
/// violation; arbitrary hostile bytes cannot panic or over-allocate.
pub fn load_checkpoint(
    bytes: &[u8],
    program: &Arc<CompiledProgram>,
) -> Result<Checkpoint, PersistError> {
    // Checksum trailer first: everything else assumes intact bytes.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(PersistError::Truncated);
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(trailer.try_into().unwrap());
    if fnv64(content) != want {
        return Err(PersistError::BadChecksum);
    }

    let mut r = Reader {
        buf: content,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(PersistError::BadVersion { got: version });
    }

    // Shape check against the supplied program.
    let config = program.config();
    let shape = |name: &str, stored: u64, actual: u64| -> Result<(), PersistError> {
        if stored != actual {
            return Err(PersistError::ProgramMismatch {
                detail: format!("{name}: snapshot has {stored}, program has {actual}"),
            });
        }
        Ok(())
    };
    let stored_gw = r.u32()? as u64;
    let stored_gh = r.u32()? as u64;
    let stored_rf = r.u32()? as u64;
    let stored_sw = r.u32()? as u64;
    let stored_hz = r.u32()? as u64;
    let stored_vl = r.u64()?;
    let stored_cores = r.u32()? as u64;
    shape("grid width", stored_gw, config.grid_width as u64)?;
    shape("grid height", stored_gh, config.grid_height as u64)?;
    shape("register file size", stored_rf, config.regfile_size as u64)?;
    shape("scratchpad words", stored_sw, config.scratch_words as u64)?;
    shape("hazard latency", stored_hz, config.hazard_latency as u64)?;
    shape("vcycle length", stored_vl, program.vcycle_len())?;
    shape("core count", stored_cores, program.num_cores() as u64)?;
    let num_cores = program.num_cores();
    let mut epilogue_lens = Vec::with_capacity(num_cores);
    for i in 0..num_cores {
        let stored = r.u32()? as usize;
        let actual = program.cores[i].epilogue_len;
        if stored != actual {
            return Err(PersistError::ProgramMismatch {
                detail: format!(
                    "core {i} epilogue length: snapshot has {stored}, program has {actual}"
                ),
            });
        }
        epilogue_lens.push(actual);
    }

    let regfile_size = config.regfile_size;
    let check_core = |c: CoreId| -> Result<CoreId, PersistError> {
        if (c.x as usize) < config.grid_width && (c.y as usize) < config.grid_height {
            Ok(c)
        } else {
            Err(corrupt(format!("core ({}, {}) outside the grid", c.x, c.y)))
        }
    };
    let check_reg = |reg: u16| -> Result<u16, PersistError> {
        if (reg as usize) < regfile_size {
            Ok(reg)
        } else {
            Err(corrupt(format!("register {reg} outside the register file")))
        }
    };

    // Per-core run state.
    let mut cores = Vec::with_capacity(num_cores);
    for (i, &epilogue_len) in epilogue_lens.iter().enumerate() {
        let mut cs = CoreState::new(regfile_size, config.hazard_latency, epilogue_len);
        let ring_len = r.u32()?;
        if ring_len as usize > cs.ring.len() {
            return Err(corrupt(format!(
                "core {i} ring has {ring_len} entries, capacity is {}",
                cs.ring.len()
            )));
        }
        for slot in 0..ring_len {
            let pw = PendingWrite {
                commit_at: r.u64()?,
                reg: check_reg(r.u16()?)?,
                value: r.u16()?,
                carry: r.bool()?,
            };
            cs.ring[slot as usize] = pw;
            cs.inflight[pw.reg as usize] += 1;
            cs.last_writer[pw.reg as usize] = slot;
        }
        cs.ring_head = 0;
        cs.ring_len = ring_len;
        cs.predicate = r.bool()?;
        let received = r.usize()?;
        if received > epilogue_len {
            return Err(corrupt(format!(
                "core {i} received {received} messages into a {epilogue_len}-slot epilogue"
            )));
        }
        for slot in cs.epilogue.iter_mut() {
            *slot = match r.u8()? {
                0 => None,
                1 => Some((Reg(check_reg(r.u16()?)?), r.u16()?)),
                t => return Err(corrupt(format!("bad epilogue tag {t}"))),
            };
        }
        cs.received = received;
        cs.executed = r.u64()?;
        cores.push(cs);
    }

    // SoA register file and scratchpad (fixed sizes from the shape).
    let mut regs = vec![0u32; num_cores * regfile_size];
    for word in regs.iter_mut() {
        *word = r.u32()?;
    }
    let mut scratch = vec![0u16; num_cores * config.scratch_words];
    for word in scratch.iter_mut() {
        *word = r.u16()?;
    }

    // NoC.
    let mut noc = Noc::new(config);
    let n_res = r.usize()?;
    for _ in 0..n_res {
        let tag = r.u8()?;
        let core = check_core(r.core_id()?)?;
        let link = match tag {
            0 => LinkId::XPlus(core),
            1 => LinkId::YPlus(core),
            2 => LinkId::Delivery(core),
            t => return Err(corrupt(format!("bad link tag {t}"))),
        };
        let pos = r.u64()?;
        let owner = check_core(r.core_id()?)?;
        noc.reservations.insert((link, pos), owner);
    }
    let n_flight = r.usize()?;
    for _ in 0..n_flight {
        noc.in_flight.push(Message {
            target: check_core(r.core_id()?)?,
            rd: Reg(check_reg(r.u16()?)?),
            value: r.u16()?,
            arrive_at: r.u64()?,
        });
    }

    // Cache.
    let mut cache = Cache::new(config.cache);
    let n_lines = r.usize()?;
    if n_lines != cache.lines.len() {
        return Err(corrupt(format!(
            "cache has {n_lines} lines, configuration has {}",
            cache.lines.len()
        )));
    }
    for line in cache.lines.iter_mut() {
        *line = Line {
            tag: r.u64()?,
            valid: r.bool()?,
            dirty: r.bool()?,
        };
    }
    for word in cache.data.iter_mut() {
        *word = r.u16()?;
    }
    let n_dram = r.usize()?;
    for _ in 0..n_dram {
        let addr = r.u64()?;
        let value = r.u16()?;
        cache.dram.insert(addr, value);
    }
    cache.stats = CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
        writebacks: r.u64()?,
    };

    // Clock, counters, flags.
    let compute_time = r.u64()?;
    let counters = PerfCounters {
        compute_cycles: r.u64()?,
        stall_cycles: r.u64()?,
        vcycles: r.u64()?,
        instructions: r.u64()?,
        sends: r.u64()?,
        messages_delivered: r.u64()?,
        exceptions: r.u64()?,
    };
    let strict_hazards = r.bool()?;
    let finish_requested = r.bool()?;

    let n_events = r.usize()?;
    let mut events = Vec::new();
    for _ in 0..n_events {
        events.push(match r.u8()? {
            0 => HostEvent::Display(r.str()?),
            1 => HostEvent::Finish,
            t => return Err(corrupt(format!("bad event tag {t}"))),
        });
    }

    let exec_mode = match r.u8()? {
        0 => ExecMode::Serial,
        1 => ExecMode::Parallel { shards: r.usize()? },
        t => return Err(corrupt(format!("bad exec-mode tag {t}"))),
    };
    let replay_enabled = r.bool()?;
    let replay_engine = match r.u8()? {
        0 => ReplayEngine::Tape,
        1 => ReplayEngine::MicroOps,
        t => return Err(corrupt(format!("bad replay-engine tag {t}"))),
    };
    let tape_invalidated = r.bool()?;

    let fault = match r.u8()? {
        0 => None,
        1 => Some(read_error(&mut r)?),
        t => return Err(corrupt(format!("bad fault tag {t}"))),
    };

    if r.pos != content.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the checkpoint",
            content.len() - r.pos
        )));
    }

    Ok(Checkpoint {
        program: Arc::clone(program),
        cores,
        regs,
        scratch,
        noc,
        cache,
        compute_time,
        counters,
        strict_hazards,
        finish_requested,
        events,
        exec_mode,
        replay_enabled,
        replay_engine,
        tape_invalidated,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full round-trip tests (save → load → bit-identical resume) need a
    // compiled program and live in `tests/serve_hardening.rs`; here we pin
    // the fail-safe paths that need no program.

    #[test]
    fn garbage_is_rejected_without_panicking() {
        let program_free_cases: &[&[u8]] = &[
            b"",
            b"MC",
            b"MCKP",
            b"not a checkpoint at all",
            &[0u8; 64],
            &[0xff; 4096],
        ];
        // A dummy program is still needed for the signature; build the
        // byte-level rejections that fire before any shape check.
        for case in program_free_cases {
            // Checksum/magic/truncation checks run before the program is
            // consulted, so a null-ish Arc is never dereferenced — but the
            // API takes a real one, so these cases are exercised through
            // the workspace round-trip test too. Here, verify the framing
            // guards directly.
            let r = frame_check(case);
            assert!(r.is_err(), "{case:?} must be rejected");
        }
    }

    /// The framing-only prefix of `load_checkpoint`, for tests that have
    /// no compiled program to rebind to.
    fn frame_check(bytes: &[u8]) -> Result<(), PersistError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(PersistError::Truncated);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let want = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv64(content) != want {
            return Err(PersistError::BadChecksum);
        }
        let mut r = Reader {
            buf: content,
            pos: 0,
        };
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        Ok(())
    }

    #[test]
    fn single_bit_flip_fails_the_checksum() {
        // A synthetic well-framed stream: magic + version + padding, with
        // a valid trailer; flipping any one bit must trip the checksum.
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u64(0xdead_beef);
        let sum = fnv64(&w.buf);
        w.u64(sum);
        let good = w.buf;
        assert!(frame_check(&good).is_ok());
        for byte in 0..good.len() - 8 {
            let mut bad = good.clone();
            bad[byte] ^= 1;
            assert_eq!(frame_check(&bad), Err(PersistError::BadChecksum));
        }
    }
}
