//! Gang execution: lane-batched lockstep replay of K scenarios per
//! micro-op fetch.
//!
//! Manticore's compute domain has no data-dependent control flow: every
//! run of one compiled program executes the exact same instruction at the
//! exact same Vcycle position — only the *data* differs between runs. The
//! fleet engine exploits that at job granularity (K scenarios share one
//! frozen [`CompiledProgram`]), but each scenario still pays a full
//! micro-op dispatch loop of its own: fetch the op, match on its kind,
//! branch on the ALU function — K times over for K scenarios.
//!
//! A [`GangMachine`] collapses that cost. It runs K independent scenarios
//! (*lanes*) of one shared program in lockstep, with the hot mutable state
//! laid out **lane-major**: one grid-wide `Vec<u32>` register file where
//! the word for `(core, reg, lane)` lives at
//! `(core * regfile_size + reg) * lanes + lane` — all K copies of a
//! register are adjacent (`[lane0_r0, lane1_r0, .., lane0_r1, ..]`). Each
//! micro-op of the fused stream ([`crate::uops`]) is then fetched and
//! decoded **once** — including the ALU-function dispatch, hoisted out of
//! the lane loop so the innermost loop is branch-free for the common ops —
//! and applied across all K lanes over a contiguous slab. Dispatch cost
//! per scenario drops by ~K while the data cost stays what it was.
//!
//! **Two phases.** Lanes start as plain solo [`Machine`]s (contiguous
//! per-run state): the validation Vcycle, the tape lowering, unreplayable
//! programs, and disabled replay all execute there, through the one true
//! serial engine ([`Machine::step_vcycle`]) with zero copying. The first
//! time the ganged fast path becomes eligible (micro-op lowering, past
//! validation), the register files are transposed once into the
//! lane-major layout as single sequential passes. The solo machines stay
//! around as *shells*: they keep owning each lane's NoC, cache, counters,
//! host events, and scratchpad (scratch accesses are data-dependent
//! per-lane gathers a lane stride cannot batch, so transposing megabytes
//! of mostly-cold scratch would only burn the short-run budgets gangs
//! accelerate), so falling back to the solo engine after a knob change
//! and unbundling the gang at the end allocate nothing.
//!
//! What is shared and what is per-lane:
//!
//! - **shared**: the program (body, tape, micro-op streams, delivery
//!   schedule), the hazard/replay knobs, and the lockstep clock. NoC
//!   delivery follows the shared frozen tape, so lanes can never diverge
//!   in *when* or *where* a message lands — only its value differs.
//! - **per-lane**: register/scratchpad values, pipeline rings and
//!   predicates ([`CoreState`]), the privileged core's cache and DRAM,
//!   performance counters, host events, and the error/finish status.
//!
//! **Lane masking.** The only data-dependent outcomes are the privileged
//! core's `Expect`s (assertion failures, `$display`, `$finish`) and cache
//! stalls. A lane whose run faults is *parked*: its [`MachineError`] is
//! recorded at its Vcycle, its state and counters freeze exactly where a
//! solo run would have aborted, and the surviving lanes keep executing.
//! `$finish` parks a lane the same way, successfully.
//!
//! **Bit-identity.** The equivalence suite (`tests/gang_equivalence.rs`)
//! pins the ganged path to K solo runs bit for bit: registers, counters,
//! displays, and errors — across lane counts, replay lowerings, and
//! hazard strictness.

use std::sync::Arc;

use manticore_isa::{AluOp, CoreId, ExceptionDescriptor, Reg};

use crate::checkpoint::Checkpoint;
use crate::core::CoreState;
use crate::exec::service_exception;
use crate::grid::{
    HostEvent, Interrupt, Machine, MachineError, PerfCounters, ReplayEngine, RunOutcome,
};
use crate::program::{CompiledProgram, CoreProgram};
use crate::uops::{MicroOp, UOp};

/// What a lane is currently doing.
#[derive(Debug, Clone)]
enum LaneStatus {
    /// Executing in lockstep with the other running lanes.
    Running,
    /// `$finish` fired; the lane's final state is readable.
    Finished,
    /// The run aborted with this error; the lane's state and counters are
    /// frozen exactly where a solo run would have stopped.
    Faulted(MachineError),
}

/// The lane-major half of a gang that has left the solo phase. See the
/// module docs for the layout and the shell arrangement.
#[derive(Debug)]
struct GangState {
    /// Lane-major SoA register file: `(core * regfile_size + reg) * lanes
    /// + lane`. Low 16 bits value, bit 16 the carry bit, as in
    /// [`Machine`].
    regs: Vec<u32>,
    /// Per-core per-lane run state (pipeline ring, predicate, epilogue
    /// slots): `core * lanes + lane`.
    cores: Vec<CoreState>,
    /// One solo machine shell per lane. Live through the ganged phase:
    /// NoC, cache, counters, compute time, host events, and the
    /// **scratchpad** (the ganged loop updates them all in place — the
    /// scratchpad stays per-lane-contiguous because its accesses are
    /// data-dependent per-lane gathers that a lane stride cannot batch,
    /// and transposing megabytes of mostly-cold scratch would dominate
    /// short gang runs). The shells' `regs` arrays hold stale copies that
    /// double as allocation-free staging for the solo fallback and for
    /// [`GangMachine::into_machines`]; their `cores` vectors are empty
    /// (the states live lane-major above).
    shells: Vec<Machine>,
}

/// Where the per-lane state currently lives.
#[derive(Debug)]
enum LaneState {
    /// Pre-gang phase: each lane is a plain solo machine. Cheap to boot,
    /// and every non-ganged engine path runs here copy-free.
    Solo(Vec<Machine>),
    /// Lane-major phase: the ganged inner loop owns the hot state.
    Ganged(Box<GangState>),
}

/// The most lanes one gang can hold. Past this width the lane-major
/// working set stops paying for itself (and the fleet's `run_ganged`
/// simply opens another gang), so wider requests clamp here.
pub const MAX_LANES: usize = 64;

/// K independent runs of one shared [`CompiledProgram`], executed in
/// lockstep. See the module docs for the layout, the two phases, and the
/// bit-identity contract.
#[derive(Debug)]
pub struct GangMachine {
    program: Arc<CompiledProgram>,
    lanes: usize,
    state: LaneState,
    lane_status: Vec<LaneStatus>,
    strict_hazards: bool,
    replay_enabled: bool,
    replay_engine: ReplayEngine,
    tape_invalidated: bool,
    /// Cooperative cancellation, polled between lockstep Vcycles —
    /// [`Machine::set_cancel_token`] for the whole gang.
    cancel: Option<manticore_util::CancelToken>,
    /// Wall-clock deadline, polled between lockstep Vcycles.
    deadline: Option<std::time::Instant>,
    // ---- reusable buffers: nothing below allocates per Vcycle ----
    /// Lanes running in the current ganged Vcycle; shrinks when a lane
    /// faults mid-Vcycle.
    vc_active: Vec<u32>,
    /// This Vcycle's send values, lane-major: `send_idx * lanes + lane`.
    send_vals: Vec<u16>,
}

impl GangMachine {
    /// Boots `lanes` fresh runs of an already-frozen program (clamped to
    /// `1..=`[`MAX_LANES`]). Like [`Machine::from_program`] this is
    /// infallible allocation-only work: every lane starts from the
    /// program's initial register/scratchpad/DRAM images.
    pub fn from_program(program: Arc<CompiledProgram>, lanes: usize) -> GangMachine {
        let lanes = lanes.clamp(1, MAX_LANES);
        let machines = (0..lanes)
            .map(|_| Machine::from_program(Arc::clone(&program)))
            .collect();
        GangMachine {
            lanes,
            state: LaneState::Solo(machines),
            lane_status: vec![LaneStatus::Running; lanes],
            strict_hazards: true,
            replay_enabled: true,
            replay_engine: ReplayEngine::MicroOps,
            tape_invalidated: false,
            cancel: None,
            deadline: None,
            vc_active: Vec::with_capacity(lanes),
            send_vals: Vec::new(),
            program,
        }
    }

    /// Explodes a [`Checkpoint`] into a `lanes`-wide gang of initially
    /// identical children — the scenario-tree fork ([`Checkpoint::fork`]
    /// delegates here). Every lane resumes from the snapshot's exact state
    /// with the snapshot's engine knobs; a checkpoint taken from a faulted
    /// lane yields lanes already parked with that same error, and one from
    /// a finished run yields finished lanes.
    ///
    /// # Errors
    ///
    /// [`MachineError::ForkWidth`] when `lanes` is zero or exceeds
    /// [`MAX_LANES`] — a fork is an explicit tree edge, so unlike
    /// [`GangMachine::from_program`] nothing is clamped.
    pub fn from_checkpoint(cp: &Checkpoint, lanes: usize) -> Result<GangMachine, MachineError> {
        if lanes == 0 || lanes > MAX_LANES {
            return Err(MachineError::ForkWidth { requested: lanes });
        }
        let machines: Vec<Machine> = (0..lanes).map(|_| cp.boot()).collect();
        let status = match cp.fault() {
            Some(e) => LaneStatus::Faulted(e.clone()),
            None if cp.finish_requested => LaneStatus::Finished,
            None => LaneStatus::Running,
        };
        Ok(GangMachine {
            lanes,
            state: LaneState::Solo(machines),
            lane_status: vec![status; lanes],
            strict_hazards: cp.strict_hazards,
            replay_enabled: cp.replay_enabled,
            replay_engine: cp.replay_engine,
            tape_invalidated: cp.tape_invalidated,
            cancel: None,
            deadline: None,
            vc_active: Vec::with_capacity(lanes),
            send_vals: Vec::new(),
            program: Arc::clone(&cp.program),
        })
    }

    /// The number of lanes (independent scenarios) in this gang.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared compile-once artifact every lane executes.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// The machine configuration.
    pub fn config(&self) -> &manticore_isa::MachineConfig {
        &self.program.config
    }

    /// Machine cycles per Vcycle (the compiler's VCPL).
    pub fn vcycle_len(&self) -> u64 {
        self.program.vcycle_len
    }

    /// Gang-wide hazard strictness; same invalidation semantics as
    /// [`Machine::set_strict_hazards`].
    pub fn set_strict_hazards(&mut self, strict: bool) {
        if strict && !self.strict_hazards {
            self.tape_invalidated = true;
        }
        self.strict_hazards = strict;
        if let LaneState::Solo(machines) = &mut self.state {
            for m in machines {
                m.set_strict_hazards(strict);
            }
        }
    }

    /// Gang-wide replay enable; see [`Machine::set_replay`].
    pub fn set_replay(&mut self, enabled: bool) {
        self.replay_enabled = enabled;
        if let LaneState::Solo(machines) = &mut self.state {
            for m in machines {
                m.set_replay(enabled);
            }
        }
    }

    /// Gang-wide replay lowering; the ganged inner loop exists for
    /// [`ReplayEngine::MicroOps`], everything else runs lane-at-a-time
    /// through the solo engine.
    pub fn set_replay_engine(&mut self, engine: ReplayEngine) {
        self.replay_engine = engine;
        if let LaneState::Solo(machines) = &mut self.state {
            for m in machines {
                m.set_replay_engine(engine);
            }
        }
    }

    /// The currently selected replay lowering.
    pub fn replay_engine(&self) -> ReplayEngine {
        self.replay_engine
    }

    /// Installs (or clears) the cooperative cancellation token the gang
    /// polls between lockstep Vcycles — [`Machine::set_cancel_token`] for
    /// the whole gang.
    pub fn set_cancel_token(&mut self, token: Option<manticore_util::CancelToken>) {
        self.cancel = token;
    }

    /// Installs (or clears) the wall-clock deadline the gang polls between
    /// lockstep Vcycles — [`Machine::set_deadline`] for the whole gang.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Parks one running lane with an error, exactly as if the lane had
    /// faulted on its own: subsequent [`GangMachine::run_vcycles`] calls
    /// report the error without executing the lane, and the survivors keep
    /// running. Finished or already-faulted lanes are left untouched. This
    /// is the fleet's fault-injection hook.
    pub fn park_lane(&mut self, lane: usize, err: MachineError) {
        // At a Vcycle boundary no ganged bookkeeping is needed: the inner
        // loop recomputes `vc_active` from `lane_status` every Vcycle.
        if matches!(self.lane_status[lane], LaneStatus::Running) {
            self.lane_status[lane] = LaneStatus::Faulted(err);
        }
    }

    /// Splices `$display` lines back onto the front of a lane's pending
    /// event queue — the per-lane [`Machine::requeue_displays`], used by
    /// the fleet when a sliced run accumulates displays before a fault.
    pub fn requeue_displays(&mut self, lane: usize, displays: Vec<String>) {
        if displays.is_empty() {
            return;
        }
        self.lane_events_mut(lane)
            .splice(0..0, displays.into_iter().map(HostEvent::Display));
    }

    /// True when replay is enabled and a frozen tape exists — mirrors
    /// [`Machine::replay_armed`] for backend naming.
    pub fn replay_armed(&self) -> bool {
        self.replay_enabled && !self.tape_invalidated && self.program.replay_tape.is_some()
    }

    /// Overwrites one lane's architectural register — the per-lane input
    /// vector, exactly [`Machine::poke_reg`] scoped to a lane.
    pub fn poke_reg(&mut self, lane: usize, core: CoreId, reg: Reg, value: u16) {
        match &mut self.state {
            LaneState::Solo(machines) => machines[lane].poke_reg(core, reg, value),
            LaneState::Ganged(gs) => {
                let config = &self.program.config;
                let idx = core.linear(config.grid_width);
                gs.regs[(idx * config.regfile_size + reg.index()) * self.lanes + lane] =
                    value as u32;
                // Same pending-write override as the solo path: a resumed
                // lane may carry a write to this register across the
                // Vcycle boundary in its pipeline ring.
                gs.cores[idx * self.lanes + lane].override_pending(reg.0, value);
            }
        }
    }

    /// Reads a register of one lane as the host sees it at a Vcycle
    /// boundary (in-flight writes applied) — [`Machine::read_reg`] per
    /// lane.
    pub fn read_reg(&self, lane: usize, core: CoreId, reg: Reg) -> u16 {
        match &self.state {
            LaneState::Solo(machines) => machines[lane].read_reg(core, reg),
            LaneState::Ganged(gs) => {
                let config = &self.program.config;
                let idx = core.linear(config.grid_width);
                let word = gs.regs[(idx * config.regfile_size + reg.index()) * self.lanes + lane];
                gs.cores[idx * self.lanes + lane].reg_value_flushed_word(word, reg.index())
            }
        }
    }

    /// Reads a scratchpad word of one lane.
    pub fn read_scratch(&self, lane: usize, core: CoreId, addr: usize) -> u16 {
        match &self.state {
            LaneState::Solo(machines) => machines[lane].read_scratch(core, addr),
            // The scratchpad lives in the shell through the ganged phase.
            LaneState::Ganged(gs) => gs.shells[lane].read_scratch(core, addr),
        }
    }

    /// Snapshots one lane as a [`Checkpoint`] — the frontier-harvesting
    /// half of a scenario tree: run a gang, checkpoint the interesting
    /// lanes, fork each again. The snapshot records the gang's current
    /// engine knobs, and a parked lane's fault travels with it
    /// ([`Checkpoint::fault`]), so forking a faulted frontier entry
    /// faithfully reproduces parked children.
    pub fn checkpoint_lane(&self, lane: usize) -> Checkpoint {
        let fault = match &self.lane_status[lane] {
            LaneStatus::Faulted(e) => Some(e.clone()),
            _ => None,
        };
        let finished = matches!(self.lane_status[lane], LaneStatus::Finished);
        let mut cp = match &self.state {
            LaneState::Solo(machines) => machines[lane].checkpoint(),
            LaneState::Ganged(gs) => {
                let n = self.program.cores.len();
                let rf = self.program.config.regfile_size;
                let lanes = self.lanes;
                let shell = &gs.shells[lane];
                // Gather the lane out of the lane-major arrays; everything
                // else (NoC, cache, counters, scratchpad, events) lives in
                // the shell, which the ganged loop keeps current.
                let mut regs = Vec::with_capacity(n * rf);
                for i in 0..n * rf {
                    regs.push(gs.regs[i * lanes + lane]);
                }
                let cores = (0..n).map(|c| gs.cores[c * lanes + lane].clone()).collect();
                Checkpoint {
                    program: Arc::clone(&self.program),
                    cores,
                    regs,
                    scratch: shell.scratch.clone(),
                    noc: shell.noc.clone(),
                    cache: shell.cache.clone(),
                    compute_time: shell.compute_time,
                    counters: shell.counters,
                    strict_hazards: self.strict_hazards,
                    finish_requested: false,
                    events: shell.events.clone(),
                    exec_mode: shell.exec_mode,
                    replay_enabled: self.replay_enabled,
                    replay_engine: self.replay_engine,
                    tape_invalidated: self.tape_invalidated,
                    fault: None,
                }
            }
        };
        // Solo-phase machines may carry stale per-lane knobs; the gang's
        // current settings are authoritative (`into_machines` applies the
        // same rule), and the lane's park status travels with the
        // snapshot.
        cp.strict_hazards = self.strict_hazards;
        cp.replay_enabled = self.replay_enabled;
        cp.replay_engine = self.replay_engine;
        cp.tape_invalidated = self.tape_invalidated;
        cp.finish_requested = finished || cp.finish_requested;
        cp.fault = fault;
        cp
    }

    /// One lane's performance counters (frozen at its fault or finish).
    pub fn counters(&self, lane: usize) -> PerfCounters {
        match &self.state {
            LaneState::Solo(machines) => machines[lane].counters(),
            LaneState::Ganged(gs) => gs.shells[lane].counters,
        }
    }

    /// Drains `$display` lines a lane queued before a failure — the
    /// per-lane [`Machine::drain_pending_displays`].
    pub fn drain_pending_displays(&mut self, lane: usize) -> Vec<String> {
        self.lane_events_mut(lane)
            .drain(..)
            .filter_map(|ev| match ev {
                HostEvent::Display(s) => Some(s),
                HostEvent::Finish => None,
            })
            .collect()
    }

    fn lane_events_mut(&mut self, lane: usize) -> &mut Vec<HostEvent> {
        match &mut self.state {
            LaneState::Solo(machines) => &mut machines[lane].events,
            LaneState::Ganged(gs) => &mut gs.shells[lane].events,
        }
    }

    /// Runs up to `max_vcycles` Vcycles on every running lane, in
    /// lockstep, and returns one [`Machine::run_vcycles`]-shaped result
    /// per lane.
    ///
    /// A lane that faulted in an earlier call keeps returning its recorded
    /// error (with no further execution); a lane that finished returns an
    /// empty outcome, like a solo machine whose `$finish` already fired.
    pub fn run_vcycles(&mut self, max_vcycles: u64) -> Vec<Result<RunOutcome, MachineError>> {
        let lanes = self.lanes;
        let mut outcomes: Vec<RunOutcome> = (0..lanes).map(|_| RunOutcome::default()).collect();
        let mut errs: Vec<Option<MachineError>> = self
            .lane_status
            .iter()
            .map(|s| match s {
                LaneStatus::Faulted(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        for _ in 0..max_vcycles {
            if !self
                .lane_status
                .iter()
                .any(|s| matches!(s, LaneStatus::Running))
            {
                break;
            }
            // Cooperative interruption, polled at the lockstep Vcycle
            // boundary: every still-running lane reports the interrupt
            // (the gang advances as one, so they all stop together).
            let stop = if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                Some(Interrupt::Cancelled)
            } else if self
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                Some(Interrupt::Deadline)
            } else {
                None
            };
            if let Some(stop) = stop {
                for (l, s) in self.lane_status.iter().enumerate() {
                    if matches!(s, LaneStatus::Running) {
                        outcomes[l].interrupted = Some(stop);
                    }
                }
                break;
            }
            if self.gang_replay_ready() {
                if matches!(self.state, LaneState::Solo(_)) {
                    self.interleave();
                }
                self.run_one_vcycle_uops_gang();
            } else {
                // Validation Vcycle, tape lowering, unreplayable program,
                // disabled replay, or invalidated tape: step each lane
                // through the solo serial engine (one source of truth for
                // those paths). In the solo phase that is copy-free; after
                // the gang has interleaved it gathers/scatters the lane
                // through its shell.
                //
                // Trusted validation: everything the validation Vcycle
                // proves — link collisions, delivery timing, epilogue
                // accounting, strict-mode hazards — is a pure function of
                // the shared program, never of lane data. So once the
                // first lane's interpreted validation succeeds, the
                // sibling lanes run their first Vcycle on the micro-op
                // engine directly (when that is the selected lowering):
                // same architectural semantics, none of the interpreter's
                // per-position costs. A lane-data fault (a failing
                // `Expect`) on the proving lane merely withholds the
                // shortcut — the siblings then validate individually, so
                // no schedule fault can ever be skipped.
                let trusted_knobs = self.uops_knobs_ready();
                let mut proven = false;
                for l in 0..lanes {
                    if !matches!(self.lane_status[l], LaneStatus::Running) {
                        continue;
                    }
                    let res = match &mut self.state {
                        LaneState::Solo(machines) => {
                            let m = &mut machines[l];
                            if trusted_knobs && proven && m.counters().vcycles == 0 {
                                m.run_one_vcycle_uops()
                            } else {
                                let at_validation = m.counters().vcycles == 0;
                                let res = m.step_vcycle();
                                if res.is_ok() && at_validation {
                                    proven = true;
                                }
                                res
                            }
                        }
                        LaneState::Ganged(_) => self.step_lane_solo_ganged(l),
                    };
                    if let Err(e) = res {
                        self.lane_status[l] = LaneStatus::Faulted(e);
                    }
                }
            }
            // Vcycle boundary: count the step, drain host events, park
            // finished lanes, record fresh faults.
            for l in 0..lanes {
                match &self.lane_status[l] {
                    LaneStatus::Running => {
                        outcomes[l].vcycles_run += 1;
                        for ev in self.lane_events_mut(l).drain(..) {
                            match ev {
                                HostEvent::Display(s) => outcomes[l].displays.push(s),
                                HostEvent::Finish => outcomes[l].finished = true,
                            }
                        }
                        if outcomes[l].finished {
                            self.lane_status[l] = LaneStatus::Finished;
                        }
                    }
                    LaneStatus::Faulted(e) if errs[l].is_none() => {
                        errs[l] = Some(e.clone());
                        // Like `Machine::run_vcycles`, displays already
                        // drained into the doomed outcome stay available
                        // via `drain_pending_displays`.
                        let displays = std::mem::take(&mut outcomes[l].displays);
                        if !displays.is_empty() {
                            self.lane_events_mut(l)
                                .splice(0..0, displays.into_iter().map(HostEvent::Display));
                        }
                    }
                    _ => {}
                }
            }
        }
        errs.into_iter()
            .zip(outcomes)
            .map(|(err, outcome)| match err {
                Some(e) => Err(e),
                None => Ok(outcome),
            })
            .collect()
    }

    /// Unbundles the gang into one solo [`Machine`] per lane — final
    /// registers, counters, pending displays, and resumability all intact.
    /// This is how the fleet turns a finished gang back into ordinary
    /// per-job outputs. The ganged form transposes back into the retained
    /// shells (sequential streams, no allocation).
    pub fn into_machines(self) -> Vec<Machine> {
        let lanes = self.lanes;
        let n = self.program.cores.len();
        let mut machines: Vec<Machine> = match self.state {
            LaneState::Solo(machines) => machines,
            LaneState::Ganged(gs) => {
                let mut gs = *gs;
                for (i, chunk) in gs.regs.chunks_exact(lanes).enumerate() {
                    for (lane, &word) in chunk.iter().enumerate() {
                        gs.shells[lane].regs[i] = word;
                    }
                }
                let mut it = gs.cores.into_iter();
                for _c in 0..n {
                    for shell in gs.shells.iter_mut() {
                        shell.cores.push(it.next().expect("cores sized n*lanes"));
                    }
                }
                gs.shells
            }
        };
        for (lane, m) in machines.iter_mut().enumerate() {
            // Knobs may have changed after the shells were parked; the
            // unbundled machines must carry the gang's current settings.
            m.strict_hazards = self.strict_hazards;
            m.replay_enabled = self.replay_enabled;
            m.replay_engine = self.replay_engine;
            m.tape_invalidated = self.tape_invalidated;
            m.finish_requested = matches!(self.lane_status[lane], LaneStatus::Finished);
            // A parked lane unbundles into a parked machine carrying the
            // same fault ([`Machine::fault`]).
            m.fault = match &self.lane_status[lane] {
                LaneStatus::Faulted(e) => Some(e.clone()),
                _ => None,
            };
        }
        machines
    }

    /// True when the next Vcycle can run the ganged micro-op inner loop:
    /// replay armed, micro-op lowering selected, no strict cross-boundary
    /// hazard (which needs the tape engine's live checks), and the running
    /// lanes are past their validation Vcycle. Running lanes are in
    /// lockstep, so one lane's Vcycle count speaks for all.
    fn gang_replay_ready(&self) -> bool {
        if !self.uops_knobs_ready() {
            return false;
        }
        (0..self.lanes)
            .find(|&l| matches!(self.lane_status[l], LaneStatus::Running))
            .map(|l| self.counters(l).vcycles > 0)
            .unwrap_or(false)
    }

    /// True when the engine knobs select the ganged micro-op lowering:
    /// replay armed on the fused stream with no strict cross-boundary
    /// hazard (which needs the tape engine's live checks). The Vcycle
    /// precondition on top of this is [`GangMachine::gang_replay_ready`].
    fn uops_knobs_ready(&self) -> bool {
        if !self.replay_enabled
            || self.tape_invalidated
            || self.replay_engine != ReplayEngine::MicroOps
            || self.program.replay_tape.is_none()
        {
            return false;
        }
        !(self.strict_hazards
            && self
                .program
                .micro_prog
                .as_ref()
                .is_some_and(|p| p.cross_hazard))
    }

    /// Transposes the solo-phase machines' register files into the
    /// lane-major layout — single sequential passes, paid once, when the
    /// ganged fast path first engages. The machines stay behind as
    /// shells, which keep owning the scratchpads (deliberately never
    /// transposed; see the module docs and [`GangState::shells`]).
    fn interleave(&mut self) {
        let LaneState::Solo(machines) = &mut self.state else {
            return;
        };
        let mut machines = std::mem::take(machines);
        let lanes = self.lanes;
        let config = &self.program.config;
        let n = self.program.cores.len();
        let rf = config.regfile_size;

        let mut regs = Vec::with_capacity(n * rf * lanes);
        for i in 0..n * rf {
            for m in &machines {
                regs.push(m.regs[i]);
            }
        }
        let mut per_lane_cores: Vec<std::vec::IntoIter<CoreState>> = machines
            .iter_mut()
            .map(|m| std::mem::take(&mut m.cores).into_iter())
            .collect();
        let mut cores = Vec::with_capacity(n * lanes);
        for _c in 0..n {
            for it in per_lane_cores.iter_mut() {
                cores.push(it.next().expect("cores sized n"));
            }
        }
        self.state = LaneState::Ganged(Box::new(GangState {
            regs,
            cores,
            shells: machines,
        }));
    }

    /// Post-interleave solo fallback: gathers one lane into its shell,
    /// steps the shell one Vcycle on the solo engine, and scatters the
    /// state back into the lane-major arrays. Only reached when a knob
    /// change (e.g. switching to the tape lowering after ganged Vcycles
    /// ran) forces a ganged lane back onto the solo engine.
    fn step_lane_solo_ganged(&mut self, lane: usize) -> Result<(), MachineError> {
        let LaneState::Ganged(gs) = &mut self.state else {
            unreachable!("step_lane_solo_ganged is a ganged-phase operation")
        };
        let lanes = self.lanes;
        let n = self.program.cores.len();
        let shell = &mut gs.shells[lane];
        shell.strict_hazards = self.strict_hazards;
        shell.replay_enabled = self.replay_enabled;
        shell.replay_engine = self.replay_engine;
        shell.tape_invalidated = self.tape_invalidated;
        for (i, r) in shell.regs.iter_mut().enumerate() {
            *r = gs.regs[i * lanes + lane];
        }
        debug_assert!(shell.cores.is_empty());
        for c in 0..n {
            shell.cores.push(std::mem::replace(
                &mut gs.cores[c * lanes + lane],
                CoreState::new(0, 0, 0),
            ));
        }
        let res = shell.step_vcycle();
        for (i, &r) in shell.regs.iter().enumerate() {
            gs.regs[i * lanes + lane] = r;
        }
        for (c, cs) in shell.cores.drain(..).enumerate() {
            gs.cores[c * lanes + lane] = cs;
        }
        res
    }

    /// One ganged Vcycle on the fused micro-op stream: fetch/decode each
    /// op once, apply it across every running lane, then replay the frozen
    /// delivery schedule lane by lane. Phase structure and per-lane
    /// architectural effects mirror [`Machine`]'s `run_one_vcycle_uops`
    /// exactly — a lane that faults parks with the state and counters a
    /// solo run would have had at the same abort point.
    fn run_one_vcycle_uops_gang(&mut self) {
        let GangMachine {
            program,
            lanes,
            state,
            lane_status,
            strict_hazards,
            vc_active,
            send_vals,
            ..
        } = self;
        let LaneState::Ganged(gs) = state else {
            unreachable!("the ganged Vcycle runs after interleave()")
        };
        let lanes = *lanes;
        let config = &program.config;
        let rf = config.regfile_size;
        let sw = config.scratch_words;
        let lat = config.hazard_latency as u64;
        let vcycle_len = program.vcycle_len;
        let tape = program
            .replay_tape
            .as_ref()
            .expect("gang fast path checked the tape");
        let up = program
            .micro_prog
            .as_ref()
            .expect("micro program exists whenever the tape does");
        let direct = *strict_hazards;

        vc_active.clear();
        for (l, s) in lane_status.iter().enumerate() {
            if matches!(s, LaneStatus::Running) {
                vc_active.push(l as u32);
            }
        }
        let first = vc_active[0] as usize;
        let vstart = gs.shells[first].compute_time;
        let vcycle = gs.shells[first].counters.vcycles;

        send_vals.clear();
        send_vals.resize(tape.sends_per_vcycle * lanes, 0);

        // Body phase: one fetch/decode per micro-op, all lanes per op,
        // active cores only.
        let mut send_cursor = 0usize;
        for &ci in up.active.iter() {
            let c = ci as usize;
            let creg = &mut gs.regs[c * rf * lanes..(c + 1) * rf * lanes];
            let scr_base = c * sw;
            let cstates = &mut gs.cores[c * lanes..(c + 1) * lanes];
            let walk = if direct {
                gang_core_walk::<true>
            } else {
                gang_core_walk::<false>
            };
            walk(
                &program.exceptions,
                &program.cores[c],
                vcycle,
                lanes,
                sw,
                lat,
                vstart,
                creg,
                scr_base,
                cstates,
                &up.streams[c],
                &mut gs.shells,
                lane_status,
                vc_active,
                send_vals,
                &mut send_cursor,
            );
        }
        debug_assert_eq!(send_cursor, tape.sends_per_vcycle);

        if direct {
            // Strict mode: delivery and epilogue collapse into the
            // pre-resolved write list, once per lane.
            for &l in vc_active.iter() {
                gs.shells[l as usize].counters.messages_delivered += tape.deliveries.len() as u64;
            }
            let all = vc_active.len() == lanes;
            for e in &up.epi_prog {
                let base = (e.core as usize * rf + e.rd as usize) * lanes;
                let sv = e.send_idx as usize * lanes;
                if all {
                    for l in 0..lanes {
                        gs.regs[base + l] = send_vals[sv + l] as u32;
                    }
                } else {
                    for &l in vc_active.iter() {
                        let l = l as usize;
                        gs.regs[base + l] = send_vals[sv + l] as u32;
                    }
                }
            }
            for &ci in up.active.iter() {
                let c = ci as usize;
                let epi = tape.epi_exec[c] as u64;
                if epi == 0 {
                    continue;
                }
                for &l in vc_active.iter() {
                    let l = l as usize;
                    gs.cores[c * lanes + l].executed += epi;
                    gs.shells[l].counters.instructions += epi;
                }
            }
        } else {
            // Permissive mode: frozen delivery schedule into the epilogue
            // slots, then the validated slot walk through each lane's
            // pipeline ring — `replay_delivery_and_epilogue`, per lane.
            for d in &tape.deliveries {
                let t = d.target as usize;
                let sv = d.send_idx as usize * lanes;
                for &l in vc_active.iter() {
                    let l = l as usize;
                    let cs = &mut gs.cores[t * lanes + l];
                    cs.epilogue[d.slot as usize] = Some((d.rd, send_vals[sv + l]));
                    cs.received += 1;
                    gs.shells[l].counters.messages_delivered += 1;
                }
            }
            for (c, prog) in program.cores.iter().enumerate() {
                let body_len = prog.body.len() as u64;
                let creg = &mut gs.regs[c * rf * lanes..(c + 1) * rf * lanes];
                for &l in vc_active.iter() {
                    let l = l as usize;
                    let cs = &mut gs.cores[c * lanes + l];
                    for slot in 0..tape.epi_exec[c] {
                        let now = vstart + body_len + slot as u64;
                        cs.commit_due_strided(creg, lanes, l, now);
                        let (rd, value) = cs.epilogue[slot].expect("validated: every slot fills");
                        cs.write_reg_idx(now, lat, rd.0, value, false);
                        cs.executed += 1;
                        gs.shells[l].counters.instructions += 1;
                    }
                    cs.wrap_vcycle();
                }
            }
        }

        for &l in vc_active.iter() {
            let shell = &mut gs.shells[l as usize];
            shell.compute_time += vcycle_len;
            shell.counters.compute_cycles += vcycle_len;
            shell.counters.vcycles += 1;
        }
    }
}

/// Runs `$body` once per running lane. The common case — no lane parked —
/// iterates the dense `0..lanes` range (vectorizable, no index
/// indirection); the masked case walks the active-lane list.
macro_rules! for_lanes {
    ($all:expr, $vc:expr, $lanes:expr, $l:ident, $body:block) => {
        if $all {
            for $l in 0..$lanes {
                $body
            }
        } else {
            for &__li in $vc.iter() {
                let $l = __li as usize;
                $body
            }
        }
    };
}

/// One ALU operation on two *register words* (value in the low 16 bits,
/// carry in bit 16 — the storage format of every engine's register file),
/// returning the full result word including its carry bit.
///
/// This is [`AluOp::eval`] re-expressed over u32 words so the gang's
/// direct-commit lane loops are single branch-light integer expressions
/// the compiler can vectorize across lanes: `Add`'s carry-out lands in
/// bit 16 by plain 17-bit arithmetic, `Sub`'s no-borrow bit falls out of
/// `(a | 0x1_0000) - b`. Bit-equivalence with `eval` (for every op and
/// any carry bits on the inputs) is pinned by `alu_word_matches_eval` in
/// the machine test suite.
#[inline(always)]
pub(crate) fn alu_word(op: AluOp, a: u32, b: u32) -> u32 {
    let av = a & 0xffff;
    let bv = b & 0xffff;
    match op {
        AluOp::Add => av + bv,
        AluOp::Sub => (av | 0x1_0000) - bv,
        AluOp::And => av & bv,
        AluOp::Or => av | bv,
        AluOp::Xor => av ^ bv,
        AluOp::Sll => {
            if bv >= 16 {
                0
            } else {
                (av << bv) & 0xffff
            }
        }
        AluOp::Srl => {
            if bv >= 16 {
                0
            } else {
                av >> bv
            }
        }
        AluOp::Sra => (((av as u16 as i16) >> bv.min(15)) as u16) as u32,
        AluOp::Seq => (av == bv) as u32,
        AluOp::Sltu => (av < bv) as u32,
        AluOp::Slts => ((av as u16 as i16) < (bv as u16 as i16)) as u32,
        AluOp::Mul => (av as u16).wrapping_mul(bv as u16) as u32,
        AluOp::Mulh => (av * bv) >> 16,
    }
}

/// The ALU lane loop with the function dispatch hoisted *outside* the
/// lane loop: each arm monomorphizes `go` on a constant-receiver kernel,
/// so the innermost loop is branch-free for the common ops — one fetch,
/// one function select, K lane applications. Direct mode runs the
/// [`alu_word`] u32 kernels; ringed mode keeps [`AluOp::eval`] and the
/// pipeline ring.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn alu_lanes<const DIRECT: bool>(
    op: AluOp,
    all: bool,
    vc: &[u32],
    lanes: usize,
    cstates: &mut [CoreState],
    creg: &mut [u32],
    now: u64,
    lat: u64,
    rd: u16,
    rs1: u16,
    rs2: u16,
) {
    let brd = rd as usize * lanes;
    let b1 = rs1 as usize * lanes;
    let b2 = rs2 as usize * lanes;
    if DIRECT {
        #[inline(always)]
        fn go(
            word: impl Fn(u32, u32) -> u32,
            all: bool,
            vc: &[u32],
            lanes: usize,
            creg: &mut [u32],
            brd: usize,
            b1: usize,
            b2: usize,
        ) {
            if all {
                // Fixed-width chunks: staging the sources into by-value
                // arrays breaks the load/store alias through `creg`, so
                // the chunk body is branch-free straight-line code the
                // compiler can vectorize.
                let mut l = 0;
                while l + 8 <= lanes {
                    let a: [u32; 8] = creg[b1 + l..b1 + l + 8].try_into().unwrap();
                    let b: [u32; 8] = creg[b2 + l..b2 + l + 8].try_into().unwrap();
                    let dst = &mut creg[brd + l..brd + l + 8];
                    for k in 0..8 {
                        dst[k] = word(a[k], b[k]);
                    }
                    l += 8;
                }
                while l < lanes {
                    let a = creg[b1 + l];
                    let b = creg[b2 + l];
                    creg[brd + l] = word(a, b);
                    l += 1;
                }
            } else {
                for &li in vc.iter() {
                    let l = li as usize;
                    let a = creg[b1 + l];
                    let b = creg[b2 + l];
                    creg[brd + l] = word(a, b);
                }
            }
        }
        macro_rules! arm {
            ($v:ident) => {
                go(
                    |a, b| alu_word(AluOp::$v, a, b),
                    all,
                    vc,
                    lanes,
                    creg,
                    brd,
                    b1,
                    b2,
                )
            };
        }
        match op {
            AluOp::Add => arm!(Add),
            AluOp::Sub => arm!(Sub),
            AluOp::And => arm!(And),
            AluOp::Or => arm!(Or),
            AluOp::Xor => arm!(Xor),
            AluOp::Sll => arm!(Sll),
            AluOp::Srl => arm!(Srl),
            AluOp::Sra => arm!(Sra),
            AluOp::Seq => arm!(Seq),
            AluOp::Sltu => arm!(Sltu),
            AluOp::Slts => arm!(Slts),
            AluOp::Mul => arm!(Mul),
            AluOp::Mulh => arm!(Mulh),
        }
    } else {
        #[inline(always)]
        #[allow(clippy::too_many_arguments)]
        fn go(
            eval: impl Fn(u16, u16) -> (u16, bool),
            all: bool,
            vc: &[u32],
            lanes: usize,
            cstates: &mut [CoreState],
            creg: &mut [u32],
            now: u64,
            lat: u64,
            rd: u16,
            b1: usize,
            b2: usize,
        ) {
            for_lanes!(all, vc, lanes, l, {
                let a = creg[b1 + l] as u16;
                let b = creg[b2 + l] as u16;
                let (v, c) = eval(a, b);
                cstates[l].write_reg_idx(now, lat, rd, v, c);
            });
        }
        macro_rules! arm {
            ($v:ident) => {
                go(
                    |a, b| AluOp::$v.eval(a, b),
                    all,
                    vc,
                    lanes,
                    cstates,
                    creg,
                    now,
                    lat,
                    rd,
                    b1,
                    b2,
                )
            };
        }
        match op {
            AluOp::Add => arm!(Add),
            AluOp::Sub => arm!(Sub),
            AluOp::And => arm!(And),
            AluOp::Or => arm!(Or),
            AluOp::Xor => arm!(Xor),
            AluOp::Sll => arm!(Sll),
            AluOp::Srl => arm!(Srl),
            AluOp::Sra => arm!(Sra),
            AluOp::Seq => arm!(Seq),
            AluOp::Sltu => arm!(Sltu),
            AluOp::Slts => arm!(Slts),
            AluOp::Mul => arm!(Mul),
            AluOp::Mulh => arm!(Mulh),
        }
    }
}

/// The Mux lane loop (shared by `Mux` and both halves of `MuxMux`).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mux_lanes<const DIRECT: bool>(
    all: bool,
    vc: &[u32],
    lanes: usize,
    cstates: &mut [CoreState],
    creg: &mut [u32],
    now: u64,
    lat: u64,
    rd: u16,
    rs_sel: u16,
    rs1: u16,
    rs2: u16,
) {
    let brd = rd as usize * lanes;
    let bsel = rs_sel as usize * lanes;
    let b1 = rs1 as usize * lanes;
    let b2 = rs2 as usize * lanes;
    if DIRECT {
        if all {
            // Same fixed-width staged chunks as `alu_lanes::go`.
            let mut l = 0;
            while l + 8 <= lanes {
                let s: [u32; 8] = creg[bsel + l..bsel + l + 8].try_into().unwrap();
                let a: [u32; 8] = creg[b1 + l..b1 + l + 8].try_into().unwrap();
                let b: [u32; 8] = creg[b2 + l..b2 + l + 8].try_into().unwrap();
                let dst = &mut creg[brd + l..brd + l + 8];
                for k in 0..8 {
                    let v = if s[k] & 0xffff != 0 { a[k] } else { b[k] };
                    dst[k] = v & 0xffff;
                }
                l += 8;
            }
            while l < lanes {
                let s = creg[bsel + l] & 0xffff;
                let v = if s != 0 { creg[b1 + l] } else { creg[b2 + l] };
                creg[brd + l] = v & 0xffff;
                l += 1;
            }
        } else {
            for &li in vc.iter() {
                let l = li as usize;
                let s = creg[bsel + l] & 0xffff;
                let v = if s != 0 { creg[b1 + l] } else { creg[b2 + l] };
                creg[brd + l] = v & 0xffff;
            }
        }
    } else {
        for_lanes!(all, vc, lanes, l, {
            let s = creg[bsel + l] as u16;
            let v = if s != 0 { creg[b1 + l] } else { creg[b2 + l] } as u16;
            cstates[l].write_reg_idx(now, lat, rd, v, false);
        });
    }
}

/// Records one send position's value for every running lane.
#[inline(always)]
fn send_lanes(
    all: bool,
    vc: &[u32],
    lanes: usize,
    creg: &[u32],
    rs: u16,
    send_vals: &mut [u16],
    cursor: usize,
) {
    let b = rs as usize * lanes;
    let base = cursor * lanes;
    for_lanes!(all, vc, lanes, l, {
        send_vals[base + l] = creg[b + l] as u16;
    });
}

/// Commits due ring writes for every running lane (ringed mode only).
#[inline(always)]
fn commit_lanes(
    all: bool,
    vc: &[u32],
    lanes: usize,
    cstates: &mut [CoreState],
    creg: &mut [u32],
    now: u64,
) {
    for_lanes!(all, vc, lanes, l, {
        cstates[l].commit_due_strided(creg, lanes, l, now);
    });
}

/// Walks one core's micro-op stream for one Vcycle across every lane in
/// `vc_active`: the op is decoded once (ALU function included), the lane
/// loop is the innermost loop. `DIRECT` selects immediate commits
/// (strict-validated) versus each lane's pipeline ring (permissive),
/// exactly like `uops::run_core_uops`. `shells` carries each lane's
/// cache, counters, and host events.
///
/// A lane whose `Expect` servicing fails is parked in place: its counters
/// flush through the faulting op (the solo engine's abort point), its
/// status records the error, and it drops out of `vc_active` so no later
/// op, core, or delivery touches it this Vcycle.
#[allow(clippy::too_many_arguments)]
fn gang_core_walk<const DIRECT: bool>(
    exceptions: &[ExceptionDescriptor],
    prog: &CoreProgram,
    vcycle: u64,
    lanes: usize,
    sw: usize,
    lat: u64,
    vstart: u64,
    creg: &mut [u32],
    scr_base: usize,
    cstates: &mut [CoreState],
    stream: &[MicroOp],
    shells: &mut [Machine],
    lane_status: &mut [LaneStatus],
    vc_active: &mut Vec<u32>,
    send_vals: &mut [u16],
    send_cursor: &mut usize,
) {
    let mut all = vc_active.len() == lanes;
    if DIRECT {
        // Writes left in flight by a previous Vcycle on the solo engine
        // (e.g. each lane's validation Vcycle) commit now; no read could
        // have observed them pending.
        for_lanes!(all, vc_active, lanes, l, {
            cstates[l].commit_due_strided(creg, lanes, l, u64::MAX);
        });
    }
    let mut ic: u64 = 0;
    let mut sends: u64 = 0;
    for mop in stream {
        let pos = mop.pos as u64;
        let now = vstart + pos;
        if !DIRECT {
            commit_lanes(all, vc_active, lanes, cstates, creg, now);
        }
        match mop.op {
            UOp::Set { rd, imm } => {
                ic += 1;
                let brd = rd as usize * lanes;
                if DIRECT {
                    for_lanes!(all, vc_active, lanes, l, {
                        creg[brd + l] = imm as u32;
                    });
                } else {
                    for_lanes!(all, vc_active, lanes, l, {
                        cstates[l].write_reg_idx(now, lat, rd, imm, false);
                    });
                }
            }
            UOp::Alu { op, rd, rs1, rs2 } => {
                ic += 1;
                alu_lanes::<DIRECT>(
                    op, all, vc_active, lanes, cstates, creg, now, lat, rd, rs1, rs2,
                );
            }
            UOp::AddCarry { rd, rs1, rs2, rsc } => {
                ic += 1;
                let brd = rd as usize * lanes;
                let b1 = rs1 as usize * lanes;
                let b2 = rs2 as usize * lanes;
                let bc = rsc as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let a = creg[b1 + l] & 0xffff;
                    let b = creg[b2 + l] & 0xffff;
                    let cin = (creg[bc + l] >> 16) & 1;
                    let sum = a + b + cin;
                    if DIRECT {
                        creg[brd + l] = (sum as u16) as u32 | (((sum > 0xffff) as u32) << 16);
                    } else {
                        cstates[l].write_reg_idx(now, lat, rd, sum as u16, sum > 0xffff);
                    }
                });
            }
            UOp::SubBorrow { rd, rs1, rs2, rsb } => {
                ic += 1;
                let brd = rd as usize * lanes;
                let b1 = rs1 as usize * lanes;
                let b2 = rs2 as usize * lanes;
                let bb = rsb as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let a = (creg[b1 + l] as u16) as i32;
                    let b = (creg[b2 + l] as u16) as i32;
                    let cin = ((creg[bb + l] >> 16) & 1) as i32;
                    let diff = a - b - (1 - cin);
                    if DIRECT {
                        creg[brd + l] = (diff as u16) as u32 | (((diff >= 0) as u32) << 16);
                    } else {
                        cstates[l].write_reg_idx(now, lat, rd, diff as u16, diff >= 0);
                    }
                });
            }
            UOp::Mux {
                rd,
                rs_sel,
                rs1,
                rs2,
            } => {
                ic += 1;
                mux_lanes::<DIRECT>(
                    all, vc_active, lanes, cstates, creg, now, lat, rd, rs_sel, rs1, rs2,
                );
            }
            UOp::Slice {
                rd,
                rs,
                shift,
                mask,
            } => {
                ic += 1;
                let brd = rd as usize * lanes;
                let b = rs as usize * lanes;
                if DIRECT {
                    for_lanes!(all, vc_active, lanes, l, {
                        let v = creg[b + l] as u16;
                        creg[brd + l] = ((v >> shift) & mask) as u32;
                    });
                } else {
                    for_lanes!(all, vc_active, lanes, l, {
                        let v = creg[b + l] as u16;
                        cstates[l].write_reg_idx(now, lat, rd, (v >> shift) & mask, false);
                    });
                }
            }
            UOp::Custom { rd, func, rs } => {
                ic += 1;
                let masks = &prog.custom_masks[func as usize];
                let brd = rd as usize * lanes;
                let b0 = rs[0] as usize * lanes;
                let b1 = rs[1] as usize * lanes;
                let b2 = rs[2] as usize * lanes;
                let b3 = rs[3] as usize * lanes;
                if DIRECT && all {
                    // Four lanes per mux tree: the bitsliced evaluation is
                    // pure word logic, so packing lanes into 16-bit slots
                    // of a u64 amortizes the whole tree 4x. The broadcast
                    // masks are precomputed at load.
                    let m64 = &prog.custom_masks_x4[func as usize];
                    let mut l = 0;
                    while l + 4 <= lanes {
                        let pack = |base: usize, creg: &[u32]| -> u64 {
                            (creg[base + l] as u64 & 0xffff)
                                | ((creg[base + l + 1] as u64 & 0xffff) << 16)
                                | ((creg[base + l + 2] as u64 & 0xffff) << 32)
                                | ((creg[base + l + 3] as u64 & 0xffff) << 48)
                        };
                        let a = pack(b0, creg);
                        let b = pack(b1, creg);
                        let c = pack(b2, creg);
                        let d = pack(b3, creg);
                        let out = crate::exec::eval_custom_masks_x4(m64, a, b, c, d);
                        for k in 0..4 {
                            creg[brd + l + k] = ((out >> (16 * k)) & 0xffff) as u32;
                        }
                        l += 4;
                    }
                    while l < lanes {
                        let a = creg[b0 + l] as u16;
                        let b = creg[b1 + l] as u16;
                        let c = creg[b2 + l] as u16;
                        let d = creg[b3 + l] as u16;
                        creg[brd + l] = crate::exec::eval_custom_masks(masks, a, b, c, d) as u32;
                        l += 1;
                    }
                } else {
                    for_lanes!(all, vc_active, lanes, l, {
                        let a = creg[b0 + l] as u16;
                        let b = creg[b1 + l] as u16;
                        let c = creg[b2 + l] as u16;
                        let d = creg[b3 + l] as u16;
                        let out = crate::exec::eval_custom_masks(masks, a, b, c, d);
                        if DIRECT {
                            creg[brd + l] = out as u32;
                        } else {
                            cstates[l].write_reg_idx(now, lat, rd, out, false);
                        }
                    });
                }
            }
            UOp::Predicate { rs } => {
                ic += 1;
                let b = rs as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    cstates[l].predicate = creg[b + l] as u16 != 0;
                });
            }
            UOp::LocalLoad { rd, rs_addr, base } => {
                ic += 1;
                let brd = rd as usize * lanes;
                let ba = rs_addr as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let a = creg[ba + l] as u16;
                    let addr = (base as usize + a as usize) % sw;
                    let v = shells[l].scratch[scr_base + addr];
                    if DIRECT {
                        creg[brd + l] = v as u32;
                    } else {
                        cstates[l].write_reg_idx(now, lat, rd, v, false);
                    }
                });
            }
            UOp::LocalStore {
                rs_data,
                rs_addr,
                base,
            } => {
                ic += 1;
                let bd = rs_data as usize * lanes;
                let ba = rs_addr as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let v = creg[bd + l] as u16;
                    let a = creg[ba + l] as u16;
                    if cstates[l].predicate {
                        let addr = (base as usize + a as usize) % sw;
                        shells[l].scratch[scr_base + addr] = v;
                    }
                });
            }
            UOp::GlobalLoad { rd, rs_addr } => {
                ic += 1;
                let b0 = rs_addr[0] as usize * lanes;
                let b1 = rs_addr[1] as usize * lanes;
                let b2 = rs_addr[2] as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let addr = (creg[b0 + l] as u64 & 0xffff)
                        | ((creg[b1 + l] as u64 & 0xffff) << 16)
                        | ((creg[b2 + l] as u64 & 0xffff) << 32);
                    let shell = &mut shells[l];
                    let (v, stall) = shell.cache.load(addr);
                    shell.counters.stall_cycles += stall;
                    if DIRECT {
                        creg[rd as usize * lanes + l] = v as u32;
                    } else {
                        cstates[l].write_reg_idx(now, lat, rd, v, false);
                    }
                });
            }
            UOp::GlobalStore { rs_data, rs_addr } => {
                ic += 1;
                let bd = rs_data as usize * lanes;
                let b0 = rs_addr[0] as usize * lanes;
                let b1 = rs_addr[1] as usize * lanes;
                let b2 = rs_addr[2] as usize * lanes;
                for_lanes!(all, vc_active, lanes, l, {
                    let v = creg[bd + l] as u16;
                    let addr = (creg[b0 + l] as u64 & 0xffff)
                        | ((creg[b1 + l] as u64 & 0xffff) << 16)
                        | ((creg[b2 + l] as u64 & 0xffff) << 32);
                    if cstates[l].predicate {
                        let shell = &mut shells[l];
                        let stall = shell.cache.store(addr, v);
                        shell.counters.stall_cycles += stall;
                    }
                });
            }
            UOp::Send { rs } => {
                ic += 1;
                sends += 1;
                send_lanes(all, vc_active, lanes, creg, rs, send_vals, *send_cursor);
                *send_cursor += 1;
            }
            UOp::Expect { rs1, rs2, eid } => {
                ic += 1;
                let b1 = rs1 as usize * lanes;
                let b2 = rs2 as usize * lanes;
                let mut i = 0;
                while i < vc_active.len() {
                    let l = vc_active[i] as usize;
                    let a = creg[b1 + l] as u16;
                    let b = creg[b2 + l] as u16;
                    if a == b {
                        i += 1;
                        continue;
                    }
                    let cs = &cstates[l];
                    let shell = &mut shells[l];
                    let res = service_exception(
                        exceptions,
                        vcycle,
                        |r: Reg| {
                            let idx = r.index();
                            if !DIRECT && cs.inflight[idx] > 0 {
                                cs.ring[cs.last_writer[idx] as usize].value
                            } else {
                                creg[idx * lanes + l] as u16
                            }
                        },
                        eid,
                        &mut shell.counters,
                        &mut shell.events,
                    );
                    match res {
                        Ok(()) => i += 1,
                        Err(err) => {
                            // Park the lane where a solo run would have
                            // aborted: counters flushed through the
                            // faulting op, no further execution.
                            cstates[l].executed += ic;
                            shell.counters.instructions += ic;
                            shell.counters.sends += sends;
                            lane_status[l] = LaneStatus::Faulted(err);
                            vc_active.remove(i);
                        }
                    }
                }
                all = vc_active.len() == lanes;
            }
            UOp::AluAlu {
                op1,
                rd1,
                rs11,
                rs12,
                op2,
                rd2,
                rs21,
                rs22,
            } => {
                ic += 2;
                alu_lanes::<DIRECT>(
                    op1, all, vc_active, lanes, cstates, creg, now, lat, rd1, rs11, rs12,
                );
                if !DIRECT {
                    commit_lanes(all, vc_active, lanes, cstates, creg, now + 1);
                }
                alu_lanes::<DIRECT>(
                    op2,
                    all,
                    vc_active,
                    lanes,
                    cstates,
                    creg,
                    now + 1,
                    lat,
                    rd2,
                    rs21,
                    rs22,
                );
            }
            UOp::MuxMux {
                rd1,
                sel1,
                rs11,
                rs12,
                rd2,
                sel2,
                rs21,
                rs22,
            } => {
                ic += 2;
                mux_lanes::<DIRECT>(
                    all, vc_active, lanes, cstates, creg, now, lat, rd1, sel1, rs11, rs12,
                );
                if !DIRECT {
                    commit_lanes(all, vc_active, lanes, cstates, creg, now + 1);
                }
                mux_lanes::<DIRECT>(
                    all,
                    vc_active,
                    lanes,
                    cstates,
                    creg,
                    now + 1,
                    lat,
                    rd2,
                    sel2,
                    rs21,
                    rs22,
                );
            }
            UOp::AluSend {
                op,
                rd,
                rs1,
                rs2,
                rs_send,
            } => {
                ic += 2;
                sends += 1;
                alu_lanes::<DIRECT>(
                    op, all, vc_active, lanes, cstates, creg, now, lat, rd, rs1, rs2,
                );
                if !DIRECT {
                    commit_lanes(all, vc_active, lanes, cstates, creg, now + 1);
                }
                send_lanes(
                    all,
                    vc_active,
                    lanes,
                    creg,
                    rs_send,
                    send_vals,
                    *send_cursor,
                );
                *send_cursor += 1;
            }
            UOp::SendSend { rs1, rs2 } => {
                ic += 2;
                sends += 2;
                send_lanes(all, vc_active, lanes, creg, rs1, send_vals, *send_cursor);
                if !DIRECT {
                    commit_lanes(all, vc_active, lanes, cstates, creg, now + 1);
                }
                send_lanes(
                    all,
                    vc_active,
                    lanes,
                    creg,
                    rs2,
                    send_vals,
                    *send_cursor + 1,
                );
                *send_cursor += 2;
            }
        }
    }
    for &l in vc_active.iter() {
        let l = l as usize;
        cstates[l].executed += ic;
        shells[l].counters.instructions += ic;
        shells[l].counters.sends += sends;
    }
}
