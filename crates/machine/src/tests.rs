//! Machine-model tests using hand-assembled programs.
//!
//! These tests play the role of the paper's hardware bring-up suite: each
//! exercises one architectural mechanism (pipeline hazards, NoC routing and
//! collisions, message epilogue, global stall, exceptions, custom
//! functions) with a program small enough to reason about by hand.

use manticore_isa::{
    AluOp, Binary, CoreId, CoreImage, ExceptionDescriptor, ExceptionId, ExceptionKind, Instruction,
    MachineConfig, Reg,
};

use crate::{Machine, MachineError};

/// A small test configuration: short pipeline so programs stay readable.
fn test_config(w: usize, h: usize) -> MachineConfig {
    MachineConfig {
        grid_width: w,
        grid_height: h,
        hazard_latency: 2,
        injection_latency: 2,
        hop_latency: 1,
        ..Default::default()
    }
}

fn r(n: u16) -> Reg {
    Reg(n)
}

fn empty_binary(w: u32, h: u32, vcycle_len: u32) -> Binary {
    Binary {
        grid_width: w,
        grid_height: h,
        vcycle_len,
        cores: vec![],
        exceptions: vec![],
        init_dram: vec![],
    }
}

#[test]
fn counter_increments_every_vcycle() {
    let mut binary = empty_binary(1, 1, 4);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(1),
            rs2: r(2),
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0), (r(2), 1)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(5).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 5);
    assert_eq!(m.counters().vcycles, 5);
    assert_eq!(m.counters().compute_cycles, 20);
    assert_eq!(m.counters().instructions, 5);
}

#[test]
fn strict_mode_catches_data_hazard() {
    // The second add reads r1 one cycle after it was written: with a
    // 2-cycle hazard latency the write is still in flight.
    let mut binary = empty_binary(1, 1, 6);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                rs2: r(2),
            },
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(2), 5)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    match m.run_vcycles(1) {
        Err(MachineError::Hazard { reg, position, .. }) => {
            assert_eq!(reg, r(1));
            assert_eq!(position, 1);
        }
        other => panic!("expected hazard, got {other:?}"),
    }
}

#[test]
fn permissive_mode_reads_stale_value() {
    let mut binary = empty_binary(1, 1, 6);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                rs2: r(2),
            },
            // reads the STALE r1 (= 0), so r3 = 0 + 5
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(2), 5)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.set_strict_hazards(false);
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 5); // stale read
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 10);
}

#[test]
fn hazard_respected_after_latency() {
    // Writer at position 0, reader at position 2 (= hazard latency): legal.
    let mut binary = empty_binary(1, 1, 6);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                rs2: r(2),
            },
            Instruction::Nop,
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(2), 5)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 15);
}

#[test]
fn wide_add_carry_chain() {
    // 32-bit add: 0x0001_ffff + 0x0000_0001 = 0x0002_0000.
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            // low word: r10 = 0xffff + 0x0001 (sets carry)
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(10),
                rs1: r(1),
                rs2: r(3),
            },
            Instruction::Nop,
            Instruction::Nop,
            // high word: r11 = 0x0001 + 0x0000 + carry(r10)
            Instruction::AddCarry {
                rd: r(11),
                rs1: r(2),
                rs2: r(4),
                rs_carry: r(10),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![
            (r(1), 0xffff),
            (r(2), 0x0001),
            (r(3), 0x0001),
            (r(4), 0x0000),
        ],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(10)), 0x0000);
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(11)), 0x0002);
}

#[test]
fn wide_sub_borrow_chain() {
    // 32-bit sub: 0x0002_0000 - 0x0000_0001 = 0x0001_ffff.
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Sub,
                rd: r(10),
                rs1: r(1),
                rs2: r(3),
            },
            Instruction::Nop,
            Instruction::Nop,
            Instruction::SubBorrow {
                rd: r(11),
                rs1: r(2),
                rs2: r(4),
                rs_borrow: r(10),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![
            (r(1), 0x0000),
            (r(2), 0x0002),
            (r(3), 0x0001),
            (r(4), 0x0000),
        ],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(10)), 0xffff);
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(11)), 0x0001);
}

#[test]
fn send_delivers_to_remote_epilogue() {
    // Core (0,0) computes and sends to (1,0); the value lands in the
    // target's register via its epilogue SET.
    let mut binary = empty_binary(2, 1, 12);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Instruction::Nop,
            Instruction::Send {
                target: CoreId::new(1, 0),
                rd_remote: r(5),
                rs: r(1),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0), (r(2), 1)],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(1, 0),
        // Body long enough that the epilogue slot executes after arrival
        // (send at pos 2, +2 injection +1 hop = arrives at pos 5).
        body: vec![Instruction::Nop; 6],
        epilogue_len: 1,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(2, 1), &binary).unwrap();
    m.run_vcycles(3).unwrap();
    // After 3 Vcycles, (0,0) has sent 1, 2, 3; the last delivered value is 3.
    assert_eq!(m.read_reg(CoreId::new(1, 0), r(5)), 3);
    assert_eq!(m.counters().sends, 3);
    assert_eq!(m.counters().messages_delivered, 3);
}

/// A program whose message arrives after its epilogue slot has issued:
/// sender fires at position 2 (arrival 2+2+1 = 5), but the receiver's slot
/// 0 issues at position 0.
fn late_message_binary() -> Binary {
    let mut binary = empty_binary(2, 1, 12);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Nop,
            Instruction::Nop,
            Instruction::Send {
                target: CoreId::new(1, 0),
                rd_remote: r(5),
                rs: r(0),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(1, 0),
        body: vec![], // slot 0 executes at position 0, long before arrival
        epilogue_len: 1,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    binary
}

#[test]
fn late_message_detected() {
    // In permissive mode the empty slot issues as a NOP and the violation
    // surfaces when the message finally lands past its slot.
    let mut m = Machine::load(test_config(2, 1), &late_message_binary()).unwrap();
    m.set_strict_hazards(false);
    match m.run_vcycles(1) {
        Err(MachineError::LateMessage { core, slot }) => {
            assert_eq!(core, CoreId::new(1, 0));
            assert_eq!(slot, 0);
        }
        other => panic!("expected late message, got {other:?}"),
    }
}

#[test]
fn strict_mode_reports_empty_slot_at_issue() {
    // Strict mode catches the same bug earlier and deterministically: the
    // slot reaches instruction issue before its scheduled message.
    let mut m = Machine::load(test_config(2, 1), &late_message_binary()).unwrap();
    match m.run_vcycles(1) {
        Err(MachineError::MissingScheduledMessage {
            core,
            slot,
            position,
        }) => {
            assert_eq!(core, CoreId::new(1, 0));
            assert_eq!(slot, 0);
            assert_eq!(position, 0);
        }
        other => panic!("expected missing scheduled message, got {other:?}"),
    }
}

#[test]
fn link_collision_detected() {
    // (0,0) and (1,0) both route through the x-link out of (1,0) in the
    // same cycle.
    let mut binary = empty_binary(3, 1, 16);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Send {
            target: CoreId::new(2, 0),
            rd_remote: r(5),
            rs: r(0),
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(1, 0),
        body: vec![
            Instruction::Nop,
            Instruction::Send {
                target: CoreId::new(2, 0),
                rd_remote: r(6),
                rs: r(0),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    binary.cores.push(CoreImage {
        core: CoreId::new(2, 0),
        body: vec![Instruction::Nop; 10],
        epilogue_len: 2,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(3, 1), &binary).unwrap();
    match m.run_vcycles(1) {
        Err(MachineError::LinkCollision { .. }) => {}
        other => panic!("expected collision, got {other:?}"),
    }
}

#[test]
fn missing_message_detected_at_wrap() {
    // Permissive mode: the starved SET slot silently NOPs and the
    // shortfall is caught by the Vcycle-wrap accounting.
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Nop],
        epilogue_len: 1, // nobody sends to us
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.set_strict_hazards(false);
    match m.run_vcycles(1) {
        Err(MachineError::MissingMessages { got, expected, .. }) => {
            assert_eq!((got, expected), (0, 1));
        }
        other => panic!("expected missing messages, got {other:?}"),
    }
}

#[test]
fn missing_message_detected_at_issue_in_strict_mode() {
    // Strict mode reports the starved slot the moment it issues (position
    // body_len + slot = 1), not at the wrap.
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Nop],
        epilogue_len: 1, // nobody sends to us
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    match m.run_vcycles(1) {
        Err(MachineError::MissingScheduledMessage {
            core,
            slot,
            position,
        }) => {
            assert_eq!(core, CoreId::new(0, 0));
            assert_eq!(slot, 0);
            assert_eq!(position, 1);
        }
        other => panic!("expected missing scheduled message, got {other:?}"),
    }
}

#[test]
fn local_memory_and_predicate() {
    let mut binary = empty_binary(1, 1, 16);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            // predicate on (r1 = 1): store r2 at scratch[base=100 + r0]
            Instruction::Predicate { rs: r(1) },
            Instruction::LocalStore {
                rs_data: r(2),
                rs_addr: r(0),
                base: 100,
            },
            // predicate off (r0 = 0): store must NOT happen
            Instruction::Predicate { rs: r(0) },
            Instruction::LocalStore {
                rs_data: r(3),
                rs_addr: r(0),
                base: 100,
            },
            // load it back
            Instruction::LocalLoad {
                rd: r(4),
                rs_addr: r(0),
                base: 100,
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 1), (r(2), 0xaaaa), (r(3), 0xbbbb)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_scratch(CoreId::new(0, 0), 100), 0xaaaa);
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(4)), 0xaaaa);
}

#[test]
fn global_memory_hits_and_misses() {
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::GlobalLoad {
            rd: r(10),
            rs_addr: [r(1), r(0), r(0)],
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 4)],
        init_scratch: vec![],
    });
    binary.init_dram.push((4, 0xd00d));
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(3).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(10)), 0xd00d);
    let stats = m.cache_stats();
    assert_eq!(stats.misses, 1); // first access fills the line
    assert_eq!(stats.hits, 2); // subsequent Vcycles hit
    assert!(m.counters().stall_cycles > 0);
}

#[test]
fn global_store_writes_back() {
    let cfg = test_config(1, 1);
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Predicate { rs: r(1) },
            Instruction::GlobalStore {
                rs_data: r(2),
                rs_addr: [r(3), r(0), r(0)],
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 1), (r(2), 0xfeed), (r(3), 1000)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(cfg, &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_global(1000), 0xfeed);
}

#[test]
fn privileged_on_wrong_core_rejected_at_load() {
    let mut binary = empty_binary(2, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(1, 0),
        body: vec![Instruction::GlobalLoad {
            rd: r(1),
            rs_addr: [r(0), r(0), r(0)],
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    assert!(matches!(
        Machine::load(test_config(2, 1), &binary),
        Err(MachineError::Load(_))
    ));
}

#[test]
fn custom_function_lut() {
    // Truth table for out = a & b: bits set where sel has bits 0 and 1,
    // replicated across all 16 lanes.
    let table = [0x8888u16; 16]; // indices 3, 7, 11, 15
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Custom {
            rd: r(3),
            func: 0,
            rs: [r(1), r(2), r(0), r(0)],
        }],
        epilogue_len: 0,
        custom_functions: vec![table],
        init_regs: vec![(r(1), 0xff0f), (r(2), 0x0ff0)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 0x0f00);
}

#[test]
fn display_exception_renders() {
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Expect {
            rs1: r(1),
            rs2: r(0),
            eid: 0,
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 1), (r(2), 0xbeef), (r(3), 0xdead)],
        init_scratch: vec![],
    });
    binary.exceptions.push(ExceptionDescriptor {
        id: ExceptionId(0),
        kind: ExceptionKind::Display {
            format: "value = {}".into(),
            args: vec![(vec![r(2), r(3)], 32)],
        },
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    let out = m.run_vcycles(2).unwrap();
    assert_eq!(out.displays, vec!["value = deadbeef", "value = deadbeef"]);
    assert_eq!(m.counters().exceptions, 2);
    assert!(m.counters().stall_cycles >= 400);
}

#[test]
fn finish_exception_stops_run() {
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            // counter
            Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Instruction::Nop,
            Instruction::Nop,
            // done = (r1 == 3)
            Instruction::Alu {
                op: AluOp::Seq,
                rd: r(4),
                rs1: r(1),
                rs2: r(3),
            },
            Instruction::Nop,
            Instruction::Nop,
            Instruction::Expect {
                rs1: r(4),
                rs2: r(0),
                eid: 0,
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0), (r(2), 1), (r(3), 3)],
        init_scratch: vec![],
    });
    binary.exceptions.push(ExceptionDescriptor {
        id: ExceptionId(0),
        kind: ExceptionKind::Finish,
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    let out = m.run_vcycles(100).unwrap();
    assert!(out.finished);
    assert_eq!(out.vcycles_run, 3);
}

#[test]
fn assert_fail_aborts() {
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Expect {
            rs1: r(1),
            rs2: r(2),
            eid: 7,
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 1), (r(2), 2)],
        init_scratch: vec![],
    });
    binary.exceptions.push(ExceptionDescriptor {
        id: ExceptionId(7),
        kind: ExceptionKind::AssertFail {
            message: "values diverged".into(),
        },
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    match m.run_vcycles(1) {
        Err(MachineError::AssertFailed { message, vcycle }) => {
            assert_eq!(message, "values diverged");
            assert_eq!(vcycle, 0);
        }
        other => panic!("expected assert failure, got {other:?}"),
    }
}

#[test]
fn boot_from_serialized_bytes() {
    let mut binary = empty_binary(1, 1, 4);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(1),
            rs2: r(2),
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0), (r(2), 2)],
        init_scratch: vec![],
    });
    let bytes = binary.to_bytes();
    let mut m = Machine::boot_from_bytes(test_config(1, 1), &bytes).unwrap();
    m.run_vcycles(4).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 8);
}

#[test]
fn enabling_strict_hazards_disarms_replay() {
    let mut binary = empty_binary(1, 1, 4);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(1),
            rs2: r(2),
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(2), 1)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    assert!(m.replay_armed(), "tape frozen at load");
    // Relaxing to permissive only removes checks: the tape stays valid.
    m.set_strict_hazards(false);
    assert!(m.replay_armed());
    // Re-enabling strictness arms checks the (permissive) validation
    // Vcycle never proved: the tape is dropped for good.
    m.set_strict_hazards(true);
    assert!(!m.replay_armed());
    m.set_replay(true);
    assert!(!m.replay_armed());
    // Execution still works, just on the full interpreter.
    m.run_vcycles(3).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 3);
}

#[test]
fn oversized_grid_rejected_at_load() {
    // CoreId coordinates are 8-bit: a 257-wide grid would silently wrap
    // `core_id_of` and alias core (256, y) with core (0, y).
    let cfg = MachineConfig {
        grid_width: 257,
        grid_height: 1,
        ..Default::default()
    };
    let binary = empty_binary(1, 1, 4);
    match Machine::load(cfg, &binary) {
        Err(MachineError::Load(msg)) => {
            assert!(msg.contains("256x256"), "unexpected message: {msg}")
        }
        other => panic!("expected load rejection, got {other:?}"),
    }
    // 256 exactly still fits (coordinates 0..=255).
    let cfg = MachineConfig {
        grid_width: 256,
        grid_height: 1,
        scratch_words: 1,
        regfile_size: 1,
        ..Default::default()
    };
    assert!(Machine::load(cfg, &empty_binary(1, 1, 4)).is_ok());
}

#[test]
fn send_outside_grid_rejected_at_load() {
    // A Send whose target lies outside the configured grid would loop the
    // dimension-ordered router forever; the bootloader rejects it.
    let mut binary = empty_binary(2, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Send {
            target: CoreId::new(5, 0),
            rd_remote: r(1),
            rs: r(0),
        }],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    assert!(matches!(
        Machine::load(test_config(2, 1), &binary),
        Err(MachineError::Load(_))
    ));
}

#[test]
fn imem_overflow_rejected() {
    let cfg = test_config(1, 1);
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Nop; cfg.imem_capacity + 1],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![],
        init_scratch: vec![],
    });
    assert!(matches!(
        Machine::load(cfg, &binary),
        Err(MachineError::Load(_))
    ));
}

#[test]
fn mul_and_mulh_compose() {
    // 0x1234 * 0x5678 = 0x06260060, split across Mul/Mulh.
    let mut binary = empty_binary(1, 1, 8);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![
            Instruction::Alu {
                op: AluOp::Mul,
                rd: r(3),
                rs1: r(1),
                rs2: r(2),
            },
            Instruction::Alu {
                op: AluOp::Mulh,
                rd: r(4),
                rs1: r(1),
                rs2: r(2),
            },
        ],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 0x1234), (r(2), 0x5678)],
        init_scratch: vec![],
    });
    let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
    m.run_vcycles(1).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 0x0060);
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(4)), 0x0626);
}

mod replay_engines {
    //! Unit tests for the validate-once / replay-many lowerings: the
    //! pipeline write ring, micro-op fusion, and the static
    //! cross-Vcycle-boundary hazard analysis that decides when the
    //! micro-op engine may commit writes directly.

    use super::*;
    use crate::{ExecMode, ReplayEngine};

    /// A counter whose increment issues at the *last* body position, so
    /// its write is still in the pipeline ring at every Vcycle boundary.
    fn tail_write_binary() -> Binary {
        let mut binary = empty_binary(1, 1, 4);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            // The increment issues at position 3 and commits at 4k+5 —
            // position 1 of the next Vcycle — so it is always pending at
            // the Vcycle boundary. The only read (position 2, the r3
            // snapshot) sits outside every commit window, keeping the
            // program hazard-free on all engines.
            body: vec![
                Instruction::Nop,
                Instruction::Nop,
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(3),
                    rs1: r(1),
                    rs2: r(0),
                },
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 0), (r(2), 1)],
            init_scratch: vec![],
        });
        binary
    }

    #[test]
    fn host_reads_see_flushed_tail_writes_on_every_engine() {
        // `read_reg` must return the in-flight (flushed) value at the
        // Vcycle boundary, whether the write sits in the ring
        // (interpreter, tape, permissive micro-ops) or was committed
        // directly (strict micro-ops).
        for engine in [None, Some(ReplayEngine::Tape), Some(ReplayEngine::MicroOps)] {
            let mut m = Machine::load(test_config(1, 1), &tail_write_binary()).unwrap();
            match engine {
                None => m.set_replay(false),
                Some(e) => m.set_replay_engine(e),
            }
            m.run_vcycles(5).unwrap();
            assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 5, "{engine:?}");
            // r3 snapshots r1 before the increment of the same Vcycle:
            // at Vcycle 4's position 2, four increments have committed.
            assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 4, "{engine:?}");
        }
    }

    #[test]
    fn adjacent_alu_pairs_fuse() {
        let mut binary = empty_binary(1, 1, 8);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(2),
                    rs2: r(2),
                },
                Instruction::Alu {
                    op: AluOp::Xor,
                    rd: r(3),
                    rs1: r(2),
                    rs2: r(2),
                },
                Instruction::Nop,
                Instruction::Alu {
                    op: AluOp::Or,
                    rd: r(4),
                    rs1: r(2),
                    rs2: r(2),
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(2), 5)],
            init_scratch: vec![],
        });
        let m = Machine::load(test_config(1, 1), &binary).unwrap();
        let (uops, fused) = m.micro_op_stats().expect("replayable");
        // Positions 0+1 fuse; the NOP gap keeps position 3 single.
        assert_eq!((uops, fused), (2, 1));
        // And the fused stream computes the same values.
        let mut m = m;
        m.run_vcycles(3).unwrap();
        assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 10);
        assert_eq!(m.read_reg(CoreId::new(0, 0), r(3)), 0);
        assert_eq!(m.read_reg(CoreId::new(0, 0), r(4)), 5);
    }

    /// A write at the last position whose commit window reaches a read
    /// early in the next Vcycle: a hazard that only exists *across* the
    /// Vcycle boundary, invisible to the validation Vcycle.
    fn cross_boundary_hazard_binary() -> Binary {
        let mut binary = empty_binary(1, 1, 3);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                // Position 0: reads r1. In Vcycle 0 nothing is pending;
                // from Vcycle 1 on, the position-2 write (commits at
                // 3k+2+2, i.e. position 1 of the next Vcycle) is still
                // in flight here.
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(3),
                    rs1: r(1),
                    rs2: r(0),
                },
                Instruction::Nop,
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 0), (r(2), 1)],
            init_scratch: vec![],
        });
        binary
    }

    #[test]
    fn cross_boundary_hazard_reported_identically_by_every_engine() {
        // Strict mode: the interpreter reports the hazard at Vcycle 1
        // position 0. The micro-op engine cannot run hazard checks, so it
        // must detect the static cross-boundary window and defer to the
        // tape engine — reporting the identical error.
        let expect_hazard = |m: &mut Machine, what: &str| match m.run_vcycles(5) {
            Err(MachineError::Hazard { position, reg, .. }) => {
                assert_eq!((position, reg), (0, r(1)), "{what}");
            }
            other => panic!("{what}: expected hazard, got {other:?}"),
        };
        for engine in [None, Some(ReplayEngine::Tape), Some(ReplayEngine::MicroOps)] {
            for mode in [ExecMode::Serial, ExecMode::Parallel { shards: 1 }] {
                let mut m =
                    Machine::load(test_config(1, 1), &cross_boundary_hazard_binary()).unwrap();
                match engine {
                    None => m.set_replay(false),
                    Some(e) => m.set_replay_engine(e),
                }
                m.set_exec_mode(mode);
                expect_hazard(&mut m, &format!("{engine:?}/{mode:?}"));
            }
        }
    }

    #[test]
    fn cross_boundary_stale_reads_agree_in_permissive_mode() {
        // Permissive mode: the same program runs, reading stale values
        // across the boundary. The micro-op engine keeps the pipeline
        // ring here, so its stale-read timing must match the interpreter
        // bit-for-bit.
        let mut reference =
            Machine::load(test_config(1, 1), &cross_boundary_hazard_binary()).unwrap();
        reference.set_strict_hazards(false);
        reference.set_replay(false);
        reference.run_vcycles(6).unwrap();
        for engine in [ReplayEngine::Tape, ReplayEngine::MicroOps] {
            let mut m = Machine::load(test_config(1, 1), &cross_boundary_hazard_binary()).unwrap();
            m.set_strict_hazards(false);
            m.set_replay_engine(engine);
            m.run_vcycles(6).unwrap();
            for reg in [r(1), r(3)] {
                assert_eq!(
                    reference.read_reg(CoreId::new(0, 0), reg),
                    m.read_reg(CoreId::new(0, 0), reg),
                    "{engine:?}: {reg}"
                );
            }
            assert_eq!(reference.counters(), m.counters(), "{engine:?}");
        }
    }
}

mod noc_unit {
    //! Direct unit tests for the NoC message queue: `take_due` must yield
    //! arrival order, stable in injection order for equal arrival times —
    //! the property the epilogue slot assignment (and with it every
    //! delivered value) depends on.

    use manticore_isa::{CoreId, MachineConfig};

    use super::r;
    use crate::noc::Noc;

    fn noc() -> Noc {
        Noc::new(&MachineConfig {
            grid_width: 4,
            grid_height: 4,
            injection_latency: 0,
            hop_latency: 0,
            ..Default::default()
        })
    }

    #[test]
    fn equal_arrivals_keep_injection_order() {
        // Zero-latency config: every message injected at `now` arrives at
        // `now`, so ordering falls back entirely to injection order.
        let mut n = noc();
        let target = CoreId::new(1, 0);
        for i in 0..5u16 {
            n.send(CoreId::new(0, 0), target, r(i), i, 7, 0, false)
                .unwrap();
        }
        let due = n.take_due(7);
        let values: Vec<u16> = due.iter().map(|m| m.value).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert!(n.in_flight.is_empty());
    }

    #[test]
    fn arrival_order_sorts_before_injection_order() {
        // Injected out of arrival order (different hop counts): the due
        // list is sorted by arrival, injection order breaking ties.
        let mut n = Noc::new(&MachineConfig {
            grid_width: 8,
            grid_height: 1,
            injection_latency: 1,
            hop_latency: 2,
            ..Default::default()
        });
        // hops = distance: far target first (arrives later).
        n.send(CoreId::new(0, 0), CoreId::new(3, 0), r(1), 30, 0, 0, false)
            .unwrap(); // arrive 0+1+3*2 = 7
        n.send(CoreId::new(0, 0), CoreId::new(1, 0), r(2), 10, 0, 0, false)
            .unwrap(); // arrive 0+1+1*2 = 3
        n.send(CoreId::new(2, 0), CoreId::new(3, 0), r(3), 11, 0, 0, false)
            .unwrap(); // arrive 0+1+1*2 = 3, injected after
        assert!(n.take_due(2).is_empty());
        let due = n.take_due(100);
        let values: Vec<u16> = due.iter().map(|m| m.value).collect();
        assert_eq!(values, vec![10, 11, 30]);
    }

    #[test]
    fn not_due_messages_stay_queued_in_order() {
        let mut n = noc();
        let t = CoreId::new(1, 1);
        n.send(CoreId::new(0, 0), t, r(0), 1, 5, 0, false).unwrap();
        n.send(CoreId::new(0, 0), t, r(0), 2, 9, 0, false).unwrap();
        n.send(CoreId::new(0, 0), t, r(0), 3, 5, 0, false).unwrap();
        let due = n.take_due(5);
        assert_eq!(due.iter().map(|m| m.value).collect::<Vec<_>>(), vec![1, 3]);
        // The survivor keeps its place for the next scan.
        assert_eq!(n.in_flight.len(), 1);
        assert_eq!(n.take_due(9)[0].value, 2);
    }
}

mod cache_unit {
    //! Direct unit tests for the cache + DRAM model (the global-stall
    //! timing source of Fig. 8).

    use manticore_isa::CacheConfig;

    use crate::Cache;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig {
            capacity_words: 64,
            line_words: 8,
            hit_stall: 2,
            miss_stall: 10,
            writeback_stall: 5,
        })
    }

    #[test]
    fn cold_miss_then_hits_within_line() {
        let mut c = small_cache();
        c.write_dram(3, 77);
        let (v, stall) = c.load(3);
        assert_eq!(v, 77);
        assert_eq!(stall, 12); // hit_stall + miss_stall
                               // Same line: hits.
        for addr in 0..8 {
            let (_, stall) = c.load(addr);
            assert_eq!(stall, 2, "address {addr} should hit");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 8);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = small_cache(); // 8 lines of 8 words
        c.write_dram(0, 11);
        c.write_dram(64, 22); // maps to the same line (64 words capacity)
        let (v1, _) = c.load(0);
        let (v2, _) = c.load(64);
        let (v3, _) = c.load(0); // evicted, miss again
        assert_eq!((v1, v2, v3), (11, 22, 11));
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().writebacks, 0); // clean evictions
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small_cache();
        let s1 = c.store(0, 99); // miss + fill + dirty
        assert_eq!(s1, 12);
        let s2 = c.load(64).1; // evicts dirty line 0: writeback + fill
        assert_eq!(s2, 17); // hit(2) + miss(10) + writeback(5)
        assert_eq!(c.stats().writebacks, 1);
        // The value survived in DRAM.
        let (v, _) = c.load(0);
        assert_eq!(v, 99);
    }

    #[test]
    fn peek_sees_dirty_cached_data() {
        let mut c = small_cache();
        c.store(5, 42);
        assert_eq!(c.peek(5), 42); // cached, not yet in DRAM
        assert_eq!(c.peek(64 + 5), 0); // different line, untouched
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = small_cache();
        c.load(0); // miss
        c.load(1); // hit
        c.load(2); // hit
        c.load(3); // hit
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-9);
    }
}

mod carry_borrow_boundary {
    //! Exhaustive 16-bit boundary vectors for the `AddCarry`/`SubBorrow`
    //! carry/borrow conventions: the wide-arithmetic correctness of every
    //! compiled design rests on these two instructions agreeing with the
    //! compiler's lowering. Convention under test:
    //!
    //! - `AddCarry`: `rd = (a + b + cin) mod 2^16`, carry-out set iff the
    //!   true sum exceeds `0xffff`;
    //! - `SubBorrow`: `rd = (a - b - (1 - cin)) mod 2^16`, carry-out set
    //!   iff no borrow occurred (`a - b - (1 - cin) >= 0`) — carry means
    //!   "no borrow", the classic subtract-with-carry convention.

    use super::*;

    /// The interesting 16-bit values: zero/one neighborhoods, the signed
    /// boundary, and the wrap-around neighborhood.
    const BOUNDARY: [u16; 9] = [
        0x0000, 0x0001, 0x0002, 0x7ffe, 0x7fff, 0x8000, 0x8001, 0xfffe, 0xffff,
    ];

    /// Runs one carry-chain probe program and returns `(result, carry_out)`.
    ///
    /// Position 0 manufactures the carry-in flag (`0xffff + 0xffff` sets
    /// carry, `0 + 0` clears it); the probed instruction executes at
    /// position 2 (after the 2-cycle hazard latency); a second chained
    /// instruction at position 4 exposes the probe's carry-out as a value.
    fn probe(op: fn(Reg, Reg, Reg, Reg) -> Instruction, a: u16, b: u16, cin: bool) -> (u16, u16) {
        let flag_src = if cin { 0xffff } else { 0x0000 };
        let mut binary = empty_binary(1, 1, 8);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                // r20 = flag_src + flag_src: carry set iff flag_src != 0.
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(20),
                    rs1: r(5),
                    rs2: r(5),
                },
                Instruction::Nop,
                op(r(10), r(1), r(2), r(20)),
                Instruction::Nop,
                // Chain a second op off r10's carry with zero operands, so
                // its value readout *is* the carry-out (AddCarry: 0+0+c;
                // SubBorrow: 0-0-(1-c) = 0 if c else 0xffff).
                op(r(11), r(0), r(0), r(10)),
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), a), (r(2), b), (r(5), flag_src)],
            init_scratch: vec![],
        });
        let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
        m.run_vcycles(1).unwrap();
        (
            m.read_reg(CoreId::new(0, 0), r(10)),
            m.read_reg(CoreId::new(0, 0), r(11)),
        )
    }

    #[test]
    fn add_carry_boundary_vectors_exhaustive() {
        let mk = |rd, rs1, rs2, rs_carry| Instruction::AddCarry {
            rd,
            rs1,
            rs2,
            rs_carry,
        };
        for a in BOUNDARY {
            for b in BOUNDARY {
                for cin in [false, true] {
                    let (value, carry_probe) = probe(mk, a, b, cin);
                    let sum = a as u32 + b as u32 + cin as u32;
                    assert_eq!(
                        value, sum as u16,
                        "AddCarry value: {a:#06x} + {b:#06x} + {}",
                        cin as u8
                    );
                    let carry_out = sum > 0xffff;
                    // Probe chain: 0 + 0 + carry_out.
                    assert_eq!(
                        carry_probe, carry_out as u16,
                        "AddCarry carry-out: {a:#06x} + {b:#06x} + {}",
                        cin as u8
                    );
                }
            }
        }
    }

    #[test]
    fn sub_borrow_boundary_vectors_exhaustive() {
        let mk = |rd, rs1, rs2, rs_borrow| Instruction::SubBorrow {
            rd,
            rs1,
            rs2,
            rs_borrow,
        };
        for a in BOUNDARY {
            for b in BOUNDARY {
                for cin in [false, true] {
                    let (value, borrow_probe) = probe(mk, a, b, cin);
                    let diff = a as i32 - b as i32 - (1 - cin as i32);
                    assert_eq!(
                        value, diff as u16,
                        "SubBorrow value: {a:#06x} - {b:#06x}, cin {}",
                        cin as u8
                    );
                    let no_borrow = diff >= 0;
                    // Probe chain: 0 - 0 - (1 - carry_out).
                    let expected_probe = if no_borrow { 0x0000 } else { 0xffff };
                    assert_eq!(
                        borrow_probe, expected_probe,
                        "SubBorrow borrow-out: {a:#06x} - {b:#06x}, cin {}",
                        cin as u8
                    );
                }
            }
        }
    }
}

mod parallel_engine {
    //! The sharded BSP engine must be bit-identical to the serial engine:
    //! same registers, displays, counters, cache behaviour, and errors,
    //! at every shard count.

    use super::*;
    use crate::ExecMode;

    /// A 2×2 grid where every core counts and sends its count around a
    /// ring, and the privileged core additionally exercises the global
    /// memory path and a display exception — all cross-core and
    /// host-visible mechanisms in one program.
    fn ring_binary() -> Binary {
        let ring = [
            CoreId::new(0, 0),
            CoreId::new(1, 0),
            CoreId::new(1, 1),
            CoreId::new(0, 1),
        ];
        let mut binary = empty_binary(2, 2, 16);
        binary.exceptions.push(ExceptionDescriptor {
            id: ExceptionId(0),
            kind: ExceptionKind::Display {
                format: "count = {}".into(),
                args: vec![(vec![r(1)], 16)],
            },
        });
        for (i, &core) in ring.iter().enumerate() {
            let next = ring[(i + 1) % ring.len()];
            let mut body = vec![
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
                Instruction::Nop,
                Instruction::Send {
                    target: next,
                    rd_remote: r(5),
                    rs: r(2),
                },
            ];
            if core == CoreId::PRIVILEGED {
                body.extend([
                    Instruction::Predicate { rs: r(2) },
                    Instruction::GlobalStore {
                        rs_data: r(1),
                        rs_addr: [r(0), r(0), r(0)],
                    },
                    Instruction::Nop,
                    Instruction::GlobalLoad {
                        rd: r(6),
                        rs_addr: [r(0), r(0), r(0)],
                    },
                    Instruction::Expect {
                        rs1: r(1),
                        rs2: r(0),
                        eid: 0,
                    },
                ]);
            }
            body.resize(10, Instruction::Nop);
            binary.cores.push(CoreImage {
                core,
                body,
                epilogue_len: 1,
                custom_functions: vec![],
                init_regs: vec![(r(1), i as u16 * 10), (r(2), 1)],
                init_scratch: vec![],
            });
        }
        binary
    }

    /// Full architectural-state comparison through the host interface.
    fn assert_same_state(a: &Machine, b: &Machine, what: &str) {
        assert_eq!(a.counters(), b.counters(), "{what}: counters");
        assert_eq!(a.cache_stats(), b.cache_stats(), "{what}: cache stats");
        assert_eq!(
            a.executed_per_core(),
            b.executed_per_core(),
            "{what}: per-core executed"
        );
        let cfg = a.config();
        for y in 0..cfg.grid_height as u8 {
            for x in 0..cfg.grid_width as u8 {
                let core = CoreId::new(x, y);
                for reg in 0..8u16 {
                    assert_eq!(
                        a.read_reg(core, r(reg)),
                        b.read_reg(core, r(reg)),
                        "{what}: {core} r{reg}"
                    );
                }
            }
        }
        assert_eq!(a.read_global(0), b.read_global(0), "{what}: global[0]");
    }

    #[test]
    fn ring_matches_serial_at_every_shard_count() {
        let binary = ring_binary();
        let config = test_config(2, 2);
        let mut serial = Machine::load(config.clone(), &binary).unwrap();
        let s_out = serial.run_vcycles(5).unwrap();
        for shards in 1..=5 {
            let mut par = Machine::load(config.clone(), &binary).unwrap();
            par.set_exec_mode(ExecMode::Parallel { shards });
            let p_out = par.run_vcycles(5).unwrap();
            assert_eq!(s_out.displays, p_out.displays, "{shards} shards: displays");
            assert_eq!(
                s_out.vcycles_run, p_out.vcycles_run,
                "{shards} shards: vcycles"
            );
            assert_same_state(&serial, &par, &format!("{shards} shards"));
        }
    }

    #[test]
    fn mode_switch_mid_run_is_seamless() {
        let binary = ring_binary();
        let config = test_config(2, 2);
        let mut serial = Machine::load(config.clone(), &binary).unwrap();
        serial.run_vcycles(6).unwrap();

        let mut mixed = Machine::load(config.clone(), &binary).unwrap();
        mixed.run_vcycles(2).unwrap();
        mixed.set_exec_mode(ExecMode::Parallel { shards: 3 });
        mixed.run_vcycles(2).unwrap();
        mixed.set_exec_mode(ExecMode::Serial);
        mixed.run_vcycles(2).unwrap();
        assert_same_state(&serial, &mixed, "serial/parallel/serial interleave");
    }

    #[test]
    fn parallel_reports_the_serial_late_message_error() {
        // Same program as `late_message_detected`, under the parallel
        // engine at several shard counts — in permissive mode, where the
        // serial engine reports `LateMessage` at the delivery position.
        let binary = super::late_message_binary();
        for shards in 1..=2 {
            let mut m = Machine::load(test_config(2, 1), &binary).unwrap();
            m.set_strict_hazards(false);
            m.set_exec_mode(ExecMode::Parallel { shards });
            match m.run_vcycles(1) {
                Err(MachineError::LateMessage { core, slot }) => {
                    assert_eq!(core, CoreId::new(1, 0));
                    assert_eq!(slot, 0);
                }
                other => panic!("{shards} shards: expected late message, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_reports_the_serial_empty_slot_error() {
        // Strict mode: both engines must report the serial engine's
        // `MissingScheduledMessage` — the empty slot at issue outranks the
        // late delivery that would have filled it.
        let binary = super::late_message_binary();
        for shards in 1..=2 {
            let mut m = Machine::load(test_config(2, 1), &binary).unwrap();
            m.set_exec_mode(ExecMode::Parallel { shards });
            match m.run_vcycles(1) {
                Err(MachineError::MissingScheduledMessage {
                    core,
                    slot,
                    position,
                }) => {
                    assert_eq!(core, CoreId::new(1, 0), "{shards} shards");
                    assert_eq!(slot, 0, "{shards} shards");
                    assert_eq!(position, 0, "{shards} shards");
                }
                other => {
                    panic!("{shards} shards: expected missing scheduled message, got {other:?}")
                }
            }
        }
    }

    #[test]
    fn parallel_reports_the_serial_hazard_error() {
        // Two cores, both with hazards; the serial engine reports the
        // earlier (position, core) one — so must every shard count.
        let hazard_body = |filler: usize| {
            let mut b = vec![Instruction::Nop; filler];
            b.extend([
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(2),
                    rs2: r(2),
                },
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(3),
                    rs1: r(1),
                    rs2: r(2),
                },
            ]);
            b
        };
        let mut binary = empty_binary(2, 1, 8);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: hazard_body(3), // hazard read at position 4
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(2), 5)],
            init_scratch: vec![],
        });
        binary.cores.push(CoreImage {
            core: CoreId::new(1, 0),
            body: hazard_body(1), // hazard read at position 2 — earlier
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(2), 5)],
            init_scratch: vec![],
        });
        let expect_err = |m: &mut Machine, what: &str| match m.run_vcycles(1) {
            Err(MachineError::Hazard {
                core,
                position,
                reg,
            }) => {
                assert_eq!(core, CoreId::new(1, 0), "{what}: core");
                assert_eq!(position, 2, "{what}: position");
                assert_eq!(reg, r(1), "{what}: reg");
            }
            other => panic!("{what}: expected hazard, got {other:?}"),
        };
        let mut serial = Machine::load(test_config(2, 1), &binary).unwrap();
        expect_err(&mut serial, "serial");
        for shards in 1..=2 {
            let mut par = Machine::load(test_config(2, 1), &binary).unwrap();
            par.set_exec_mode(ExecMode::Parallel { shards });
            expect_err(&mut par, "parallel");
        }
    }

    #[test]
    fn finish_stops_parallel_run() {
        let mut binary = empty_binary(1, 1, 8);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
                Instruction::Nop,
                Instruction::Nop,
                Instruction::Alu {
                    op: AluOp::Seq,
                    rd: r(4),
                    rs1: r(1),
                    rs2: r(3),
                },
                Instruction::Nop,
                Instruction::Nop,
                Instruction::Expect {
                    rs1: r(4),
                    rs2: r(0),
                    eid: 0,
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 0), (r(2), 1), (r(3), 3)],
            init_scratch: vec![],
        });
        binary.exceptions.push(ExceptionDescriptor {
            id: ExceptionId(0),
            kind: ExceptionKind::Finish,
        });
        let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
        m.set_exec_mode(ExecMode::Parallel { shards: 4 }); // clamps to 1 core
        let out = m.run_vcycles(100).unwrap();
        assert!(out.finished);
        assert_eq!(out.vcycles_run, 3);
        // Further runs are no-ops, as in serial mode.
        assert_eq!(m.run_vcycles(5).unwrap().vcycles_run, 0);
    }

    #[test]
    fn counter_merge_is_order_independent() {
        let mk = |i: u64, s: u64, st: u64| crate::PerfCounters {
            instructions: i,
            sends: s,
            stall_cycles: st,
            ..Default::default()
        };
        let parts = [mk(3, 1, 200), mk(5, 0, 0), mk(7, 2, 10), mk(11, 4, 40)];
        let mut fwd = crate::PerfCounters::default();
        for p in &parts {
            fwd.merge_from(p);
        }
        let mut rev = crate::PerfCounters::default();
        for p in parts.iter().rev() {
            rev.merge_from(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.instructions, 26);
        assert_eq!(fwd.sends, 7);
        assert_eq!(fwd.stall_cycles, 250);
    }
}

mod failed_run_displays {
    //! A failed multi-Vcycle run must not lose the `$display` output that
    //! fired before the failure — on either engine.

    use super::*;
    use crate::ExecMode;

    fn display_then_assert_binary() -> Binary {
        let mut binary = empty_binary(1, 1, 8);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
                Instruction::Nop,
                Instruction::Nop,
                // display every Vcycle (r1 != 0 after the first increment)
                Instruction::Expect {
                    rs1: r(1),
                    rs2: r(0),
                    eid: 0,
                },
                Instruction::Alu {
                    op: AluOp::Seq,
                    rd: r(4),
                    rs1: r(1),
                    rs2: r(3),
                },
                Instruction::Nop,
                Instruction::Nop,
                // assert-fail once r1 == 3
                Instruction::Expect {
                    rs1: r(4),
                    rs2: r(0),
                    eid: 1,
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 0), (r(2), 1), (r(3), 3)],
            init_scratch: vec![],
        });
        binary.exceptions.push(ExceptionDescriptor {
            id: ExceptionId(0),
            kind: ExceptionKind::Display {
                format: "n = {}".into(),
                args: vec![(vec![r(1)], 16)],
            },
        });
        binary.exceptions.push(ExceptionDescriptor {
            id: ExceptionId(1),
            kind: ExceptionKind::AssertFail {
                message: "boom".into(),
            },
        });
        binary
    }

    #[test]
    fn prefailure_displays_survive_on_both_engines() {
        let binary = display_then_assert_binary();
        for mode in [ExecMode::Serial, ExecMode::Parallel { shards: 2 }] {
            let mut m = Machine::load(test_config(1, 1), &binary).unwrap();
            m.set_exec_mode(mode);
            match m.run_vcycles(10) {
                Err(MachineError::AssertFailed { message, vcycle }) => {
                    assert_eq!(message, "boom", "{mode:?}");
                    assert_eq!(vcycle, 2, "{mode:?}");
                }
                other => panic!("{mode:?}: expected assert failure, got {other:?}"),
            }
            assert_eq!(
                m.drain_pending_displays(),
                vec!["n = 1", "n = 2", "n = 3"],
                "{mode:?}: pre-failure displays"
            );
            // Drained means drained: a second call yields nothing.
            assert!(m.drain_pending_displays().is_empty(), "{mode:?}");
        }
    }
}

/// Gang-engine bring-up: the lane-batched lockstep engine against solo
/// machines on hand-assembled programs (the workload-level equivalence
/// sweep lives in `tests/gang_equivalence.rs`).
mod gang_bringup {
    use super::*;
    use crate::{CompiledProgram, GangMachine, ReplayEngine};
    use std::sync::Arc;

    /// `r1 += r2` once per Vcycle; per-lane pokes of `r2` give every lane
    /// a distinct increment.
    fn counter_program() -> Arc<CompiledProgram> {
        let mut binary = empty_binary(1, 1, 4);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![Instruction::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            }],
            epilogue_len: 0,
            custom_functions: vec![],
            init_regs: vec![(r(1), 0), (r(2), 1)],
            init_scratch: vec![],
        });
        CompiledProgram::compile_shared(test_config(1, 1), &binary).unwrap()
    }

    #[test]
    fn gang_lanes_match_solo_machines_on_every_engine_knob() {
        let program = counter_program();
        let c00 = CoreId::new(0, 0);
        for (engine, strict) in [
            (Some(ReplayEngine::MicroOps), true),
            (Some(ReplayEngine::MicroOps), false),
            (Some(ReplayEngine::Tape), true),
            (None, true), // replay disabled: pure solo-fallback gang
        ] {
            let lanes = 3;
            let mut gang = GangMachine::from_program(Arc::clone(&program), lanes);
            gang.set_strict_hazards(strict);
            match engine {
                Some(e) => gang.set_replay_engine(e),
                None => gang.set_replay(false),
            }
            let mut solos: Vec<Machine> = (0..lanes)
                .map(|lane| {
                    let mut m = Machine::from_program(Arc::clone(&program));
                    m.set_strict_hazards(strict);
                    match engine {
                        Some(e) => m.set_replay_engine(e),
                        None => m.set_replay(false),
                    }
                    m.poke_reg(c00, r(2), (lane + 1) as u16);
                    m
                })
                .collect();
            for (lane, _) in solos.iter().enumerate() {
                gang.poke_reg(lane, c00, r(2), (lane + 1) as u16);
            }
            let results = gang.run_vcycles(10);
            for (lane, solo) in solos.iter_mut().enumerate() {
                let what = format!("engine {engine:?} strict {strict} lane {lane}");
                let solo_out = solo.run_vcycles(10).unwrap();
                let gang_out = results[lane].as_ref().unwrap();
                assert_eq!(gang_out.vcycles_run, solo_out.vcycles_run, "{what}");
                assert_eq!(
                    gang.read_reg(lane, c00, r(1)),
                    solo.read_reg(c00, r(1)),
                    "{what}"
                );
                assert_eq!(gang.counters(lane), solo.counters(), "{what}");
            }
        }
    }

    /// A program that asserts `r1 != r3` every Vcycle (`Seq` + `Expect`):
    /// poking `r3` arms a fault at exactly the Vcycle the counter reaches
    /// it.
    fn tripwire_program() -> Arc<CompiledProgram> {
        let mut binary = empty_binary(1, 1, 6);
        binary.cores.push(CoreImage {
            core: CoreId::new(0, 0),
            body: vec![
                Instruction::Alu {
                    op: AluOp::Seq,
                    rd: r(4),
                    rs1: r(1),
                    rs2: r(3),
                },
                Instruction::Nop,
                Instruction::Expect {
                    rs1: r(4),
                    rs2: r(0),
                    eid: 7,
                },
                Instruction::Alu {
                    op: AluOp::Add,
                    rd: r(1),
                    rs1: r(1),
                    rs2: r(2),
                },
            ],
            epilogue_len: 0,
            custom_functions: vec![],
            // r3 defaults far out of reach; a poke brings it into range.
            init_regs: vec![(r(1), 0), (r(2), 1), (r(3), 0x7fff)],
            init_scratch: vec![],
        });
        binary.exceptions.push(ExceptionDescriptor {
            id: ExceptionId(7),
            kind: ExceptionKind::AssertFail {
                message: "tripwire".into(),
            },
        });
        CompiledProgram::compile_shared(test_config(1, 1), &binary).unwrap()
    }

    #[test]
    fn faulting_lane_parks_while_survivors_run_to_completion() {
        let program = tripwire_program();
        let c00 = CoreId::new(0, 0);
        let lanes = 4;
        let tripped = 2usize; // lane 2 faults when the counter reaches 5
        let mut gang = GangMachine::from_program(Arc::clone(&program), lanes);
        gang.poke_reg(tripped, c00, r(3), 5);
        let results = gang.run_vcycles(12);

        // The tripped lane reports the solo machine's exact error...
        let mut solo = Machine::from_program(Arc::clone(&program));
        solo.poke_reg(c00, r(3), 5);
        let solo_err = solo.run_vcycles(12).unwrap_err();
        match (&results[tripped], &solo_err) {
            (Err(g), s) => assert_eq!(format!("{g}"), format!("{s}")),
            other => panic!("expected lane {tripped} to fault, got {other:?}"),
        }
        // ...with state and counters frozen at the solo abort point.
        assert_eq!(gang.read_reg(tripped, c00, r(1)), solo.read_reg(c00, r(1)));
        assert_eq!(gang.counters(tripped), solo.counters());

        // Surviving lanes are untouched by the parked one.
        let mut clean = Machine::from_program(Arc::clone(&program));
        let clean_out = clean.run_vcycles(12).unwrap();
        for lane in (0..lanes).filter(|&l| l != tripped) {
            let out = results[lane].as_ref().unwrap();
            assert_eq!(out.vcycles_run, clean_out.vcycles_run, "lane {lane}");
            assert_eq!(
                gang.read_reg(lane, c00, r(1)),
                clean.read_reg(c00, r(1)),
                "lane {lane}"
            );
            assert_eq!(gang.counters(lane), clean.counters(), "lane {lane}");
        }

        // A later call keeps reporting the recorded fault and runs no
        // further Vcycles on the parked lane.
        let frozen = gang.counters(tripped);
        let again = gang.run_vcycles(3);
        assert!(again[tripped].is_err());
        assert_eq!(gang.counters(tripped), frozen);
    }

    #[test]
    fn into_machines_yields_resumable_solo_runs() {
        let program = counter_program();
        let c00 = CoreId::new(0, 0);
        let mut gang = GangMachine::from_program(Arc::clone(&program), 2);
        gang.poke_reg(1, c00, r(2), 3);
        let results = gang.run_vcycles(4);
        assert!(results.iter().all(|r| r.is_ok()));
        let mut machines = gang.into_machines();
        assert_eq!(machines[0].read_reg(c00, r(1)), 4);
        assert_eq!(machines[1].read_reg(c00, r(1)), 12);
        // Resuming an unbundled lane continues exactly where it stopped.
        machines[1].run_vcycles(2).unwrap();
        assert_eq!(machines[1].read_reg(c00, r(1)), 18);
    }
}

/// The gang's direct-commit ALU word kernels must be bit-equivalent to
/// `AluOp::eval` composed with the register-word storage format, for
/// every op and any carry bits on the input words.
#[test]
fn alu_word_matches_eval() {
    use manticore_util::SmallRng;
    let edges = [0u16, 1, 2, 15, 16, 17, 0x7fff, 0x8000, 0xfffe, 0xffff];
    let mut cases: Vec<(u32, u32)> = Vec::new();
    for &a in &edges {
        for &b in &edges {
            // Also set carry bits on the inputs: the kernels must mask
            // them out exactly like `as u16` does in the eval path.
            cases.push((a as u32, b as u32));
            cases.push((a as u32 | 1 << 16, b as u32));
            cases.push((a as u32, b as u32 | 1 << 16));
        }
    }
    let mut rng = SmallRng::seed_from_u64(0xa10);
    for _ in 0..20_000 {
        let a = rng.gen_range(0..1usize << 17) as u32;
        let b = rng.gen_range(0..1usize << 17) as u32;
        cases.push((a, b));
    }
    for op in manticore_isa::AluOp::ALL {
        for &(a, b) in &cases {
            let (v, c) = op.eval(a as u16, b as u16);
            let expect = v as u32 | ((c as u32) << 16);
            assert_eq!(
                crate::gang::alu_word(op, a, b),
                expect,
                "{op:?} a={a:#x} b={b:#x}"
            );
        }
    }
}

/// The bitsliced custom-function evaluation (transposed masks + mux
/// tree, and its 4-lane packed form) must match the reference
/// bit-at-a-time `eval_custom` for random tables and inputs.
#[test]
fn custom_masks_match_reference() {
    use crate::exec::{eval_custom, eval_custom_masks, eval_custom_masks_x4, transpose_custom};
    use manticore_util::SmallRng;
    let mut rng = SmallRng::seed_from_u64(0xc057);
    let r16 = |rng: &mut SmallRng| rng.gen_range(0..0x10000usize) as u16;
    for _ in 0..200 {
        let mut table = [0u16; 16];
        for t in table.iter_mut() {
            *t = r16(&mut rng);
        }
        let masks = transpose_custom(&table);
        let mut m64 = [0u64; 16];
        for (packed, &m) in m64.iter_mut().zip(&masks) {
            *packed = m as u64 * 0x0001_0001_0001_0001;
        }
        let mut ins = [0u16; 16];
        for i in ins.iter_mut() {
            *i = r16(&mut rng);
        }
        for lane4 in ins.chunks_exact(4) {
            // Scalar bitsliced form.
            for w in lane4.windows(4) {
                assert_eq!(
                    eval_custom_masks(&masks, w[0], w[1], w[2], w[3]),
                    eval_custom(&table, w[0], w[1], w[2], w[3]),
                );
            }
            // Packed form: 4 independent (a, b, c, d) quads in the slots.
            let quads: Vec<[u16; 4]> = (0..4)
                .map(|k| {
                    [
                        lane4[k],
                        lane4[(k + 1) % 4],
                        lane4[(k + 2) % 4],
                        lane4[(k + 3) % 4],
                    ]
                })
                .collect();
            let pack = |sel: usize| -> u64 {
                quads
                    .iter()
                    .enumerate()
                    .map(|(k, q)| (q[sel] as u64) << (16 * k))
                    .sum()
            };
            let out = eval_custom_masks_x4(&m64, pack(0), pack(1), pack(2), pack(3));
            for (k, q) in quads.iter().enumerate() {
                assert_eq!(
                    ((out >> (16 * k)) & 0xffff) as u16,
                    eval_custom(&table, q[0], q[1], q[2], q[3]),
                );
            }
        }
    }
}

/// Sparse init images keep the dense form's last-write-wins semantics:
/// an explicit trailing zero cancels an earlier nonzero init.
#[test]
fn init_image_last_write_wins_through_sparse_form() {
    let mut binary = empty_binary(1, 1, 4);
    binary.cores.push(CoreImage {
        core: CoreId::new(0, 0),
        body: vec![Instruction::Nop],
        epilogue_len: 0,
        custom_functions: vec![],
        init_regs: vec![(r(1), 7), (r(1), 0), (r(2), 1), (r(2), 9)],
        init_scratch: vec![(3, 5), (3, 0), (4, 0), (4, 6)],
    });
    let m = Machine::load(test_config(1, 1), &binary).unwrap();
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(1)), 0, "zero overwrites 7");
    assert_eq!(m.read_reg(CoreId::new(0, 0), r(2)), 9, "9 overwrites 1");
    assert_eq!(m.read_scratch(CoreId::new(0, 0), 3), 0);
    assert_eq!(m.read_scratch(CoreId::new(0, 0), 4), 6);
}
