//! The machine itself: lockstep execution of the core grid, Vcycle framing,
//! global stall, host exception servicing.
//!
//! Machine state is structure-of-arrays: one contiguous `Vec<u32>` holds
//! every core's register file and one contiguous `Vec<u16>` every core's
//! scratchpad, sliced into per-core lanes (`CoreView`) for execution. The
//! layout keeps the hot replay paths walking adjacent memory and lets the
//! sharded engine hand each worker a disjoint `split_at_mut` window of the
//! whole machine.

use std::fmt;
use std::sync::Arc;

use manticore_isa::{Binary, CoreId, MachineConfig, Reg};

use crate::cache::{Cache, CacheStats};
use crate::core::{CoreState, CoreView};
use crate::exec::{core_id_of, exec_epilogue_slot, exec_instr, step_core, ExecEnv, SendRecord};
use crate::noc::{Message, Noc};
use crate::program::{CompiledProgram, CoreProgram};
use crate::replay::ReplayTape;
use crate::uops::run_core_uops;

/// Hardware performance counters (§7.7 uses these for the global-stall
/// experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Compute-domain cycles (the compute clock was running).
    pub compute_cycles: u64,
    /// Cycles the compute clock was gated off (cache accesses, exceptions).
    pub stall_cycles: u64,
    /// Virtual cycles completed.
    pub vcycles: u64,
    /// Non-NOP instructions executed, summed over cores.
    pub instructions: u64,
    /// `Send` instructions executed.
    pub sends: u64,
    /// Messages delivered into epilogue slots.
    pub messages_delivered: u64,
    /// Exceptions serviced by the host.
    pub exceptions: u64,
}

impl PerfCounters {
    /// Total machine cycles: compute + stall.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Fraction of time the grid was stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles() == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles() as f64
        }
    }

    /// Adds another counter block into this one.
    ///
    /// This is how the parallel engine aggregates shard-local counters at
    /// each Vcycle barrier. Every field is an event *count* (`u64`), so the
    /// aggregation is exact integer addition — associative and commutative —
    /// and the totals for `instructions`, `sends`, `stall_cycles`, and the
    /// rest are identical for any shard count and any merge order. (There
    /// are no floating-point fields here; ratios like
    /// [`PerfCounters::stall_fraction`] are derived *after* aggregation.)
    pub fn merge_from(&mut self, other: &PerfCounters) {
        self.compute_cycles += other.compute_cycles;
        self.stall_cycles += other.stall_cycles;
        self.vcycles += other.vcycles;
        self.instructions += other.instructions;
        self.sends += other.sends;
        self.messages_delivered += other.messages_delivered;
        self.exceptions += other.exceptions;
    }
}

/// A host-visible event produced during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEvent {
    /// A `$display` fired (already rendered).
    Display(String),
    /// `$finish` was requested.
    Finish,
}

/// Why a run stopped early at a Vcycle boundary without an error: a
/// cooperative interrupt, observed by the engines between Vcycles (see
/// [`Machine::set_cancel_token`] / [`Machine::set_deadline`]). The machine
/// state is consistent — the run can be checkpointed or resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The attached [`manticore_util::CancelToken`] tripped.
    Cancelled,
    /// The attached wall-clock deadline passed.
    Deadline,
}

/// Outcome of a [`Machine::run_vcycles`] call.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Vcycles actually simulated (may be fewer than requested if the
    /// design finished).
    pub vcycles_run: u64,
    /// True if a `$finish` fired.
    pub finished: bool,
    /// Rendered `$display` output in order.
    pub displays: Vec<String>,
    /// `Some` when the run stopped early on a cooperative interrupt
    /// (cancellation or deadline) rather than finishing or exhausting its
    /// Vcycle budget.
    pub interrupted: Option<Interrupt>,
}

/// Errors: load-time validation failures and runtime determinism
/// violations. Determinism violations indicate compiler bugs — on the real
/// hardware they would silently corrupt the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Binary does not fit or refers to resources outside the configuration.
    Load(String),
    /// An instruction read a register with an uncommitted in-flight write
    /// (the compiler failed to schedule around the pipeline latency).
    Hazard {
        /// Core that executed the read.
        core: CoreId,
        /// Position within the Vcycle.
        position: u64,
        /// The register read too early.
        reg: Reg,
    },
    /// Two messages claimed the same NoC link in the same cycle; the
    /// bufferless switch would drop one.
    LinkCollision {
        /// Description of the contended link.
        link: String,
        /// Position within the Vcycle.
        position: u64,
    },
    /// A message arrived after the PC had already passed its epilogue slot.
    LateMessage {
        /// Receiving core.
        core: CoreId,
        /// Epilogue slot index.
        slot: usize,
    },
    /// More messages arrived in one Vcycle than the core's declared
    /// epilogue length.
    EpilogueOverflow {
        /// Receiving core.
        core: CoreId,
    },
    /// Fewer messages arrived than the epilogue expects (a `Set` slot would
    /// execute garbage).
    MissingMessages {
        /// Receiving core.
        core: CoreId,
        /// Messages received.
        got: usize,
        /// Messages expected.
        expected: usize,
    },
    /// An epilogue slot reached instruction issue before its scheduled
    /// message arrived (strict mode): the hardware would execute a stale
    /// `SET`. Permissive mode keeps the treat-as-NOP behaviour and reports
    /// the shortfall as [`MachineError::MissingMessages`] at the wrap.
    MissingScheduledMessage {
        /// Receiving core.
        core: CoreId,
        /// Epilogue slot index.
        slot: usize,
        /// Position within the Vcycle at which the empty slot issued.
        position: u64,
    },
    /// A non-privileged core executed a privileged instruction.
    NotPrivileged {
        /// Offending core.
        core: CoreId,
    },
    /// An assertion (`Expect` with an `AssertFail` descriptor) failed.
    AssertFailed {
        /// The assertion message.
        message: String,
        /// Vcycle at which it failed.
        vcycle: u64,
    },
    /// An `Expect` raised an exception id absent from the binary's table.
    UnknownException {
        /// The raised id.
        eid: u16,
    },
    /// A [`crate::Checkpoint`] was restored onto (or forked against) a
    /// machine running a different [`crate::CompiledProgram`] than the one
    /// the snapshot was taken under. The target machine is left untouched.
    CheckpointMismatch {
        /// Identity of the program the checkpoint belongs to.
        expected: u64,
        /// Identity of the program the target machine runs.
        got: u64,
    },
    /// A fork requested an invalid lane count: zero, or wider than
    /// [`crate::MAX_LANES`]. Unlike [`crate::GangMachine::from_program`],
    /// which clamps, a fork is an explicit scenario-tree edge and a silent
    /// resize would corrupt the tree's bookkeeping.
    ForkWidth {
        /// The requested lane count.
        requested: usize,
    },
    /// A spurious fault planted by the fault-injection plane
    /// ([`Machine::inject_fault`], `manticore_fleet`'s `FaultPlan`). Real
    /// execution never produces this variant, so a harness can always tell
    /// injected failures from genuine determinism violations.
    Injected {
        /// Vcycle boundary the fault was planted at.
        vcycle: u64,
    },
    /// The host-side worker driving this job panicked; the job's state was
    /// discarded. Produced by the fleet's panic isolation, never by the
    /// machine itself.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Load(m) => write!(f, "load error: {m}"),
            MachineError::Hazard { core, position, reg } => write!(
                f,
                "data hazard: {core} read {reg} with an in-flight write at Vcycle position {position}"
            ),
            MachineError::LinkCollision { link, position } => {
                write!(f, "NoC collision on {link} at Vcycle position {position}")
            }
            MachineError::LateMessage { core, slot } => {
                write!(f, "message for {core} epilogue slot {slot} arrived late")
            }
            MachineError::EpilogueOverflow { core } => {
                write!(f, "epilogue overflow at {core}")
            }
            MachineError::MissingMessages { core, got, expected } => write!(
                f,
                "{core} received {got} messages but expects {expected} per Vcycle"
            ),
            MachineError::MissingScheduledMessage { core, slot, position } => write!(
                f,
                "{core} epilogue slot {slot} issued at Vcycle position {position} before its scheduled message arrived"
            ),
            MachineError::NotPrivileged { core } => {
                write!(f, "privileged instruction on non-privileged {core}")
            }
            MachineError::AssertFailed { message, vcycle } => {
                write!(f, "assertion failed at Vcycle {vcycle}: {message}")
            }
            MachineError::UnknownException { eid } => {
                write!(f, "unknown exception id {eid}")
            }
            MachineError::CheckpointMismatch { expected, got } => write!(
                f,
                "checkpoint belongs to program #{expected} but the machine runs program #{got}"
            ),
            MachineError::ForkWidth { requested } => write!(
                f,
                "fork width {requested} outside 1..={} lanes",
                crate::MAX_LANES
            ),
            MachineError::Injected { vcycle } => {
                write!(f, "injected fault at Vcycle {vcycle}")
            }
            MachineError::WorkerPanic { message } => {
                write!(f, "worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// How [`Machine::run_vcycles`] executes the grid.
///
/// Both modes are architecturally identical — same final registers, same
/// displays, same [`PerfCounters`] — because they share the per-core step
/// (the crate-private `exec` module) and differ only in scheduling. See
/// `ARCHITECTURE.md` for the phase/barrier structure of the parallel
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Step every core position-by-position on the calling thread.
    Serial,
    /// Sharded bulk-synchronous execution: the grid is split into
    /// `shards` contiguous shards, each stepped by its own worker thread
    /// between per-Vcycle barriers; NoC routing and delivery happen in a
    /// serial commit phase. `shards` is clamped to `1..=num_cores`.
    Parallel {
        /// Worker-thread count (one shard per thread).
        shards: usize,
    },
}

/// Which lowering the validate-once / replay-many fast path executes once
/// the validation Vcycle has proven the static schedule.
///
/// Both are bit-identical to the full interpreter; they differ only in how
/// much interpretation overhead survives per replayed position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEngine {
    /// The pre-decoded tape, executed through the shared interpreter
    /// executors (`exec_instr`), hazard checks and all.
    Tape,
    /// The fused micro-op stream over structure-of-arrays state: operands
    /// pre-resolved to flat offsets, dead hazard checks removed, counters
    /// bulk-accumulated, common adjacent pairs fused into one dispatch.
    /// The default.
    MicroOps,
}

/// The Manticore machine: one *run* of a compiled design.
///
/// The immutable side — validated per-core programs, exception table,
/// initial state images, the frozen replay tape and its micro-op
/// lowering — lives in a shared [`CompiledProgram`] behind an [`Arc`];
/// a `Machine` owns only the mutable run state (SoA register file and
/// scratchpad, pipeline rings, NoC, cache, counters). Booting additional
/// machines from the same artifact ([`Machine::from_program`]) is cheap
/// and embarrassingly parallel, which is what the fleet engine exploits.
#[derive(Debug)]
pub struct Machine {
    /// The shared compile-once artifact this run executes.
    pub(crate) program: Arc<CompiledProgram>,
    pub(crate) cores: Vec<CoreState>,
    /// Structure-of-arrays register file for the whole grid:
    /// `regfile_size` consecutive words per core, linear core order.
    pub(crate) regs: Vec<u32>,
    /// Structure-of-arrays scratchpad for the whole grid: `scratch_words`
    /// consecutive words per core, linear core order.
    pub(crate) scratch: Vec<u16>,
    pub(crate) noc: Noc,
    pub(crate) cache: Cache,
    pub(crate) compute_time: u64,
    pub(crate) counters: PerfCounters,
    pub(crate) strict_hazards: bool,
    pub(crate) finish_requested: bool,
    pub(crate) events: Vec<HostEvent>,
    pub(crate) exec_mode: ExecMode,
    /// Whether the validate-once / replay-many fast path may be used once
    /// the validation Vcycle has completed.
    pub(crate) replay_enabled: bool,
    /// Which replay lowering to execute (tape or fused micro-ops).
    pub(crate) replay_engine: ReplayEngine,
    /// True after [`Machine::set_strict_hazards`] re-armed hazard checks a
    /// permissive validation Vcycle never proved: the shared tape stays in
    /// the program (other runs may still use it), but *this* run must stay
    /// on the full per-position engines.
    pub(crate) tape_invalidated: bool,
    /// Reusable per-Vcycle scratch: `Send` records collected during a body
    /// phase. Hoisted onto the machine so the hot Vcycle loops allocate
    /// nothing per Vcycle.
    pub(crate) send_buf: Vec<SendRecord>,
    /// Reusable per-Vcycle scratch: micro-op engine send values.
    pub(crate) send_vals_buf: Vec<u16>,
    /// Reusable per-position scratch: messages due at one compute cycle
    /// (the interpreter's `take_due` scan).
    pub(crate) due_buf: Vec<Message>,
    /// The first error this run hit, recorded so a faulted machine keeps
    /// reporting it instead of re-executing from corrupt-adjacent state
    /// (and so the fleet can classify a resumed faulted job without
    /// running it).
    pub(crate) fault: Option<MachineError>,
    /// Cooperative run control (cancellation token, wall-clock deadline).
    /// Boxed behind an `Option` so the common uncontrolled run pays one
    /// null check per Vcycle and nothing else.
    pub(crate) control: Option<Box<RunControl>>,
}

/// Cooperative controls checked at Vcycle boundaries. Host-side only:
/// never part of the architectural state, never captured by checkpoints.
#[derive(Debug, Default, Clone)]
pub(crate) struct RunControl {
    pub(crate) cancel: Option<manticore_util::CancelToken>,
    pub(crate) deadline: Option<std::time::Instant>,
}

impl Machine {
    /// Boots a machine from a compiled binary: freezes the program
    /// ([`CompiledProgram::compile`]) and allocates fresh run state.
    ///
    /// To run the same binary many times, freeze once and share it:
    /// [`CompiledProgram::compile_shared`] + [`Machine::from_program`].
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Load`] if the binary does not fit the
    /// configuration (grid size, instruction memory, register file,
    /// scratchpad, custom-function slots) or places privileged
    /// instructions on a non-privileged core.
    pub fn load(config: MachineConfig, binary: &Binary) -> Result<Machine, MachineError> {
        Ok(Machine::from_program(Arc::new(CompiledProgram::compile(
            config, binary,
        )?)))
    }

    /// Boots a fresh run of an already-frozen program: allocates the
    /// mutable state (SoA register file and scratchpad from the initial
    /// images, pipeline rings, NoC, cache) and shares everything else.
    pub fn from_program(program: Arc<CompiledProgram>) -> Machine {
        let config = &program.config;
        let cores = program
            .cores
            .iter()
            .map(|p| CoreState::new(config.regfile_size, config.hazard_latency, p.epilogue_len))
            .collect();
        let mut cache = Cache::new(config.cache);
        for &(a, v) in &program.init_dram {
            cache.write_dram(a, v);
        }
        // Zeroed allocations (lazily-faulted pages) plus the sparse init
        // images: booting a run never copies full-size register or
        // scratchpad arrays.
        let mut regs = vec![0u32; program.cores.len() * config.regfile_size];
        for &(i, v) in &program.init_regs {
            regs[i as usize] = v;
        }
        let mut scratch = vec![0u16; program.cores.len() * config.scratch_words];
        for &(i, v) in &program.init_scratch {
            scratch[i as usize] = v;
        }
        Machine {
            noc: Noc::new(config),
            cache,
            cores,
            regs,
            scratch,
            compute_time: 0,
            counters: PerfCounters::default(),
            strict_hazards: true,
            finish_requested: false,
            events: Vec::new(),
            exec_mode: ExecMode::Serial,
            replay_enabled: true,
            replay_engine: ReplayEngine::MicroOps,
            tape_invalidated: false,
            send_buf: Vec::new(),
            send_vals_buf: Vec::new(),
            due_buf: Vec::new(),
            fault: None,
            control: None,
            program,
        }
    }

    /// The shared compile-once artifact this run executes — clone the
    /// `Arc` to boot more runs of the same design.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// Boots from the serialized byte form (the bootloader path).
    ///
    /// # Errors
    ///
    /// Propagates deserialization and load failures.
    pub fn boot_from_bytes(config: MachineConfig, bytes: &[u8]) -> Result<Machine, MachineError> {
        let binary = Binary::from_bytes(bytes).map_err(MachineError::Load)?;
        Machine::load(config, &binary)
    }

    /// Disables strict hazard checking: premature reads return stale data
    /// (what the real pipeline would do) instead of erroring. Used by
    /// failure-injection tests.
    ///
    /// *Enabling* strictness invalidates the replay tape and its micro-op
    /// lowering *for this run*: it re-arms hazard checks a permissive
    /// validation Vcycle never proved, and those checks rely on the full
    /// engines' position-major error ordering. (The tape itself lives in
    /// the shared [`CompiledProgram`] and stays available to other runs.)
    /// Relaxing to permissive only removes checks, so the tape stays valid
    /// (replay executes the same stale reads the permissive interpreter
    /// would).
    pub fn set_strict_hazards(&mut self, strict: bool) {
        if strict && !self.strict_hazards {
            self.tape_invalidated = true;
        }
        self.strict_hazards = strict;
    }

    /// Enables or disables the validate-once / replay-many fast path.
    ///
    /// Replay is enabled by default and is architecturally invisible: after
    /// the first Vcycle validates the static schedule (link collisions,
    /// delivery timing, epilogue accounting), subsequent Vcycles execute a
    /// frozen, pre-decoded schedule that skips NOPs, empty tail positions,
    /// and all per-position NoC bookkeeping — bit-identical results,
    /// measurably faster. Disable it to benchmark the full interpreter.
    /// See [`Machine::set_replay_engine`] for the two replay lowerings.
    pub fn set_replay(&mut self, enabled: bool) {
        self.replay_enabled = enabled;
    }

    /// Whether the replay fast path may be used (see [`Machine::set_replay`]).
    pub fn replay_enabled(&self) -> bool {
        self.replay_enabled
    }

    /// Selects which replay lowering post-validation Vcycles execute:
    /// the pre-decoded tape through the shared interpreter, or the fused
    /// micro-op stream ([`ReplayEngine::MicroOps`], the default). Both are
    /// bit-identical; the engine can be switched freely between
    /// [`Machine::run_vcycles`] calls.
    pub fn set_replay_engine(&mut self, engine: ReplayEngine) {
        self.replay_engine = engine;
    }

    /// The currently selected replay lowering.
    pub fn replay_engine(&self) -> ReplayEngine {
        self.replay_engine
    }

    /// Micro-op stream statistics for the loaded program, when one exists
    /// and is still usable by this run: `(micro_ops, fused_pairs)` summed
    /// over the grid. `fused_pairs` counts adjacent tape-entry pairs
    /// absorbed into a single dispatch.
    pub fn micro_op_stats(&self) -> Option<(usize, usize)> {
        if self.tape_invalidated {
            return None;
        }
        self.program.micro_op_stats()
    }

    /// True when replay is enabled *and* a frozen tape exists for the
    /// loaded program — i.e. post-validation Vcycles will actually replay.
    /// False for unreplayable programs or after the tape was invalidated
    /// for this run, where execution stays on the full per-position
    /// engines.
    pub fn replay_armed(&self) -> bool {
        self.replay_enabled && !self.tape_invalidated && self.program.replay_tape.is_some()
    }

    /// True when the next Vcycle will execute from the frozen replay
    /// schedule: replay is enabled, the program was replayable at load,
    /// and the validation Vcycle has completed.
    pub(crate) fn replay_active(&self) -> bool {
        self.replay_armed() && self.counters.vcycles > 0
    }

    /// True when the micro-op engine must defer to the tape engine: strict
    /// mode with a static cross-Vcycle-boundary hazard, where only the
    /// tape's live per-read checks reproduce the interpreter's error.
    pub(crate) fn uops_defer_to_tape(&self) -> bool {
        self.strict_hazards
            && self
                .program
                .micro_prog
                .as_ref()
                .is_some_and(|p| p.cross_hazard)
    }

    /// Selects the execution engine for subsequent [`Machine::run_vcycles`]
    /// calls. Modes can be switched freely between calls — both engines
    /// leave the machine in the same architectural state at every Vcycle
    /// boundary.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The currently selected execution engine.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.program.config
    }

    /// Machine cycles per Vcycle (the compiler's VCPL).
    pub fn vcycle_len(&self) -> u64 {
        self.program.vcycle_len
    }

    /// Performance counters accumulated so far.
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// This core's register-file lane of the SoA grid state.
    #[inline]
    pub(crate) fn reg_lane(&self, idx: usize) -> &[u32] {
        let rf = self.program.config.regfile_size;
        &self.regs[idx * rf..(idx + 1) * rf]
    }

    /// Reads a register as the host sees it at a Vcycle boundary (with
    /// in-flight writes applied).
    pub fn read_reg(&self, core: CoreId, reg: Reg) -> u16 {
        let idx = core.linear(self.program.config.grid_width);
        self.cores[idx].reg_value_flushed(self.reg_lane(idx), reg)
    }

    /// Overwrites a register's architectural value — the way a fleet job
    /// plants its per-run input vector before the first Vcycle, and a
    /// scenario fork diverges its children before resuming. Writes go to
    /// the committed register file, and any write still in the pipeline
    /// ring (a resumed run can carry one across the Vcycle boundary) is
    /// rewritten to the poked value, so the poke takes effect before the
    /// first (re)executed Vcycle and is never clobbered by a pre-poke
    /// value committing later — identical semantics to a fresh run.
    pub fn poke_reg(&mut self, core: CoreId, reg: Reg, value: u16) {
        let config = &self.program.config;
        let idx = core.linear(config.grid_width);
        self.regs[idx * config.regfile_size + reg.index()] = value as u32;
        self.cores[idx].override_pending(reg.0, value);
    }

    /// Reads a scratchpad word.
    pub fn read_scratch(&self, core: CoreId, addr: usize) -> u16 {
        let config = &self.program.config;
        let idx = core.linear(config.grid_width);
        self.scratch[idx * config.scratch_words + addr]
    }

    /// One core's whole scratchpad as a slice — the bulk form of
    /// [`Machine::read_scratch`], for state fingerprinting.
    pub fn core_scratch(&self, core: CoreId) -> &[u16] {
        let config = &self.program.config;
        let idx = core.linear(config.grid_width);
        &self.scratch[idx * config.scratch_words..(idx + 1) * config.scratch_words]
    }

    /// Reads a global-memory word (through the coherent host view).
    pub fn read_global(&self, addr: u64) -> u16 {
        self.cache.peek(addr)
    }

    /// An FNV-1a fingerprint of the run's full architectural state at a
    /// Vcycle boundary: the seven performance counters, every register of
    /// every core through the flushed host view ([`Machine::read_reg`]),
    /// every scratchpad word, and the finished flag. Two runs of one
    /// program are bit-identical exactly when their fingerprints agree —
    /// the summary the simulation service returns per job so a client (or
    /// the differential test suites) can hold a served result against a
    /// direct run without shipping megabytes of state.
    pub fn state_fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| h = (h ^ v).wrapping_mul(PRIME);
        let c = self.counters();
        for v in [
            c.compute_cycles,
            c.stall_cycles,
            c.vcycles,
            c.instructions,
            c.sends,
            c.messages_delivered,
            c.exceptions,
        ] {
            mix(v);
        }
        let config = &self.program.config;
        for y in 0..config.grid_height {
            for x in 0..config.grid_width {
                let core = CoreId::new(x as u8, y as u8);
                for r in 0..config.regfile_size {
                    mix(self.read_reg(core, Reg(r as u16)) as u64);
                }
                for &w in self.core_scratch(core) {
                    mix(w as u64);
                }
            }
        }
        mix(self.finished() as u64);
        h
    }

    /// Attaches (or with `None` detaches) a cooperative cancellation
    /// token: every engine polls it between Vcycles and stops with
    /// [`RunOutcome::interrupted`] = [`Interrupt::Cancelled`] once it
    /// trips. Host-side control only — never captured by checkpoints.
    pub fn set_cancel_token(&mut self, token: Option<manticore_util::CancelToken>) {
        self.control_mut().cancel = token;
        self.trim_control();
    }

    /// Attaches (or with `None` detaches) a wall-clock deadline: every
    /// engine polls it between Vcycles and stops with
    /// [`RunOutcome::interrupted`] = [`Interrupt::Deadline`] once it
    /// passes. A deadline already in the past stops the run before its
    /// first Vcycle, deterministically.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.control_mut().deadline = deadline;
        self.trim_control();
    }

    fn control_mut(&mut self) -> &mut RunControl {
        self.control.get_or_insert_with(Box::default)
    }

    /// Drops the control block again when both knobs are off, restoring
    /// the zero-cost (single null check) uncontrolled fast path.
    fn trim_control(&mut self) {
        if self
            .control
            .as_ref()
            .is_some_and(|c| c.cancel.is_none() && c.deadline.is_none())
        {
            self.control = None;
        }
    }

    /// The interrupt the next Vcycle boundary would observe, if any.
    /// Cancellation wins over an expired deadline (it is the stronger,
    /// caller-initiated signal).
    #[inline]
    pub(crate) fn check_interrupt(&self) -> Option<Interrupt> {
        let ctl = self.control.as_deref()?;
        if ctl.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Some(Interrupt::Cancelled);
        }
        if ctl.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            return Some(Interrupt::Deadline);
        }
        None
    }

    /// True once `$finish` fired: further [`Machine::run_vcycles`] calls
    /// return immediately with zero Vcycles run.
    pub fn finished(&self) -> bool {
        self.finish_requested
    }

    /// The error that aborted this run, if any. A faulted machine is
    /// parked: [`Machine::run_vcycles`] keeps returning the recorded error
    /// without executing further Vcycles.
    pub fn fault(&self) -> Option<&MachineError> {
        self.fault.as_ref()
    }

    /// Plants `err` as this run's fault: the next [`Machine::run_vcycles`]
    /// call reports it without executing. The fault-injection plane's
    /// entry point (spurious [`MachineError::Injected`] faults), also
    /// usable to park a machine deliberately.
    pub fn inject_fault(&mut self, err: MachineError) {
        if self.fault.is_none() {
            self.fault = Some(err);
        }
    }

    /// Runs up to `max_vcycles` virtual cycles on the engine selected by
    /// [`Machine::set_exec_mode`].
    ///
    /// # Errors
    ///
    /// Any determinism violation or assertion failure aborts the run and
    /// parks the machine: the error is recorded ([`Machine::fault`]) and
    /// re-reported by subsequent calls without executing further Vcycles —
    /// mirroring a parked gang lane.
    pub fn run_vcycles(&mut self, max_vcycles: u64) -> Result<RunOutcome, MachineError> {
        if let Some(err) = &self.fault {
            return Err(err.clone());
        }
        let result = match self.exec_mode {
            ExecMode::Serial => self.run_vcycles_serial(max_vcycles),
            ExecMode::Parallel { shards } => {
                crate::parallel::run_vcycles_parallel(self, max_vcycles, shards)
            }
        };
        if let Err(e) = &result {
            self.fault = Some(e.clone());
        }
        result
    }

    fn run_vcycles_serial(&mut self, max_vcycles: u64) -> Result<RunOutcome, MachineError> {
        let mut outcome = RunOutcome::default();
        for _ in 0..max_vcycles {
            if self.finish_requested {
                break;
            }
            if let Some(stop) = self.check_interrupt() {
                outcome.interrupted = Some(stop);
                break;
            }
            if let Err(e) = self.step_vcycle() {
                self.requeue_displays(outcome.displays);
                return Err(e);
            }
            outcome.vcycles_run += 1;
            self.drain_events(&mut outcome);
            if outcome.finished {
                self.finish_requested = true;
                break;
            }
        }
        Ok(outcome)
    }

    /// Executes exactly one Vcycle on the serial engine, dispatching to
    /// the interpreter (validation / unreplayable programs) or the armed
    /// replay lowering. Shared by [`Machine::run_vcycles`] and the gang
    /// engine's per-lane fallback ([`crate::gang`]), so lane-at-a-time
    /// execution cannot drift from a solo run.
    pub(crate) fn step_vcycle(&mut self) -> Result<(), MachineError> {
        if self.replay_active() {
            match self.replay_engine {
                // A static cross-boundary hazard needs the tape
                // engine's live checks to report the interpreter's
                // exact error (no compiled workload has one).
                ReplayEngine::MicroOps if !self.uops_defer_to_tape() => self.run_one_vcycle_uops(),
                _ => self.run_one_vcycle_replay(),
            }
        } else {
            self.run_one_vcycle()
        }
    }

    /// Puts displays already drained into a partial outcome back at the
    /// front of the event queue, so a failed multi-Vcycle run does not
    /// lose the output that fired before the failure (it stays available
    /// via [`Machine::drain_pending_displays`]). Public for drivers that
    /// slice a budget across several `run_vcycles` calls (the fleet's
    /// fault-injection plane) and hit an error mid-slice.
    pub fn requeue_displays(&mut self, displays: Vec<String>) {
        if displays.is_empty() {
            return;
        }
        self.events
            .splice(0..0, displays.into_iter().map(HostEvent::Display));
    }

    /// Moves pending host events into `outcome` (both engines call this at
    /// every Vcycle boundary).
    pub(crate) fn drain_events(&mut self, outcome: &mut RunOutcome) {
        for ev in self.events.drain(..) {
            match ev {
                HostEvent::Display(s) => outcome.displays.push(s),
                HostEvent::Finish => outcome.finished = true,
            }
        }
    }

    /// Drains `$display` lines queued by a Vcycle that subsequently
    /// failed. On success [`Machine::run_vcycles`] delivers displays
    /// through [`RunOutcome`] and this returns nothing; after an error it
    /// yields the output that fired before the failure (and clears it, so
    /// it cannot leak into a later run's outcome).
    pub fn drain_pending_displays(&mut self) -> Vec<String> {
        self.events
            .drain(..)
            .filter_map(|ev| match ev {
                HostEvent::Display(s) => Some(s),
                HostEvent::Finish => None,
            })
            .collect()
    }

    fn run_one_vcycle(&mut self) -> Result<(), MachineError> {
        // Validate link-level NoC behaviour only on the first Vcycle: the
        // compute domain is deterministic and the program periodic, so the
        // link pattern repeats exactly.
        let validate = self.counters.vcycles == 0;
        let program = Arc::clone(&self.program);
        let config = &program.config;
        let rf = config.regfile_size;
        let sw = config.scratch_words;
        let env = ExecEnv {
            config,
            exceptions: &program.exceptions,
            strict_hazards: self.strict_hazards,
            vcycle: self.counters.vcycles,
        };
        // Reusable per-Vcycle scratch (error paths abandon the buffers;
        // an aborted run never executes another Vcycle that would miss
        // them).
        let mut sends = std::mem::take(&mut self.send_buf);
        let mut due = std::mem::take(&mut self.due_buf);
        sends.clear();
        due.clear();
        for pos in 0..program.vcycle_len {
            let now = self.compute_time;
            // Deliver due messages before issue so a slot filled at cycle t
            // is executable at cycle t.
            self.noc.take_due_into(now, &mut due);
            for msg in due.drain(..) {
                let idx = msg.target.linear(config.grid_width);
                let core = &mut self.cores[idx];
                match core.receive(msg.rd, msg.value) {
                    None => return Err(MachineError::EpilogueOverflow { core: msg.target }),
                    Some(slot) => {
                        // The PC must not have passed the slot yet.
                        if pos > (program.cores[idx].body.len() + slot) as u64 {
                            return Err(MachineError::LateMessage {
                                core: msg.target,
                                slot,
                            });
                        }
                    }
                }
                self.counters.messages_delivered += 1;
            }
            for idx in 0..self.cores.len() {
                let mut view = CoreView {
                    cs: &mut self.cores[idx],
                    prog: &program.cores[idx],
                    regs: &mut self.regs[idx * rf..(idx + 1) * rf],
                    scratch: &mut self.scratch[idx * sw..(idx + 1) * sw],
                };
                view.commit_due(now);
                let core_id = core_id_of(idx, config.grid_width);
                let cache = (core_id == CoreId::PRIVILEGED).then_some(&mut self.cache);
                step_core(
                    &env,
                    &mut view,
                    core_id,
                    pos,
                    now,
                    cache,
                    &mut self.counters,
                    &mut self.events,
                    &mut sends,
                )?;
                // Serial semantics: a recorded send enters the NoC
                // immediately, before the next core issues.
                for s in sends.drain(..) {
                    self.noc
                        .send(s.from, s.target, s.rd, s.value, now, pos, validate)
                        .map_err(|c| MachineError::LinkCollision {
                            link: c.link,
                            position: c.position,
                        })?;
                }
            }
            self.compute_time += 1;
            self.counters.compute_cycles += 1;
        }
        // Vcycle wrap: every expected message must have arrived.
        for (idx, core) in self.cores.iter_mut().enumerate() {
            let expected = program.cores[idx].epilogue_len;
            if core.received != expected {
                return Err(MachineError::MissingMessages {
                    core: core_id_of(idx, config.grid_width),
                    got: core.received,
                    expected,
                });
            }
            core.wrap_vcycle();
        }
        self.counters.vcycles += 1;
        self.send_buf = sends;
        self.due_buf = due;
        Ok(())
    }

    /// One Vcycle on the frozen replay tape (see [`crate::replay`]).
    ///
    /// The validation Vcycle proved the static schedule's assumptions, so
    /// this path skips NOP positions, idle-tail positions, the per-position
    /// `take_due` scan, and all link bookkeeping. Instructions still
    /// execute through the shared executors (`exec_instr` /
    /// `exec_epilogue_slot`) at their original `(position, compute-time)`
    /// coordinates, so every architecturally visible bit — registers,
    /// pending-write timing, counters, host events, data-dependent
    /// exceptions — is identical to the per-position engine.
    ///
    /// Execution is core-major rather than position-major; that is
    /// invisible because cores only interact through the (frozen) delivery
    /// schedule, and the only *fallible* instructions in a replayed Vcycle
    /// are the privileged core's `Expect`s (everything position-dependent —
    /// hazards, collisions, delivery timing — is static and was validated),
    /// so error selection matches the serial engine's encounter order too.
    fn run_one_vcycle_replay(&mut self) -> Result<(), MachineError> {
        let Machine {
            program,
            cores,
            regs,
            scratch,
            cache,
            compute_time,
            counters,
            strict_hazards,
            events,
            send_buf,
            ..
        } = self;
        let config = &program.config;
        let vcycle_len = program.vcycle_len;
        let tape = program
            .replay_tape
            .as_ref()
            .expect("replay_active checked the tape");
        let env = ExecEnv {
            config,
            exceptions: &program.exceptions,
            strict_hazards: *strict_hazards,
            vcycle: counters.vcycles,
        };
        let vstart = *compute_time;
        let rf = config.regfile_size;
        let sw = config.scratch_words;

        // Body phase: dense, pre-decoded, core-major. The send buffer is
        // the machine's reusable scratch — no per-Vcycle allocation.
        let sends = send_buf;
        sends.clear();
        sends.reserve(tape.sends_per_vcycle);
        for (idx, ops) in tape.body.iter().enumerate() {
            let mut view = CoreView {
                cs: &mut cores[idx],
                prog: &program.cores[idx],
                regs: &mut regs[idx * rf..(idx + 1) * rf],
                scratch: &mut scratch[idx * sw..(idx + 1) * sw],
            };
            let core_id = core_id_of(idx, config.grid_width);
            let is_privileged = core_id == CoreId::PRIVILEGED;
            for op in ops {
                let pos = op.pos as u64;
                let now = vstart + pos;
                view.commit_due(now);
                let cache_arg = if is_privileged {
                    Some(&mut *cache)
                } else {
                    None
                };
                exec_instr(
                    &env, &mut view, core_id, pos, now, op.instr, cache_arg, counters, events,
                    sends,
                )?;
            }
        }
        debug_assert_eq!(sends.len(), tape.sends_per_vcycle);

        replay_delivery_and_epilogue(
            tape,
            &program.cores,
            cores,
            regs,
            scratch,
            config,
            vstart,
            counters,
            |i| sends[i as usize].value,
        );

        *compute_time += vcycle_len;
        counters.compute_cycles += vcycle_len;
        counters.vcycles += 1;
        Ok(())
    }

    /// One Vcycle on the fused micro-op stream (see [`crate::uops`]).
    ///
    /// `pub(crate)` for the gang engine's trusted-validation path: once
    /// one lane's interpreted validation Vcycle has proven the (data-
    /// independent) schedule, sibling lanes of the same program run their
    /// first Vcycle here directly.
    ///
    /// Identical phase structure to [`Machine::run_one_vcycle_replay`] —
    /// core-major body walk, frozen delivery schedule, dense epilogue —
    /// but the body walk dispatches pre-resolved micro-ops instead of
    /// interpreting decoded instructions, skips architecturally inert
    /// cores entirely, and accumulates counters in bulk. In strict mode
    /// (no read can observe an in-flight write — validated) register
    /// writes commit directly and the epilogue collapses to the
    /// pre-resolved `epi_prog` write list; permissive mode keeps the
    /// pipeline ring for exact stale-read semantics.
    pub(crate) fn run_one_vcycle_uops(&mut self) -> Result<(), MachineError> {
        let Machine {
            program,
            cores,
            regs,
            scratch,
            cache,
            compute_time,
            counters,
            events,
            strict_hazards,
            send_vals_buf,
            ..
        } = self;
        let config = &program.config;
        let vcycle_len = program.vcycle_len;
        let tape = program
            .replay_tape
            .as_ref()
            .expect("replay_active checked the tape");
        let up = program
            .micro_prog
            .as_ref()
            .expect("micro program exists whenever the tape does");
        let direct = *strict_hazards;
        let vstart = *compute_time;
        let lat = config.hazard_latency as u64;
        let rf = config.regfile_size;
        let sw = config.scratch_words;
        let vcycle = counters.vcycles;

        // Body phase: fused micro-ops, active cores only. The value buffer
        // is the machine's reusable scratch — no per-Vcycle allocation.
        let send_vals = send_vals_buf;
        send_vals.clear();
        send_vals.reserve(tape.sends_per_vcycle);
        for &idx in &up.active {
            let idx = idx as usize;
            let mut view = CoreView {
                cs: &mut cores[idx],
                prog: &program.cores[idx],
                regs: &mut regs[idx * rf..(idx + 1) * rf],
                scratch: &mut scratch[idx * sw..(idx + 1) * sw],
            };
            // The privileged core is linear index 0 ((0,0) row-major).
            let cache_arg = (idx == 0).then_some(&mut *cache);
            let run = if direct {
                run_core_uops::<true>
            } else {
                run_core_uops::<false>
            };
            run(
                &program.exceptions,
                vcycle,
                sw,
                lat,
                vstart,
                &mut view,
                &up.streams[idx],
                cache_arg,
                counters,
                events,
                send_vals,
            )
            .map_err(|f| f.err)?;
        }
        debug_assert_eq!(send_vals.len(), tape.sends_per_vcycle);

        if direct {
            // Delivery and epilogue collapse into the pre-resolved write
            // list: `(core, slot)` order, direct commits (nothing can
            // observe them in flight), bulk counters.
            counters.messages_delivered += tape.deliveries.len() as u64;
            for e in &up.epi_prog {
                regs[e.core as usize * rf + e.rd as usize] = send_vals[e.send_idx as usize] as u32;
            }
            for &idx in &up.active {
                let idx = idx as usize;
                let epi = tape.epi_exec[idx] as u64;
                cores[idx].executed += epi;
                counters.instructions += epi;
            }
        } else {
            replay_delivery_and_epilogue(
                tape,
                &program.cores,
                cores,
                regs,
                scratch,
                config,
                vstart,
                counters,
                |i| send_vals[i as usize],
            );
        }

        *compute_time += vcycle_len;
        counters.compute_cycles += vcycle_len;
        counters.vcycles += 1;
        Ok(())
    }
}

/// Applies the frozen delivery schedule and walks the validated epilogue
/// slots through the pipeline ring, wrapping every core — the shared
/// back half of a tape-replay or ringed micro-op Vcycle. `value_of` maps
/// a schedule entry's send index to this Vcycle's value, the only thing
/// that differs between the two callers (keeping the walk itself in one
/// place, so the engines cannot drift by parallel maintenance).
#[allow(clippy::too_many_arguments)]
fn replay_delivery_and_epilogue(
    tape: &ReplayTape,
    progs: &[CoreProgram],
    cores: &mut [CoreState],
    regs: &mut [u32],
    scratch: &mut [u16],
    config: &MachineConfig,
    vstart: u64,
    counters: &mut PerfCounters,
    value_of: impl Fn(u32) -> u16,
) {
    let lat = config.hazard_latency as u64;
    let rf = config.regfile_size;
    let sw = config.scratch_words;

    // Delivery phase: the frozen schedule already knows every arrival
    // position and slot; only the values change between Vcycles.
    for d in &tape.deliveries {
        let core = &mut cores[d.target as usize];
        core.epilogue[d.slot as usize] = Some((d.rd, value_of(d.send_idx)));
        core.received += 1;
        counters.messages_delivered += 1;
    }

    // Epilogue phase: every slot was validated to fill and to issue
    // within the Vcycle (`epi_exec` clamps the ones that never issue).
    for (idx, core) in cores.iter_mut().enumerate() {
        let mut view = CoreView {
            cs: core,
            prog: &progs[idx],
            regs: &mut regs[idx * rf..(idx + 1) * rf],
            scratch: &mut scratch[idx * sw..(idx + 1) * sw],
        };
        let body_len = view.prog.body.len() as u64;
        for slot in 0..tape.epi_exec[idx] {
            let now = vstart + body_len + slot as u64;
            view.commit_due(now);
            let (rd, value) = view.cs.epilogue[slot].expect("validated: every slot fills");
            exec_epilogue_slot(&mut view, now, lat, rd, value, counters);
        }
        view.cs.wrap_vcycle();
    }
}

/// Utilization report: executed instructions per core (for Fig. 9-style
/// breakdowns measured on the machine rather than predicted).
impl Machine {
    /// Executed (non-NOP) instruction count for every core, row-major.
    pub fn executed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.executed).collect()
    }
}
