//! The machine itself: lockstep execution of the core grid, Vcycle framing,
//! global stall, host exception servicing.

use std::fmt;

use manticore_isa::{
    Binary, CoreId, ExceptionKind, Instruction, MachineConfig, Reg,
};

use crate::cache::{Cache, CacheStats};
use crate::core::CoreState;
use crate::noc::Noc;

/// Hardware performance counters (§7.7 uses these for the global-stall
/// experiment).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Compute-domain cycles (the compute clock was running).
    pub compute_cycles: u64,
    /// Cycles the compute clock was gated off (cache accesses, exceptions).
    pub stall_cycles: u64,
    /// Virtual cycles completed.
    pub vcycles: u64,
    /// Non-NOP instructions executed, summed over cores.
    pub instructions: u64,
    /// `Send` instructions executed.
    pub sends: u64,
    /// Messages delivered into epilogue slots.
    pub messages_delivered: u64,
    /// Exceptions serviced by the host.
    pub exceptions: u64,
}

impl PerfCounters {
    /// Total machine cycles: compute + stall.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Fraction of time the grid was stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles() == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles() as f64
        }
    }
}

/// A host-visible event produced during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostEvent {
    /// A `$display` fired (already rendered).
    Display(String),
    /// `$finish` was requested.
    Finish,
}

/// Outcome of a [`Machine::run_vcycles`] call.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Vcycles actually simulated (may be fewer than requested if the
    /// design finished).
    pub vcycles_run: u64,
    /// True if a `$finish` fired.
    pub finished: bool,
    /// Rendered `$display` output in order.
    pub displays: Vec<String>,
}

/// Errors: load-time validation failures and runtime determinism
/// violations. Determinism violations indicate compiler bugs — on the real
/// hardware they would silently corrupt the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Binary does not fit or refers to resources outside the configuration.
    Load(String),
    /// An instruction read a register with an uncommitted in-flight write
    /// (the compiler failed to schedule around the pipeline latency).
    Hazard {
        /// Core that executed the read.
        core: CoreId,
        /// Position within the Vcycle.
        position: u64,
        /// The register read too early.
        reg: Reg,
    },
    /// Two messages claimed the same NoC link in the same cycle; the
    /// bufferless switch would drop one.
    LinkCollision {
        /// Description of the contended link.
        link: String,
        /// Position within the Vcycle.
        position: u64,
    },
    /// A message arrived after the PC had already passed its epilogue slot.
    LateMessage {
        /// Receiving core.
        core: CoreId,
        /// Epilogue slot index.
        slot: usize,
    },
    /// More messages arrived in one Vcycle than the core's declared
    /// epilogue length.
    EpilogueOverflow {
        /// Receiving core.
        core: CoreId,
    },
    /// Fewer messages arrived than the epilogue expects (a `Set` slot would
    /// execute garbage).
    MissingMessages {
        /// Receiving core.
        core: CoreId,
        /// Messages received.
        got: usize,
        /// Messages expected.
        expected: usize,
    },
    /// A non-privileged core executed a privileged instruction.
    NotPrivileged {
        /// Offending core.
        core: CoreId,
    },
    /// An assertion (`Expect` with an `AssertFail` descriptor) failed.
    AssertFailed {
        /// The assertion message.
        message: String,
        /// Vcycle at which it failed.
        vcycle: u64,
    },
    /// An `Expect` raised an exception id absent from the binary's table.
    UnknownException {
        /// The raised id.
        eid: u16,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Load(m) => write!(f, "load error: {m}"),
            MachineError::Hazard { core, position, reg } => write!(
                f,
                "data hazard: {core} read {reg} with an in-flight write at Vcycle position {position}"
            ),
            MachineError::LinkCollision { link, position } => {
                write!(f, "NoC collision on {link} at Vcycle position {position}")
            }
            MachineError::LateMessage { core, slot } => {
                write!(f, "message for {core} epilogue slot {slot} arrived late")
            }
            MachineError::EpilogueOverflow { core } => {
                write!(f, "epilogue overflow at {core}")
            }
            MachineError::MissingMessages { core, got, expected } => write!(
                f,
                "{core} received {got} messages but expects {expected} per Vcycle"
            ),
            MachineError::NotPrivileged { core } => {
                write!(f, "privileged instruction on non-privileged {core}")
            }
            MachineError::AssertFailed { message, vcycle } => {
                write!(f, "assertion failed at Vcycle {vcycle}: {message}")
            }
            MachineError::UnknownException { eid } => {
                write!(f, "unknown exception id {eid}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Grid-stall cycles charged per serviced exception (host round-trip over
/// PCIe; the paper notes crossing the host-device boundary is expensive).
const EXCEPTION_STALL: u64 = 200;

/// The Manticore machine: a configured grid with a program loaded.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    cores: Vec<CoreState>,
    noc: Noc,
    cache: Cache,
    exceptions: Vec<manticore_isa::ExceptionDescriptor>,
    vcycle_len: u64,
    compute_time: u64,
    counters: PerfCounters,
    strict_hazards: bool,
    finish_requested: bool,
    events: Vec<HostEvent>,
}

impl Machine {
    /// Boots a machine from a compiled binary.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Load`] if the binary does not fit the
    /// configuration (grid size, instruction memory, register file,
    /// scratchpad, custom-function slots) or places privileged
    /// instructions on a non-privileged core.
    pub fn load(config: MachineConfig, binary: &Binary) -> Result<Machine, MachineError> {
        if binary.grid_width as usize > config.grid_width
            || binary.grid_height as usize > config.grid_height
        {
            return Err(MachineError::Load(format!(
                "binary compiled for {}x{} grid but machine is {}x{}",
                binary.grid_width, binary.grid_height, config.grid_width, config.grid_height
            )));
        }
        if binary.vcycle_len == 0 {
            return Err(MachineError::Load("vcycle_len must be non-zero".into()));
        }
        let mut cores: Vec<CoreState> = (0..config.num_cores())
            .map(|_| CoreState::new(config.regfile_size, config.scratch_words))
            .collect();
        for image in &binary.cores {
            let idx = image.core.linear(config.grid_width);
            if image.core.x as usize >= config.grid_width
                || image.core.y as usize >= config.grid_height
            {
                return Err(MachineError::Load(format!(
                    "core image for {} outside grid",
                    image.core
                )));
            }
            if image.imem_footprint() > config.imem_capacity {
                return Err(MachineError::Load(format!(
                    "{}: program ({} body + {} epilogue) exceeds instruction memory ({})",
                    image.core,
                    image.body.len(),
                    image.epilogue_len,
                    config.imem_capacity
                )));
            }
            if image.custom_functions.len() > config.num_custom_functions {
                return Err(MachineError::Load(format!(
                    "{}: {} custom functions exceed the {} slots",
                    image.core,
                    image.custom_functions.len(),
                    config.num_custom_functions
                )));
            }
            for instr in &image.body {
                if instr.is_privileged() && image.core != CoreId::PRIVILEGED {
                    return Err(MachineError::Load(format!(
                        "privileged instruction {instr:?} on {}",
                        image.core
                    )));
                }
                if let Some(rd) = instr.dest() {
                    if rd.index() >= config.regfile_size {
                        return Err(MachineError::Load(format!(
                            "{}: register {rd} out of range",
                            image.core
                        )));
                    }
                }
            }
            let core = &mut cores[idx];
            core.body = image.body.clone();
            core.epilogue_len = image.epilogue_len as usize;
            core.epilogue = vec![None; core.epilogue_len];
            core.custom_functions = image.custom_functions.clone();
            for &(r, v) in &image.init_regs {
                if r.index() >= config.regfile_size {
                    return Err(MachineError::Load(format!("init reg {r} out of range")));
                }
                core.regs[r.index()] = v as u32;
            }
            for &(a, v) in &image.init_scratch {
                if (a as usize) >= config.scratch_words {
                    return Err(MachineError::Load(format!("init scratch {a} out of range")));
                }
                core.scratch[a as usize] = v;
            }
        }
        let mut cache = Cache::new(config.cache);
        for &(a, v) in &binary.init_dram {
            cache.write_dram(a, v);
        }
        Ok(Machine {
            noc: Noc::new(&config),
            cache,
            cores,
            exceptions: binary.exceptions.clone(),
            vcycle_len: binary.vcycle_len as u64,
            compute_time: 0,
            counters: PerfCounters::default(),
            strict_hazards: true,
            finish_requested: false,
            events: Vec::new(),
            config,
        })
    }

    /// Boots from the serialized byte form (the bootloader path).
    ///
    /// # Errors
    ///
    /// Propagates deserialization and load failures.
    pub fn boot_from_bytes(config: MachineConfig, bytes: &[u8]) -> Result<Machine, MachineError> {
        let binary = Binary::from_bytes(bytes).map_err(MachineError::Load)?;
        Machine::load(config, &binary)
    }

    /// Disables strict hazard checking: premature reads return stale data
    /// (what the real pipeline would do) instead of erroring. Used by
    /// failure-injection tests.
    pub fn set_strict_hazards(&mut self, strict: bool) {
        self.strict_hazards = strict;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Machine cycles per Vcycle (the compiler's VCPL).
    pub fn vcycle_len(&self) -> u64 {
        self.vcycle_len
    }

    /// Performance counters accumulated so far.
    pub fn counters(&self) -> PerfCounters {
        self.counters
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Reads a register as the host sees it at a Vcycle boundary (with
    /// in-flight writes applied).
    pub fn read_reg(&self, core: CoreId, reg: Reg) -> u16 {
        self.cores[core.linear(self.config.grid_width)].reg_value_flushed(reg)
    }

    /// Reads a scratchpad word.
    pub fn read_scratch(&self, core: CoreId, addr: usize) -> u16 {
        self.cores[core.linear(self.config.grid_width)].scratch[addr]
    }

    /// Reads a global-memory word (through the coherent host view).
    pub fn read_global(&self, addr: u64) -> u16 {
        self.cache.peek(addr)
    }

    /// Runs up to `max_vcycles` virtual cycles.
    ///
    /// # Errors
    ///
    /// Any determinism violation or assertion failure aborts the run.
    pub fn run_vcycles(&mut self, max_vcycles: u64) -> Result<RunOutcome, MachineError> {
        let mut outcome = RunOutcome::default();
        for _ in 0..max_vcycles {
            if self.finish_requested {
                break;
            }
            self.run_one_vcycle()?;
            outcome.vcycles_run += 1;
            for ev in self.events.drain(..) {
                match ev {
                    HostEvent::Display(s) => outcome.displays.push(s),
                    HostEvent::Finish => outcome.finished = true,
                }
            }
            if outcome.finished {
                self.finish_requested = true;
                break;
            }
        }
        Ok(outcome)
    }

    fn run_one_vcycle(&mut self) -> Result<(), MachineError> {
        // Validate link-level NoC behaviour only on the first Vcycle: the
        // compute domain is deterministic and the program periodic, so the
        // link pattern repeats exactly.
        let validate = self.counters.vcycles == 0;
        for pos in 0..self.vcycle_len {
            let now = self.compute_time;
            // Deliver due messages before issue so a slot filled at cycle t
            // is executable at cycle t.
            for msg in self.noc.take_due(now) {
                let idx = msg.target.linear(self.config.grid_width);
                let core = &mut self.cores[idx];
                match core.receive(msg.rd, msg.value) {
                    None => return Err(MachineError::EpilogueOverflow { core: msg.target }),
                    Some(slot) => {
                        // The PC must not have passed the slot yet.
                        if pos > (core.body.len() + slot) as u64 {
                            return Err(MachineError::LateMessage {
                                core: msg.target,
                                slot,
                            });
                        }
                    }
                }
                self.counters.messages_delivered += 1;
            }
            for idx in 0..self.cores.len() {
                self.cores[idx].commit_due(now);
                self.step_core(idx, pos, validate)?;
            }
            self.compute_time += 1;
            self.counters.compute_cycles += 1;
        }
        // Vcycle wrap: every expected message must have arrived.
        for (idx, core) in self.cores.iter_mut().enumerate() {
            if core.received != core.epilogue_len {
                let core_id = CoreId::new(
                    (idx % self.config.grid_width) as u8,
                    (idx / self.config.grid_width) as u8,
                );
                return Err(MachineError::MissingMessages {
                    core: core_id,
                    got: core.received,
                    expected: core.epilogue_len,
                });
            }
            core.wrap_vcycle();
        }
        self.counters.vcycles += 1;
        Ok(())
    }

    fn core_id(&self, idx: usize) -> CoreId {
        CoreId::new(
            (idx % self.config.grid_width) as u8,
            (idx / self.config.grid_width) as u8,
        )
    }

    fn read_operand(&self, idx: usize, r: Reg, pos: u64) -> Result<u16, MachineError> {
        let core = &self.cores[idx];
        if self.strict_hazards && core.has_pending_write(r) {
            return Err(MachineError::Hazard {
                core: self.core_id(idx),
                position: pos,
                reg: r,
            });
        }
        Ok(core.reg_value(r))
    }

    fn read_carry(&self, idx: usize, r: Reg, pos: u64) -> Result<bool, MachineError> {
        let core = &self.cores[idx];
        if self.strict_hazards && core.has_pending_write(r) {
            return Err(MachineError::Hazard {
                core: self.core_id(idx),
                position: pos,
                reg: r,
            });
        }
        Ok(core.reg_carry(r))
    }

    fn step_core(&mut self, idx: usize, pos: u64, validate: bool) -> Result<(), MachineError> {
        let body_len = self.cores[idx].body.len() as u64;
        let epi_len = self.cores[idx].epilogue_len as u64;
        let now = self.compute_time;
        let lat = self.config.hazard_latency as u64;

        // Epilogue region: execute received messages as SET instructions.
        if pos >= body_len {
            let slot = (pos - body_len) as usize;
            if pos < body_len + epi_len {
                let entry = self.cores[idx].epilogue[slot];
                match entry {
                    Some((rd, value)) => {
                        self.cores[idx].write_reg(now, lat, rd, value, false);
                        self.cores[idx].executed += 1;
                        self.counters.instructions += 1;
                    }
                    None => {
                        // The schedule should have made this impossible; it
                        // is caught as a missing message at wrap. Treat the
                        // slot as a NOP for this cycle.
                    }
                }
            }
            return Ok(());
        }

        let instr = self.cores[idx].body[pos as usize];
        if !matches!(instr, Instruction::Nop) {
            self.cores[idx].executed += 1;
            self.counters.instructions += 1;
        }
        match instr {
            Instruction::Nop => {}
            Instruction::Set { rd, imm } => {
                self.cores[idx].write_reg(now, lat, rd, imm, false);
            }
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let a = self.read_operand(idx, rs1, pos)?;
                let b = self.read_operand(idx, rs2, pos)?;
                let (v, c) = op.eval(a, b);
                self.cores[idx].write_reg(now, lat, rd, v, c);
            }
            Instruction::AddCarry { rd, rs1, rs2, rs_carry } => {
                let a = self.read_operand(idx, rs1, pos)? as u32;
                let b = self.read_operand(idx, rs2, pos)? as u32;
                let cin = self.read_carry(idx, rs_carry, pos)? as u32;
                let sum = a + b + cin;
                self.cores[idx].write_reg(now, lat, rd, sum as u16, sum > 0xffff);
            }
            Instruction::SubBorrow { rd, rs1, rs2, rs_borrow } => {
                let a = self.read_operand(idx, rs1, pos)? as i32;
                let b = self.read_operand(idx, rs2, pos)? as i32;
                let carry_in = self.read_carry(idx, rs_borrow, pos)? as i32;
                let diff = a - b - (1 - carry_in);
                self.cores[idx].write_reg(now, lat, rd, diff as u16, diff >= 0);
            }
            Instruction::Mux { rd, rs_sel, rs1, rs2 } => {
                let sel = self.read_operand(idx, rs_sel, pos)?;
                let a = self.read_operand(idx, rs1, pos)?;
                let b = self.read_operand(idx, rs2, pos)?;
                let v = if sel != 0 { a } else { b };
                self.cores[idx].write_reg(now, lat, rd, v, false);
            }
            Instruction::Slice { rd, rs, offset, width } => {
                let v = self.read_operand(idx, rs, pos)?;
                let mask = if width >= 16 { 0xffff } else { (1u16 << width) - 1 };
                self.cores[idx].write_reg(now, lat, rd, (v >> offset) & mask, false);
            }
            Instruction::Custom { rd, func, rs } => {
                let table = *self.cores[idx]
                    .custom_functions
                    .get(func as usize)
                    .ok_or_else(|| {
                        MachineError::Load(format!(
                            "custom function {func} not programmed on {}",
                            self.core_id(idx)
                        ))
                    })?;
                let a = self.read_operand(idx, rs[0], pos)?;
                let b = self.read_operand(idx, rs[1], pos)?;
                let c = self.read_operand(idx, rs[2], pos)?;
                let d = self.read_operand(idx, rs[3], pos)?;
                let mut out = 0u16;
                for lane in 0..16 {
                    let sel = ((a >> lane) & 1)
                        | (((b >> lane) & 1) << 1)
                        | (((c >> lane) & 1) << 2)
                        | (((d >> lane) & 1) << 3);
                    out |= ((table[lane] >> sel) & 1) << lane;
                }
                self.cores[idx].write_reg(now, lat, rd, out, false);
            }
            Instruction::Predicate { rs } => {
                let v = self.read_operand(idx, rs, pos)?;
                self.cores[idx].predicate = v != 0;
            }
            Instruction::LocalLoad { rd, rs_addr, base } => {
                let a = self.read_operand(idx, rs_addr, pos)?;
                let addr = (base as usize + a as usize) % self.config.scratch_words;
                let v = self.cores[idx].scratch[addr];
                self.cores[idx].write_reg(now, lat, rd, v, false);
            }
            Instruction::LocalStore { rs_data, rs_addr, base } => {
                let v = self.read_operand(idx, rs_data, pos)?;
                let a = self.read_operand(idx, rs_addr, pos)?;
                if self.cores[idx].predicate {
                    let addr = (base as usize + a as usize) % self.config.scratch_words;
                    self.cores[idx].scratch[addr] = v;
                }
            }
            Instruction::GlobalLoad { rd, rs_addr } => {
                self.require_privileged(idx)?;
                let addr = self.global_addr(idx, rs_addr, pos)?;
                let (v, stall) = self.cache.load(addr);
                self.counters.stall_cycles += stall;
                self.cores[idx].write_reg(now, lat, rd, v, false);
            }
            Instruction::GlobalStore { rs_data, rs_addr } => {
                self.require_privileged(idx)?;
                let v = self.read_operand(idx, rs_data, pos)?;
                let addr = self.global_addr(idx, rs_addr, pos)?;
                if self.cores[idx].predicate {
                    let stall = self.cache.store(addr, v);
                    self.counters.stall_cycles += stall;
                }
            }
            Instruction::Send { target, rd_remote, rs } => {
                let v = self.read_operand(idx, rs, pos)?;
                let from = self.core_id(idx);
                self.counters.sends += 1;
                self.noc
                    .send(from, target, rd_remote, v, now, pos, validate)
                    .map_err(|c| MachineError::LinkCollision {
                        link: c.link,
                        position: c.position,
                    })?;
            }
            Instruction::Expect { rs1, rs2, eid } => {
                self.require_privileged(idx)?;
                let a = self.read_operand(idx, rs1, pos)?;
                let b = self.read_operand(idx, rs2, pos)?;
                if a != b {
                    self.service_exception(idx, eid)?;
                }
            }
        }
        Ok(())
    }

    fn require_privileged(&self, idx: usize) -> Result<(), MachineError> {
        if self.core_id(idx) != CoreId::PRIVILEGED {
            return Err(MachineError::NotPrivileged {
                core: self.core_id(idx),
            });
        }
        Ok(())
    }

    fn global_addr(&self, idx: usize, rs_addr: [Reg; 3], pos: u64) -> Result<u64, MachineError> {
        let lo = self.read_operand(idx, rs_addr[0], pos)? as u64;
        let mid = self.read_operand(idx, rs_addr[1], pos)? as u64;
        let hi = self.read_operand(idx, rs_addr[2], pos)? as u64;
        Ok(lo | (mid << 16) | (hi << 32))
    }

    /// Services an `Expect` exception: the grid stalls and the host acts on
    /// the descriptor.
    fn service_exception(&mut self, idx: usize, eid: u16) -> Result<(), MachineError> {
        self.counters.exceptions += 1;
        self.counters.stall_cycles += EXCEPTION_STALL;
        let desc = self
            .exceptions
            .iter()
            .find(|d| d.id.0 == eid)
            .ok_or(MachineError::UnknownException { eid })?
            .clone();
        match desc.kind {
            ExceptionKind::Display { format, args } => {
                let core = &self.cores[idx];
                let rendered = render_display(&format, &args, |r| core.reg_value_flushed(r));
                self.events.push(HostEvent::Display(rendered));
            }
            ExceptionKind::AssertFail { message } => {
                return Err(MachineError::AssertFailed {
                    message,
                    vcycle: self.counters.vcycles,
                });
            }
            ExceptionKind::Finish => {
                self.events.push(HostEvent::Finish);
            }
        }
        Ok(())
    }
}

/// Renders a display format string; `{}` placeholders print arguments in
/// hex, assembled from their 16-bit words (LSW first).
fn render_display(
    format: &str,
    args: &[(Vec<Reg>, usize)],
    read: impl Fn(Reg) -> u16,
) -> String {
    let mut out = String::with_capacity(format.len() + 16);
    let mut arg_iter = args.iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' && chars.peek() == Some(&'}') {
            chars.next();
            match arg_iter.next() {
                Some((regs, _width)) => {
                    let words: Vec<u16> = regs.iter().map(|&r| read(r)).collect();
                    out.push_str(&hex_of_words(&words));
                }
                None => out.push_str("<missing>"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Hex rendering of a little-endian word vector without leading zeros.
fn hex_of_words(words: &[u16]) -> String {
    let mut s = String::new();
    let mut started = false;
    for w in words.iter().rev() {
        if started {
            s.push_str(&format!("{w:04x}"));
        } else if *w != 0 {
            s.push_str(&format!("{w:x}"));
            started = true;
        }
    }
    if !started {
        s.push('0');
    }
    s
}

/// Utilization report: executed instructions per core (for Fig. 9-style
/// breakdowns measured on the machine rather than predicted).
impl Machine {
    /// Executed (non-NOP) instruction count for every core, row-major.
    pub fn executed_per_core(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.executed).collect()
    }
}
