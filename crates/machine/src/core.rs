//! Per-core state: register file with carry bits and in-flight write buffer,
//! scratchpad, predicate, instruction memory with message tail.

use std::collections::VecDeque;

use manticore_isa::{Instruction, Reg};

/// A register write travelling down the pipeline; becomes architecturally
/// visible at `commit_at` (compute-domain time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingWrite {
    pub commit_at: u64,
    pub reg: Reg,
    pub value: u16,
    pub carry: bool,
}

/// The state of one core.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    /// Register file: low 16 bits value, bit 16 the carry/overflow bit
    /// (the 2048×17 BRAM of §5.1).
    pub regs: Vec<u32>,
    /// In-flight writes ordered by commit time.
    pub pending: VecDeque<PendingWrite>,
    /// Local scratchpad (16384×16 URAM).
    pub scratch: Vec<u16>,
    /// Predicate register for stores.
    pub predicate: bool,
    /// Program body (executed at positions `0..body.len()`).
    pub body: Vec<Instruction>,
    /// Messages received this Vcycle, executed as `Set` at positions
    /// `body.len()..body.len()+epilogue_len` (the instruction-memory tail).
    pub epilogue: Vec<Option<(Reg, u16)>>,
    /// Declared number of messages per Vcycle.
    pub epilogue_len: usize,
    /// Messages received so far this Vcycle.
    pub received: usize,
    /// Custom-function truth tables (per-lane, 256 bits each).
    pub custom_functions: Vec<[u16; 16]>,
    /// Executed (non-idle) instruction count, for utilization reporting.
    pub executed: u64,
}

impl CoreState {
    pub fn new(regfile_size: usize, scratch_words: usize) -> Self {
        CoreState {
            regs: vec![0; regfile_size],
            pending: VecDeque::new(),
            scratch: vec![0; scratch_words],
            predicate: false,
            body: Vec::new(),
            epilogue: Vec::new(),
            epilogue_len: 0,
            received: 0,
            custom_functions: Vec::new(),
            executed: 0,
        }
    }

    /// Commits all pending writes due at or before `now`.
    pub fn commit_due(&mut self, now: u64) {
        while let Some(w) = self.pending.front() {
            if w.commit_at > now {
                break;
            }
            let w = self.pending.pop_front().unwrap();
            self.regs[w.reg.index()] = w.value as u32 | ((w.carry as u32) << 16);
        }
    }

    /// Architectural (committed) register value.
    pub fn reg_value(&self, r: Reg) -> u16 {
        self.regs[r.index()] as u16
    }

    /// Architectural carry bit.
    pub fn reg_carry(&self, r: Reg) -> bool {
        (self.regs[r.index()] >> 16) & 1 == 1
    }

    /// The value the register will hold once all in-flight writes commit
    /// (the host's view when servicing an exception: the grid is stalled
    /// and the pipeline drains before the host reads state).
    pub fn reg_value_flushed(&self, r: Reg) -> u16 {
        self.pending
            .iter()
            .rev()
            .find(|w| w.reg == r)
            .map(|w| w.value)
            .unwrap_or_else(|| self.reg_value(r))
    }

    /// True if `r` has an uncommitted in-flight write (a read now would be
    /// a data hazard the compiler should have scheduled around).
    pub fn has_pending_write(&self, r: Reg) -> bool {
        self.pending.iter().any(|w| w.reg == r)
    }

    /// Queues a register write that commits `latency` cycles from `now`.
    pub fn write_reg(&mut self, now: u64, latency: u64, reg: Reg, value: u16, carry: bool) {
        self.pending.push_back(PendingWrite {
            commit_at: now + latency,
            reg,
            value,
            carry,
        });
    }

    /// Records an arriving message in the next free epilogue slot.
    /// Returns the slot index, or `None` if the epilogue is full.
    pub fn receive(&mut self, rd: Reg, value: u16) -> Option<usize> {
        if self.received >= self.epilogue_len {
            return None;
        }
        let slot = self.received;
        self.epilogue[slot] = Some((rd, value));
        self.received += 1;
        Some(slot)
    }

    /// Resets per-Vcycle receive state (the Vcycle wrap).
    pub fn wrap_vcycle(&mut self) {
        self.epilogue.iter_mut().for_each(|s| *s = None);
        self.received = 0;
    }
}
