//! Per-run core state and the pipeline write ring.
//!
//! A core is split across the compile-once / run-many boundary: the
//! *program* half (body, epilogue length, custom-function tables) lives in
//! the shared immutable [`crate::CompiledProgram`]
//! (`crate::program::CoreProgram`); this module holds what one *run*
//! mutates. Register files and scratchpads for the whole grid live in two
//! structure-of-arrays vectors owned by the machine (one `Vec<u32>` of
//! register lanes, one `Vec<u16>` of scratchpad lanes, both sliced
//! per-core); [`CoreState`] keeps the genuinely per-run remainder — the
//! epilogue bookkeeping and the pipeline write ring. [`CoreView`] bundles
//! a core's run state, its two SoA lanes, and its shared program for the
//! executors.
//!
//! The write ring models the 14-stage pipeline: a register written at
//! cycle `t` commits at `t + hazard_latency`. Because every engine issues
//! at most one write per core per position and positions are monotone, the
//! ring is a FIFO ordered by commit time with at most `hazard_latency + 1`
//! entries in flight — commit is O(1) amortized, and the per-register
//! in-flight counters plus last-writer slots make hazard checks
//! ([`CoreState::has_pending_write`]) and host flushes
//! ([`CoreState::reg_value_flushed`]) O(1) instead of a queue scan.

use manticore_isa::Reg;

use crate::program::CoreProgram;

/// A register write travelling down the pipeline; becomes architecturally
/// visible at `commit_at` (compute-domain time).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PendingWrite {
    pub commit_at: u64,
    /// Flat register-file index (pre-resolved `Reg::index()`).
    pub reg: u16,
    pub value: u16,
    pub carry: bool,
}

/// The per-run core state: epilogue slots, pipeline ring, predicate.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    /// Pipeline ring: in-flight writes in commit-time order. Power-of-two
    /// capacity, indexed `(ring_head + i) & ring_mask`.
    pub ring: Vec<PendingWrite>,
    pub ring_head: u32,
    pub ring_len: u32,
    pub ring_mask: u32,
    /// In-flight write count per register (O(1) hazard checks).
    pub inflight: Vec<u16>,
    /// Ring slot of the most recent in-flight write per register; valid
    /// while `inflight[reg] > 0` (a live slot is never reused, so the
    /// latest writer is always intact).
    pub last_writer: Vec<u32>,
    /// Predicate register for stores.
    pub predicate: bool,
    /// Messages received this Vcycle, executed as `Set` at positions
    /// `body.len()..body.len()+epilogue_len` (the instruction-memory
    /// tail). Sized to the program's declared epilogue length.
    pub epilogue: Vec<Option<(Reg, u16)>>,
    /// Messages received so far this Vcycle.
    pub received: usize,
    /// Executed (non-idle) instruction count, for utilization reporting.
    pub executed: u64,
}

impl CoreState {
    pub fn new(regfile_size: usize, hazard_latency: usize, epilogue_len: usize) -> Self {
        // At most one write issues per position and a write issued at
        // position `p` commits at `p + hazard_latency`, so no more than
        // `hazard_latency + 1` writes are ever in flight; `+2` leaves a
        // slot of headroom for zero-latency configurations.
        let cap = (hazard_latency + 2).next_power_of_two();
        CoreState {
            ring: vec![PendingWrite::default(); cap],
            ring_head: 0,
            ring_len: 0,
            ring_mask: cap as u32 - 1,
            inflight: vec![0; regfile_size],
            last_writer: vec![0; regfile_size],
            predicate: false,
            epilogue: vec![None; epilogue_len],
            received: 0,
            executed: 0,
        }
    }

    /// Commits all pending writes due at or before `now` into the core's
    /// register lane.
    #[inline]
    pub fn commit_due(&mut self, regs: &mut [u32], now: u64) {
        self.commit_due_strided(regs, 1, 0, now);
    }

    /// [`CoreState::commit_due`] over a strided register slab: register
    /// `r`'s word lives at `r * stride + offset`. The gang engine's
    /// lane-major layout stores one core's register file as `lanes`
    /// interleaved copies (`stride = lanes`, `offset = lane`); the
    /// machine's per-core layout is the `stride = 1, offset = 0` special
    /// case.
    #[inline]
    pub fn commit_due_strided(&mut self, regs: &mut [u32], stride: usize, offset: usize, now: u64) {
        while self.ring_len > 0 {
            let w = self.ring[self.ring_head as usize];
            if w.commit_at > now {
                break;
            }
            regs[w.reg as usize * stride + offset] = w.value as u32 | ((w.carry as u32) << 16);
            self.inflight[w.reg as usize] -= 1;
            self.ring_head = (self.ring_head + 1) & self.ring_mask;
            self.ring_len -= 1;
        }
    }

    /// The value the register will hold once all in-flight writes commit
    /// (the host's view when servicing an exception: the grid is stalled
    /// and the pipeline drains before the host reads state).
    #[inline]
    pub fn reg_value_flushed(&self, regs: &[u32], r: Reg) -> u16 {
        let i = r.index();
        if self.inflight[i] > 0 {
            self.ring[self.last_writer[i] as usize].value
        } else {
            regs[i] as u16
        }
    }

    /// [`CoreState::reg_value_flushed`] with the committed word supplied by
    /// the caller — the layout-agnostic form the gang engine uses, since
    /// its lane-major state has no contiguous per-core register slice.
    #[inline]
    pub fn reg_value_flushed_word(&self, committed: u32, idx: usize) -> u16 {
        if self.inflight[idx] > 0 {
            self.ring[self.last_writer[idx] as usize].value
        } else {
            committed as u16
        }
    }

    /// Rewrites every in-flight write to flat register index `reg` to carry
    /// `value` (carry cleared), leaving commit timing untouched. This is
    /// what makes a mid-run poke authoritative: the caller overwrites the
    /// committed word, and any write still in the pipeline — which would
    /// otherwise clobber the poke with a pre-poke value when it commits a
    /// few cycles later — now commits the poked value, a no-op. The poke
    /// thereby behaves exactly as if it had been planted before the
    /// resumed segment started.
    #[inline]
    pub fn override_pending(&mut self, reg: u16, value: u16) {
        for i in 0..self.ring_len {
            let slot = ((self.ring_head + i) & self.ring_mask) as usize;
            let w = &mut self.ring[slot];
            if w.reg == reg {
                w.value = value;
                w.carry = false;
            }
        }
    }

    /// True if `r` has an uncommitted in-flight write (a read now would be
    /// a data hazard the compiler should have scheduled around).
    #[inline]
    pub fn has_pending_write(&self, r: Reg) -> bool {
        self.inflight[r.index()] > 0
    }

    /// Queues a write to flat register index `reg`, committing `latency`
    /// cycles from `now`.
    #[inline]
    pub fn write_reg_idx(&mut self, now: u64, latency: u64, reg: u16, value: u16, carry: bool) {
        assert!(
            (self.ring_len as usize) < self.ring.len(),
            "pipeline ring overflow"
        );
        let slot = (self.ring_head + self.ring_len) & self.ring_mask;
        self.ring[slot as usize] = PendingWrite {
            commit_at: now + latency,
            reg,
            value,
            carry,
        };
        self.inflight[reg as usize] += 1;
        self.last_writer[reg as usize] = slot;
        self.ring_len += 1;
    }

    /// Records an arriving message in the next free epilogue slot.
    /// Returns the slot index, or `None` if the epilogue is full.
    pub fn receive(&mut self, rd: Reg, value: u16) -> Option<usize> {
        if self.received >= self.epilogue.len() {
            return None;
        }
        let slot = self.received;
        self.epilogue[slot] = Some((rd, value));
        self.received += 1;
        Some(slot)
    }

    /// Resets per-Vcycle receive state (the Vcycle wrap). Messages fill
    /// slots in order, so only the first `received` can be `Some`.
    pub fn wrap_vcycle(&mut self) {
        self.epilogue[..self.received]
            .iter_mut()
            .for_each(|s| *s = None);
        self.received = 0;
    }
}

/// A core's run state plus its register-file and scratchpad lanes out of
/// the machine's structure-of-arrays storage, plus its shared read-only
/// program — everything one core's execution touches, borrowable
/// disjointly per shard (`split_at_mut` in the parallel engine; the
/// program side is `&`-shared freely).
pub(crate) struct CoreView<'a> {
    pub cs: &'a mut CoreState,
    /// The core's immutable program half (body, epilogue length, custom
    /// functions) out of the shared [`crate::CompiledProgram`].
    pub prog: &'a CoreProgram,
    /// This core's `regfile_size` slice of the grid register file.
    /// Low 16 bits value, bit 16 the carry/overflow bit (the 2048×17 BRAM
    /// of §5.1).
    pub regs: &'a mut [u32],
    /// This core's `scratch_words` slice of the grid scratchpad
    /// (16384×16 URAM).
    pub scratch: &'a mut [u16],
}

impl CoreView<'_> {
    /// Architectural (committed) register value.
    #[inline]
    pub fn reg_value(&self, r: Reg) -> u16 {
        self.regs[r.index()] as u16
    }

    /// Architectural carry bit.
    #[inline]
    pub fn reg_carry(&self, r: Reg) -> bool {
        (self.regs[r.index()] >> 16) & 1 == 1
    }

    /// See [`CoreState::reg_value_flushed`].
    #[inline]
    pub fn reg_value_flushed(&self, r: Reg) -> u16 {
        self.cs.reg_value_flushed(self.regs, r)
    }

    /// Queues a register write that commits `latency` cycles from `now`.
    #[inline]
    pub fn write_reg(&mut self, now: u64, latency: u64, reg: Reg, value: u16, carry: bool) {
        self.cs.write_reg_idx(now, latency, reg.0, value, carry);
    }

    /// Commits all pending writes due at or before `now`.
    #[inline]
    pub fn commit_due(&mut self, now: u64) {
        self.cs.commit_due(self.regs, now);
    }
}
