//! The compile-once side of the machine: everything about a loaded design
//! that never changes while it runs.
//!
//! [`CompiledProgram`] is the frozen artifact a [`crate::Machine`] executes:
//! the validated per-core programs, the exception table, the initial
//! register/scratchpad/DRAM images, and — because they are pure functions of
//! the program — the replay tape and its fused micro-op lowering. It is
//! immutable after construction and shared behind an `Arc`, so *N*
//! concurrent simulations of the same design (a fleet, a serial/parallel
//! backend pair, a parameter sweep) pay for validation, tape freezing, and
//! micro-op compilation exactly once. Booting another machine from the
//! artifact ([`crate::Machine::from_program`]) only allocates the mutable
//! per-run state: the SoA register file and scratchpad, the pipeline rings,
//! the NoC, and the cache.
//!
//! The split is also what keeps the fast paths honest: nothing a Vcycle
//! executes can scribble on the schedule it is replaying, because the
//! schedule lives on the other side of the `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use manticore_isa::{Binary, CoreId, ExceptionDescriptor, Instruction, MachineConfig};

/// Monotonic source of [`CompiledProgram::identity`] values. Starts at 1 so
/// zero can never name a real program.
static NEXT_IDENTITY: AtomicU64 = AtomicU64::new(1);

use crate::grid::MachineError;
use crate::replay::ReplayTape;
use crate::uops::MicroProgram;

/// The immutable per-core half of a core: its program and static geometry.
/// The mutable half (pipeline ring, epilogue slots, predicate) lives in
/// `crate::core::CoreState`, one per *run*.
#[derive(Debug)]
pub(crate) struct CoreProgram {
    /// Program body, executed at positions `0..body.len()`.
    pub body: Vec<Instruction>,
    /// Declared number of messages per Vcycle (the epilogue length).
    pub epilogue_len: usize,
    /// Custom-function truth tables (per-lane, 256 bits each) — the
    /// loaded form, kept as the reference.
    pub custom_functions: Vec<[u16; 16]>,
    /// The same tables transposed into bitsliced mask form
    /// (`crate::exec::transpose_custom`), one entry per table: what the
    /// engines actually evaluate through.
    pub custom_masks: Vec<[u16; 16]>,
    /// `custom_masks` broadcast into all four 16-bit slots of a `u64`,
    /// for the gang engine's four-lanes-per-tree evaluation.
    pub custom_masks_x4: Vec<[u64; 16]>,
}

/// A design compiled, validated, and frozen for execution: share it behind
/// an [`Arc`] and boot as many [`crate::Machine`]s from it as you like
/// ([`crate::Machine::from_program`]) — each run gets its own mutable
/// state, but the programs, the replay tape, and the micro-op streams are
/// built once and never copied.
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) config: MachineConfig,
    pub(crate) cores: Vec<CoreProgram>,
    pub(crate) exceptions: Vec<ExceptionDescriptor>,
    pub(crate) vcycle_len: u64,
    /// Initial register image for the whole grid, sparse: `(flat SoA
    /// index, value)` for the non-zero words. Booting a run allocates a
    /// zeroed file (lazily-faulted pages, no copy) and applies these — a
    /// full-size dense image would make every boot memcpy megabytes of
    /// zeros, which dominates compile-once / run-many batches.
    pub(crate) init_regs: Vec<(u32, u32)>,
    /// Initial scratchpad image, sparse like
    /// [`CompiledProgram::init_regs`].
    pub(crate) init_scratch: Vec<(u32, u16)>,
    /// Initial DRAM contents, applied to each run's fresh cache.
    pub(crate) init_dram: Vec<(u64, u16)>,
    /// The frozen replay tape; `None` when the program cannot be replayed
    /// (see [`ReplayTape::build`]).
    pub(crate) replay_tape: Option<ReplayTape>,
    /// The fused micro-op lowering; `Some` exactly when `replay_tape` is.
    pub(crate) micro_prog: Option<MicroProgram>,
    /// Process-unique identity of this compilation, minted at
    /// [`CompiledProgram::compile`] time. A [`crate::Checkpoint`] records
    /// the identity of the program it was taken under, and restore/fork
    /// refuse (with [`MachineError::CheckpointMismatch`]) to apply a
    /// snapshot to a machine running any other compilation — even a
    /// byte-identical recompile of the same design, whose tape/micro-op
    /// artifacts could still legitimately differ.
    pub(crate) identity: u64,
}

impl CompiledProgram {
    /// Validates and freezes a compiled binary for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Load`] if the binary does not fit the
    /// configuration (grid size, instruction memory, register file,
    /// scratchpad, custom-function slots) or places privileged
    /// instructions on a non-privileged core.
    pub fn compile(
        config: MachineConfig,
        binary: &Binary,
    ) -> Result<CompiledProgram, MachineError> {
        // `CoreId` addresses cores with 8-bit coordinates; a wider/taller
        // grid would silently wrap core ids (`core_id_of` casts to `u8`)
        // and alias distinct cores.
        if config.grid_width > 256 || config.grid_height > 256 {
            return Err(MachineError::Load(format!(
                "{}x{} grid exceeds the 256x256 CoreId addressing limit",
                config.grid_width, config.grid_height
            )));
        }
        if binary.grid_width as usize > config.grid_width
            || binary.grid_height as usize > config.grid_height
        {
            return Err(MachineError::Load(format!(
                "binary compiled for {}x{} grid but machine is {}x{}",
                binary.grid_width, binary.grid_height, config.grid_width, config.grid_height
            )));
        }
        if binary.vcycle_len == 0 {
            return Err(MachineError::Load("vcycle_len must be non-zero".into()));
        }
        let n = config.num_cores();
        let mut cores: Vec<CoreProgram> = (0..n)
            .map(|_| CoreProgram {
                body: Vec::new(),
                epilogue_len: 0,
                custom_functions: Vec::new(),
                custom_masks: Vec::new(),
                custom_masks_x4: Vec::new(),
            })
            .collect();
        let mut init_regs: Vec<(u32, u32)> = Vec::new();
        let mut init_scratch: Vec<(u32, u16)> = Vec::new();
        for image in &binary.cores {
            let idx = image.core.linear(config.grid_width);
            if image.core.x as usize >= config.grid_width
                || image.core.y as usize >= config.grid_height
            {
                return Err(MachineError::Load(format!(
                    "core image for {} outside grid",
                    image.core
                )));
            }
            if image.imem_footprint() > config.imem_capacity {
                return Err(MachineError::Load(format!(
                    "{}: program ({} body + {} epilogue) exceeds instruction memory ({})",
                    image.core,
                    image.body.len(),
                    image.epilogue_len,
                    config.imem_capacity
                )));
            }
            if image.custom_functions.len() > config.num_custom_functions {
                return Err(MachineError::Load(format!(
                    "{}: {} custom functions exceed the {} slots",
                    image.core,
                    image.custom_functions.len(),
                    config.num_custom_functions
                )));
            }
            for instr in &image.body {
                if instr.is_privileged() && image.core != CoreId::PRIVILEGED {
                    return Err(MachineError::Load(format!(
                        "privileged instruction {instr:?} on {}",
                        image.core
                    )));
                }
                if let Instruction::Send {
                    target, rd_remote, ..
                } = instr
                {
                    if target.x as usize >= config.grid_width
                        || target.y as usize >= config.grid_height
                    {
                        return Err(MachineError::Load(format!(
                            "{}: Send targets {target} outside the {}x{} grid",
                            image.core, config.grid_width, config.grid_height
                        )));
                    }
                    if rd_remote.index() >= config.regfile_size {
                        return Err(MachineError::Load(format!(
                            "{}: Send remote register {rd_remote} out of range",
                            image.core
                        )));
                    }
                }
                if let Some(rd) = instr.dest() {
                    if rd.index() >= config.regfile_size {
                        return Err(MachineError::Load(format!(
                            "{}: register {rd} out of range",
                            image.core
                        )));
                    }
                }
                for rs in instr.sources() {
                    if rs.index() >= config.regfile_size {
                        return Err(MachineError::Load(format!(
                            "{}: source register {rs} out of range",
                            image.core
                        )));
                    }
                }
            }
            let core = &mut cores[idx];
            core.body = image.body.clone();
            core.epilogue_len = image.epilogue_len as usize;
            core.custom_functions = image.custom_functions.clone();
            core.custom_masks = image
                .custom_functions
                .iter()
                .map(crate::exec::transpose_custom)
                .collect();
            core.custom_masks_x4 = core
                .custom_masks
                .iter()
                .map(|m| m.map(|x| x as u64 * 0x0001_0001_0001_0001))
                .collect();
            // Last write wins within an image (the dense form's semantics),
            // and only then are the zero entries dropped — an explicit
            // trailing zero must still cancel an earlier nonzero init.
            let mut reg_image: std::collections::BTreeMap<u32, u32> =
                std::collections::BTreeMap::new();
            for &(r, v) in &image.init_regs {
                if r.index() >= config.regfile_size {
                    return Err(MachineError::Load(format!("init reg {r} out of range")));
                }
                reg_image.insert((idx * config.regfile_size + r.index()) as u32, v as u32);
            }
            init_regs.extend(reg_image.into_iter().filter(|&(_, v)| v != 0));
            let mut scratch_image: std::collections::BTreeMap<u32, u16> =
                std::collections::BTreeMap::new();
            for &(a, v) in &image.init_scratch {
                if (a as usize) >= config.scratch_words {
                    return Err(MachineError::Load(format!("init scratch {a} out of range")));
                }
                scratch_image.insert((idx * config.scratch_words + a as usize) as u32, v);
            }
            init_scratch.extend(scratch_image.into_iter().filter(|&(_, v)| v != 0));
        }
        // The replay tape and its micro-op lowering are pure functions of
        // the loaded program and the configuration, so they are frozen
        // here; a run only *uses* them after its first (validation) Vcycle
        // has proven the schedule's assumptions.
        let replay_tape = ReplayTape::build(&cores, &config, binary.vcycle_len as u64);
        let micro_prog = replay_tape.as_ref().map(|tape| {
            MicroProgram::compile(
                tape,
                &cores,
                binary.vcycle_len as u64,
                config.hazard_latency as u64,
            )
        });
        Ok(CompiledProgram {
            cores,
            exceptions: binary.exceptions.clone(),
            vcycle_len: binary.vcycle_len as u64,
            init_regs,
            init_scratch,
            init_dram: binary.init_dram.clone(),
            replay_tape,
            micro_prog,
            config,
            identity: NEXT_IDENTITY.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Like [`CompiledProgram::compile`], wrapped in the [`Arc`] every
    /// sharing consumer ([`crate::Machine::from_program`], a fleet) wants.
    ///
    /// # Errors
    ///
    /// See [`CompiledProgram::compile`].
    pub fn compile_shared(
        config: MachineConfig,
        binary: &Binary,
    ) -> Result<Arc<CompiledProgram>, MachineError> {
        Ok(Arc::new(Self::compile(config, binary)?))
    }

    /// The machine configuration the program was compiled for.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Machine cycles per Vcycle (the compiler's VCPL).
    pub fn vcycle_len(&self) -> u64 {
        self.vcycle_len
    }

    /// Number of cores in the configured grid.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Process-unique identity of this compilation: the key a
    /// [`crate::Checkpoint`] is bound to.
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// True when a frozen replay schedule exists for this program (see
    /// [`crate::Machine::set_replay`]).
    pub fn replayable(&self) -> bool {
        self.replay_tape.is_some()
    }

    /// Approximate resident size of this frozen artifact in bytes: the
    /// per-core program bodies and custom-function tables, the sparse
    /// boot images, the replay tape, and the micro-op streams. This is an
    /// accounting figure for caches that bound themselves by bytes (the
    /// simulation service's compiled-program cache evicts by it), not an
    /// allocator-exact measurement — it deliberately ignores per-`Vec`
    /// overhead and padding, which are noise at the scale of real
    /// programs.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<CompiledProgram>();
        for core in &self.cores {
            bytes += core.body.len() * size_of::<Instruction>();
            // The three custom-function forms: loaded, bitsliced, x4.
            bytes += core.custom_functions.len() * size_of::<[u16; 16]>();
            bytes += core.custom_masks.len() * size_of::<[u16; 16]>();
            bytes += core.custom_masks_x4.len() * size_of::<[u64; 16]>();
        }
        bytes += self.exceptions.len() * size_of::<ExceptionDescriptor>();
        bytes += self.init_regs.len() * size_of::<(u32, u32)>();
        bytes += self.init_scratch.len() * size_of::<(u32, u16)>();
        bytes += self.init_dram.len() * size_of::<(u64, u16)>();
        if let Some(tape) = &self.replay_tape {
            bytes += tape.approx_bytes();
        }
        if let Some(prog) = &self.micro_prog {
            bytes += prog.approx_bytes();
        }
        bytes
    }

    /// Micro-op stream statistics, when a micro program exists:
    /// `(micro_ops, fused_pairs)` summed over the grid. `fused_pairs`
    /// counts adjacent tape-entry pairs absorbed into a single dispatch.
    pub fn micro_op_stats(&self) -> Option<(usize, usize)> {
        self.micro_prog
            .as_ref()
            .map(|p| (p.streams.iter().map(Vec::len).sum::<usize>(), p.fused_pairs))
    }
}
