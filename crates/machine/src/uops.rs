//! The fused micro-op stream: a second lowering stage over the replay
//! tape.
//!
//! The tape replay engine ([`crate::replay`]) already skips NOPs, idle
//! tails, and all NoC bookkeeping, but every replayed position still pays
//! the general interpreter's costs: the full [`Instruction`] match with
//! `Reg` unwrapping, per-operand strict-hazard branches, two counter
//! read-modify-writes per instruction, and a non-inlinable call into
//! `exec_instr`. All of that is *static* — the validation Vcycle proved
//! hazards cannot fire, the instruction mix never changes, and the
//! per-Vcycle counter deltas are constants of the program. So this module
//! compiles each core's tape into a dense [`MicroOp`] stream with
//!
//! - **pre-resolved operands** — flat `u16` register-file indices instead
//!   of `Reg` newtypes, `Slice` masks precomputed from the width, custom
//!   functions resolved to a table index (validated at compile), and
//!   `Send` reduced to its source register (target, slot, and destination
//!   register live in the frozen delivery schedule);
//! - **no hazard checks** — in strict mode the validation Vcycle proved no
//!   read ever observes an in-flight write, so the checks are dead; in
//!   permissive mode they are off by definition. Stale-read *semantics*
//!   are still exact because the pipeline ring commits by `(position,
//!   latency)` arithmetic, identically to the interpreter;
//! - **bulk counters** — `instructions`/`executed`/`sends` accumulate in
//!   locals and flush once per core walk (flushed even on a faulting walk,
//!   so error-path counters match the tape engine bit-for-bit);
//! - **peephole fusion** of the adjacent-position pairs the compiled
//!   workloads actually emit. Measured over all nine workloads on the
//!   15×15 grid (`examples/pair_histogram.rs`): `Alu→Alu` is 58.7% of
//!   adjacent pairs, `Mux→Mux` 4.0%, `Send→Send` 3.4%, `Alu→Send` 1.8%;
//!   `Set` chains and predicated stores never appear (constants arrive
//!   via `init_regs`), so exactly those four pairs are fused. A fused op
//!   executes both halves in one dispatch, with a pipeline commit between
//!   the two positions, so timing-visible behaviour is unchanged.
//!
//! The stream is a pure function of the tape, built once when the program
//! is frozen into a [`crate::CompiledProgram`] (and shared by every run of
//! it) and used by both engines' micro-op replay
//! paths ([`crate::grid`] serial, [`crate::parallel`] sharded) strictly
//! after the validation Vcycle.

use manticore_isa::{AluOp, ExceptionDescriptor, Instruction};

use crate::cache::Cache;
use crate::core::CoreView;
use crate::exec::service_exception;
use crate::grid::{HostEvent, MachineError, PerfCounters};
use crate::program::CoreProgram;
use crate::replay::ReplayTape;

/// One micro-op: a pre-resolved payload at a Vcycle position. Fused
/// payloads cover positions `pos` and `pos + 1`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    pub pos: u32,
    pub op: UOp,
}

/// Pre-resolved micro-op payloads. All register fields are flat
/// register-file indices.
#[derive(Debug, Clone, Copy)]
pub(crate) enum UOp {
    Set {
        rd: u16,
        imm: u16,
    },
    Alu {
        op: AluOp,
        rd: u16,
        rs1: u16,
        rs2: u16,
    },
    AddCarry {
        rd: u16,
        rs1: u16,
        rs2: u16,
        rsc: u16,
    },
    SubBorrow {
        rd: u16,
        rs1: u16,
        rs2: u16,
        rsb: u16,
    },
    Mux {
        rd: u16,
        rs_sel: u16,
        rs1: u16,
        rs2: u16,
    },
    /// `rd = (rs >> shift) & mask`; the mask is precomputed from the
    /// width, so the per-step width check of the interpreter is gone.
    Slice {
        rd: u16,
        rs: u16,
        shift: u8,
        mask: u16,
    },
    Custom {
        rd: u16,
        func: u16,
        rs: [u16; 4],
    },
    Predicate {
        rs: u16,
    },
    LocalLoad {
        rd: u16,
        rs_addr: u16,
        base: u32,
    },
    LocalStore {
        rs_data: u16,
        rs_addr: u16,
        base: u32,
    },
    GlobalLoad {
        rd: u16,
        rs_addr: [u16; 3],
    },
    GlobalStore {
        rs_data: u16,
        rs_addr: [u16; 3],
    },
    /// Record this Vcycle's value of `rs`; routing lives in the frozen
    /// delivery schedule.
    Send {
        rs: u16,
    },
    Expect {
        rs1: u16,
        rs2: u16,
        eid: u16,
    },
    // ---- fused pairs (see module docs for the measurement) ----
    AluAlu {
        op1: AluOp,
        rd1: u16,
        rs11: u16,
        rs12: u16,
        op2: AluOp,
        rd2: u16,
        rs21: u16,
        rs22: u16,
    },
    MuxMux {
        rd1: u16,
        sel1: u16,
        rs11: u16,
        rs12: u16,
        rd2: u16,
        sel2: u16,
        rs21: u16,
        rs22: u16,
    },
    AluSend {
        op: AluOp,
        rd: u16,
        rs1: u16,
        rs2: u16,
        rs_send: u16,
    },
    SendSend {
        rs1: u16,
        rs2: u16,
    },
}

/// One executing epilogue slot, pre-resolved: write `send_vals[send_idx]`
/// into register `rd` of core `core`. Ordered `(core, slot)` — the serial
/// epilogue walk order, so repeated destinations overwrite identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EpiEntry {
    pub core: u32,
    pub rd: u16,
    pub send_idx: u32,
}

/// The compiled micro-op program for a whole machine.
#[derive(Debug)]
pub(crate) struct MicroProgram {
    /// Per core (linear index): the fused micro-op stream, positions
    /// ascending.
    pub streams: Vec<Vec<MicroOp>>,
    /// Cores with at least one micro-op or epilogue slot, in linear
    /// order; all other cores are architecturally inert every Vcycle and
    /// are skipped entirely.
    pub active: Vec<u32>,
    /// The executing epilogue slots, pre-resolved to direct register
    /// writes (used by the direct-commit path).
    pub epi_prog: Vec<EpiEntry>,
    /// True if some register written near the Vcycle end is read early
    /// enough in the next Vcycle to observe the write still in flight.
    /// This is a static property (`write pos + hazard latency >
    /// vcycle_len + read pos`, all constants), and when it holds the
    /// strict engines must keep runtime hazard checks — the micro-op
    /// engine then defers to the tape engine, which reports the exact
    /// interpreter error. No compiled workload exhibits it; the flag
    /// exists so the fast path cannot silently change semantics.
    pub cross_hazard: bool,
    /// Tape entries absorbed into fused pairs (reporting only).
    pub fused_pairs: usize,
}

/// Lowers one decoded instruction to its micro-op payload.
fn lower(instr: Instruction) -> UOp {
    match instr {
        Instruction::Nop => unreachable!("the tape holds no NOPs"),
        Instruction::Set { rd, imm } => UOp::Set { rd: rd.0, imm },
        Instruction::Alu { op, rd, rs1, rs2 } => UOp::Alu {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
        },
        Instruction::AddCarry {
            rd,
            rs1,
            rs2,
            rs_carry,
        } => UOp::AddCarry {
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            rsc: rs_carry.0,
        },
        Instruction::SubBorrow {
            rd,
            rs1,
            rs2,
            rs_borrow,
        } => UOp::SubBorrow {
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            rsb: rs_borrow.0,
        },
        Instruction::Mux {
            rd,
            rs_sel,
            rs1,
            rs2,
        } => UOp::Mux {
            rd: rd.0,
            rs_sel: rs_sel.0,
            rs1: rs1.0,
            rs2: rs2.0,
        },
        Instruction::Slice {
            rd,
            rs,
            offset,
            width,
        } => UOp::Slice {
            rd: rd.0,
            rs: rs.0,
            shift: offset,
            mask: if width >= 16 {
                0xffff
            } else {
                (1u16 << width) - 1
            },
        },
        Instruction::Custom { rd, func, rs } => UOp::Custom {
            rd: rd.0,
            func: func as u16,
            rs: [rs[0].0, rs[1].0, rs[2].0, rs[3].0],
        },
        Instruction::Predicate { rs } => UOp::Predicate { rs: rs.0 },
        Instruction::LocalLoad { rd, rs_addr, base } => UOp::LocalLoad {
            rd: rd.0,
            rs_addr: rs_addr.0,
            base: base as u32,
        },
        Instruction::LocalStore {
            rs_data,
            rs_addr,
            base,
        } => UOp::LocalStore {
            rs_data: rs_data.0,
            rs_addr: rs_addr.0,
            base: base as u32,
        },
        Instruction::GlobalLoad { rd, rs_addr } => UOp::GlobalLoad {
            rd: rd.0,
            rs_addr: [rs_addr[0].0, rs_addr[1].0, rs_addr[2].0],
        },
        Instruction::GlobalStore { rs_data, rs_addr } => UOp::GlobalStore {
            rs_data: rs_data.0,
            rs_addr: [rs_addr[0].0, rs_addr[1].0, rs_addr[2].0],
        },
        Instruction::Send { rs, .. } => UOp::Send { rs: rs.0 },
        Instruction::Expect { rs1, rs2, eid } => UOp::Expect {
            rs1: rs1.0,
            rs2: rs2.0,
            eid,
        },
    }
}

/// Tries to fuse two adjacent-position micro-ops into one dispatch.
fn fuse(a: &MicroOp, b: &MicroOp) -> Option<UOp> {
    if b.pos != a.pos + 1 {
        return None;
    }
    match (a.op, b.op) {
        (
            UOp::Alu { op, rd, rs1, rs2 },
            UOp::Alu {
                op: op2,
                rd: rd2,
                rs1: rs21,
                rs2: rs22,
            },
        ) => Some(UOp::AluAlu {
            op1: op,
            rd1: rd,
            rs11: rs1,
            rs12: rs2,
            op2,
            rd2,
            rs21,
            rs22,
        }),
        (
            UOp::Mux {
                rd,
                rs_sel,
                rs1,
                rs2,
            },
            UOp::Mux {
                rd: rd2,
                rs_sel: sel2,
                rs1: rs21,
                rs2: rs22,
            },
        ) => Some(UOp::MuxMux {
            rd1: rd,
            sel1: rs_sel,
            rs11: rs1,
            rs12: rs2,
            rd2,
            sel2,
            rs21,
            rs22,
        }),
        (UOp::Alu { op, rd, rs1, rs2 }, UOp::Send { rs }) => Some(UOp::AluSend {
            op,
            rd,
            rs1,
            rs2,
            rs_send: rs,
        }),
        (UOp::Send { rs }, UOp::Send { rs: rs2 }) => Some(UOp::SendSend { rs1: rs, rs2 }),
        _ => None,
    }
}

impl MicroProgram {
    /// Approximate heap footprint of the compiled streams, in bytes. An
    /// accounting figure for cache budgeting, not an allocator-exact
    /// measurement.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        for stream in &self.streams {
            bytes += stream.len() * size_of::<MicroOp>();
        }
        bytes += self.active.len() * size_of::<u32>();
        bytes += self.epi_prog.len() * size_of::<EpiEntry>();
        bytes
    }

    /// Compiles the frozen tape into fused micro-op streams.
    pub fn compile(
        tape: &ReplayTape,
        cores: &[CoreProgram],
        vcycle_len: u64,
        hazard_latency: u64,
    ) -> MicroProgram {
        let mut streams = Vec::with_capacity(tape.body.len());
        let mut fused_pairs = 0usize;
        for ops in &tape.body {
            let mut stream: Vec<MicroOp> = Vec::with_capacity(ops.len());
            let mut i = 0;
            while i < ops.len() {
                let a = MicroOp {
                    pos: ops[i].pos,
                    op: lower(ops[i].instr),
                };
                if i + 1 < ops.len() {
                    let b = MicroOp {
                        pos: ops[i + 1].pos,
                        op: lower(ops[i + 1].instr),
                    };
                    if let Some(f) = fuse(&a, &b) {
                        stream.push(MicroOp { pos: a.pos, op: f });
                        fused_pairs += 1;
                        i += 2;
                        continue;
                    }
                }
                stream.push(a);
                i += 1;
            }
            streams.push(stream);
        }
        let active = cores
            .iter()
            .enumerate()
            .filter(|(idx, c)| !streams[*idx].is_empty() || c.epilogue_len > 0)
            .map(|(idx, _)| idx as u32)
            .collect();

        // Executing epilogue slots, pre-resolved. Delivery order per
        // target is slot order (slots are assigned sequentially), so a
        // stable sort by core reproduces the serial `(core, slot)` walk.
        let mut epi_prog: Vec<EpiEntry> = tape
            .deliveries
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                let tgt = d.target as usize;
                let slot_of_target = d.slot as usize;
                slot_of_target < tape.epi_exec[tgt]
            })
            .map(|(_, d)| EpiEntry {
                core: d.target,
                rd: d.rd.0,
                send_idx: d.send_idx,
            })
            .collect();
        epi_prog.sort_by_key(|e| e.core);

        MicroProgram {
            cross_hazard: cross_boundary_hazard(tape, cores, vcycle_len, hazard_latency),
            streams,
            active,
            epi_prog,
            fused_pairs,
        }
    }
}

/// True if any register write near the Vcycle end (`pos + lat >
/// vcycle_len`, body or epilogue) is read by the same core early enough
/// in the next Vcycle (`read pos < write pos + lat - vcycle_len`) to
/// observe the write in flight. Registers are core-local, so the check is
/// per core; everything involved is static. See
/// [`MicroProgram::cross_hazard`].
fn cross_boundary_hazard(
    tape: &ReplayTape,
    cores: &[CoreProgram],
    vcycle_len: u64,
    lat: u64,
) -> bool {
    // Per-core per-register end of the stale window in next-Vcycle
    // positions: a read at `pos < window` observes the pending write.
    let mut windows: Vec<std::collections::HashMap<u16, u64>> =
        vec![Default::default(); cores.len()];
    let mut any = false;
    for (idx, ops) in tape.body.iter().enumerate() {
        for op in ops {
            if let Some(rd) = op.instr.dest() {
                let end = (op.pos as u64 + lat).saturating_sub(vcycle_len);
                if end > 0 {
                    let w = windows[idx].entry(rd.0).or_insert(0);
                    *w = (*w).max(end);
                    any = true;
                }
            }
        }
    }
    for d in &tape.deliveries {
        let idx = d.target as usize;
        if (d.slot as usize) < tape.epi_exec[idx] {
            let pos = cores[idx].body.len() as u64 + d.slot as u64;
            let end = (pos + lat).saturating_sub(vcycle_len);
            if end > 0 {
                let w = windows[idx].entry(d.rd.0).or_insert(0);
                *w = (*w).max(end);
                any = true;
            }
        }
    }
    if !any {
        return false;
    }
    for (idx, ops) in tape.body.iter().enumerate() {
        if windows[idx].is_empty() {
            continue;
        }
        for op in ops {
            if op.pos as u64 >= lat {
                break; // windows never extend past `lat - 1`
            }
            for src in op.instr.sources() {
                if let Some(&end) = windows[idx].get(&src.0) {
                    if (op.pos as u64) < end {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// A fault raised while walking a micro-op stream, tagged with the Vcycle
/// position it occurred at (the parallel engine ranks errors by the
/// serial engine's encounter order).
pub(crate) struct UopFault {
    pub pos: u64,
    pub err: MachineError,
}

/// Queues (ringed mode) or immediately commits (direct mode) a register
/// write. Direct commit is legal exactly when no read can observe the
/// write in flight — strict-validated programs without a cross-boundary
/// hazard — because then the delayed and the immediate write are
/// indistinguishable to every architectural observer (reads happen after
/// the commit point, and the host's flushed view returns the latest write
/// either way).
#[inline(always)]
fn write<const DIRECT: bool>(
    view: &mut CoreView<'_>,
    now: u64,
    lat: u64,
    rd: u16,
    value: u16,
    carry: bool,
) {
    if DIRECT {
        view.regs[rd as usize] = value as u32 | ((carry as u32) << 16);
    } else {
        view.cs.write_reg_idx(now, lat, rd, value, carry);
    }
}

/// Ringed mode commits pending writes before each position, exactly like
/// the interpreter; direct mode has nothing in flight.
#[inline(always)]
fn commit<const DIRECT: bool>(view: &mut CoreView<'_>, now: u64) {
    if !DIRECT {
        view.commit_due(now);
    }
}

#[inline(always)]
fn exec_alu<const DIRECT: bool>(
    view: &mut CoreView<'_>,
    now: u64,
    lat: u64,
    op: AluOp,
    rd: u16,
    rs1: u16,
    rs2: u16,
) {
    let a = view.regs[rs1 as usize] as u16;
    let b = view.regs[rs2 as usize] as u16;
    let (v, c) = op.eval(a, b);
    write::<DIRECT>(view, now, lat, rd, v, c);
}

#[inline(always)]
fn exec_mux<const DIRECT: bool>(
    view: &mut CoreView<'_>,
    now: u64,
    lat: u64,
    rd: u16,
    sel: u16,
    rs1: u16,
    rs2: u16,
) {
    let s = view.regs[sel as usize] as u16;
    let v = if s != 0 {
        view.regs[rs1 as usize]
    } else {
        view.regs[rs2 as usize]
    } as u16;
    write::<DIRECT>(view, now, lat, rd, v, false);
}

/// Walks one core's micro-op stream for one Vcycle.
///
/// `DIRECT` selects immediate register commits (strict-validated
/// programs, where no read can observe an in-flight write — see
/// [`write`]) versus the pipeline ring (permissive mode, where stale
/// reads are real and timing matters).
///
/// Counter deltas (`instructions`, `executed`, `sends`) accumulate in
/// locals and flush once — including on a faulting walk, where the
/// prefix up to and through the faulting op is flushed exactly as the
/// tape engine would have counted it. Only the privileged core can fault
/// (`Expect`) or touch the cache; `cache` is `Some` exactly for it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_core_uops<const DIRECT: bool>(
    exceptions: &[ExceptionDescriptor],
    vcycle: u64,
    scratch_words: usize,
    lat: u64,
    vstart: u64,
    view: &mut CoreView<'_>,
    stream: &[MicroOp],
    mut cache: Option<&mut Cache>,
    counters: &mut PerfCounters,
    events: &mut Vec<HostEvent>,
    send_vals: &mut Vec<u16>,
) -> Result<(), UopFault> {
    if DIRECT {
        // Writes left in flight by a previous Vcycle on another engine
        // (e.g. the validation Vcycle) commit now; no read could have
        // observed them pending, so early commit is invisible.
        view.commit_due(u64::MAX);
    }
    let mut ic: u64 = 0;
    let mut sends: u64 = 0;
    let mut result = Ok(());
    for mop in stream {
        let pos = mop.pos as u64;
        let now = vstart + pos;
        commit::<DIRECT>(view, now);
        match mop.op {
            UOp::Set { rd, imm } => {
                ic += 1;
                write::<DIRECT>(view, now, lat, rd, imm, false);
            }
            UOp::Alu { op, rd, rs1, rs2 } => {
                ic += 1;
                exec_alu::<DIRECT>(view, now, lat, op, rd, rs1, rs2);
            }
            UOp::AddCarry { rd, rs1, rs2, rsc } => {
                ic += 1;
                let a = view.regs[rs1 as usize] & 0xffff;
                let b = view.regs[rs2 as usize] & 0xffff;
                let cin = (view.regs[rsc as usize] >> 16) & 1;
                let sum = a + b + cin;
                write::<DIRECT>(view, now, lat, rd, sum as u16, sum > 0xffff);
            }
            UOp::SubBorrow { rd, rs1, rs2, rsb } => {
                ic += 1;
                let a = (view.regs[rs1 as usize] as u16) as i32;
                let b = (view.regs[rs2 as usize] as u16) as i32;
                let cin = ((view.regs[rsb as usize] >> 16) & 1) as i32;
                let diff = a - b - (1 - cin);
                write::<DIRECT>(view, now, lat, rd, diff as u16, diff >= 0);
            }
            UOp::Mux {
                rd,
                rs_sel,
                rs1,
                rs2,
            } => {
                ic += 1;
                exec_mux::<DIRECT>(view, now, lat, rd, rs_sel, rs1, rs2);
            }
            UOp::Slice {
                rd,
                rs,
                shift,
                mask,
            } => {
                ic += 1;
                let v = view.regs[rs as usize] as u16;
                write::<DIRECT>(view, now, lat, rd, (v >> shift) & mask, false);
            }
            UOp::Custom { rd, func, rs } => {
                ic += 1;
                // Validated during the validation Vcycle: an unprogrammed
                // function index faults there, before replay ever runs.
                let masks = view.prog.custom_masks[func as usize];
                let a = view.regs[rs[0] as usize] as u16;
                let b = view.regs[rs[1] as usize] as u16;
                let c = view.regs[rs[2] as usize] as u16;
                let d = view.regs[rs[3] as usize] as u16;
                let out = crate::exec::eval_custom_masks(&masks, a, b, c, d);
                write::<DIRECT>(view, now, lat, rd, out, false);
            }
            UOp::Predicate { rs } => {
                ic += 1;
                view.cs.predicate = view.regs[rs as usize] as u16 != 0;
            }
            UOp::LocalLoad { rd, rs_addr, base } => {
                ic += 1;
                let a = view.regs[rs_addr as usize] as u16;
                let addr = (base as usize + a as usize) % scratch_words;
                let v = view.scratch[addr];
                write::<DIRECT>(view, now, lat, rd, v, false);
            }
            UOp::LocalStore {
                rs_data,
                rs_addr,
                base,
            } => {
                ic += 1;
                let v = view.regs[rs_data as usize] as u16;
                let a = view.regs[rs_addr as usize] as u16;
                if view.cs.predicate {
                    let addr = (base as usize + a as usize) % scratch_words;
                    view.scratch[addr] = v;
                }
            }
            UOp::GlobalLoad { rd, rs_addr } => {
                ic += 1;
                let addr = (view.regs[rs_addr[0] as usize] as u64 & 0xffff)
                    | ((view.regs[rs_addr[1] as usize] as u64 & 0xffff) << 16)
                    | ((view.regs[rs_addr[2] as usize] as u64 & 0xffff) << 32);
                let cache = cache.as_deref_mut().expect("privileged core has the cache");
                let (v, stall) = cache.load(addr);
                counters.stall_cycles += stall;
                write::<DIRECT>(view, now, lat, rd, v, false);
            }
            UOp::GlobalStore { rs_data, rs_addr } => {
                ic += 1;
                let v = view.regs[rs_data as usize] as u16;
                let addr = (view.regs[rs_addr[0] as usize] as u64 & 0xffff)
                    | ((view.regs[rs_addr[1] as usize] as u64 & 0xffff) << 16)
                    | ((view.regs[rs_addr[2] as usize] as u64 & 0xffff) << 32);
                if view.cs.predicate {
                    let cache = cache.as_deref_mut().expect("privileged core has the cache");
                    let stall = cache.store(addr, v);
                    counters.stall_cycles += stall;
                }
            }
            UOp::Send { rs } => {
                ic += 1;
                sends += 1;
                send_vals.push(view.regs[rs as usize] as u16);
            }
            UOp::Expect { rs1, rs2, eid } => {
                ic += 1;
                let a = view.regs[rs1 as usize] as u16;
                let b = view.regs[rs2 as usize] as u16;
                if a != b {
                    if let Err(err) = service_exception(
                        exceptions,
                        vcycle,
                        |r| view.reg_value_flushed(r),
                        eid,
                        counters,
                        events,
                    ) {
                        result = Err(UopFault { pos, err });
                        break;
                    }
                }
            }
            UOp::AluAlu {
                op1,
                rd1,
                rs11,
                rs12,
                op2,
                rd2,
                rs21,
                rs22,
            } => {
                ic += 2;
                exec_alu::<DIRECT>(view, now, lat, op1, rd1, rs11, rs12);
                commit::<DIRECT>(view, now + 1);
                exec_alu::<DIRECT>(view, now + 1, lat, op2, rd2, rs21, rs22);
            }
            UOp::MuxMux {
                rd1,
                sel1,
                rs11,
                rs12,
                rd2,
                sel2,
                rs21,
                rs22,
            } => {
                ic += 2;
                exec_mux::<DIRECT>(view, now, lat, rd1, sel1, rs11, rs12);
                commit::<DIRECT>(view, now + 1);
                exec_mux::<DIRECT>(view, now + 1, lat, rd2, sel2, rs21, rs22);
            }
            UOp::AluSend {
                op,
                rd,
                rs1,
                rs2,
                rs_send,
            } => {
                ic += 2;
                sends += 1;
                exec_alu::<DIRECT>(view, now, lat, op, rd, rs1, rs2);
                commit::<DIRECT>(view, now + 1);
                send_vals.push(view.regs[rs_send as usize] as u16);
            }
            UOp::SendSend { rs1, rs2 } => {
                ic += 2;
                sends += 2;
                send_vals.push(view.regs[rs1 as usize] as u16);
                commit::<DIRECT>(view, now + 1);
                send_vals.push(view.regs[rs2 as usize] as u16);
            }
        }
    }
    view.cs.executed += ic;
    counters.instructions += ic;
    counters.sends += sends;
    result
}
