//! Cycle-accurate software model of the Manticore processor grid.
//!
//! This crate is the substitute for the paper's FPGA prototype (§5): a grid
//! of simple 16-bit cores on a unidirectional 2D torus NoC, executing one
//! instruction per cycle in strict lockstep, with
//!
//! - a *write-buffer pipeline model*: a register written at cycle `t`
//!   commits at `t + hazard_latency`, modelling the 14-stage pipeline with
//!   no forwarding or interlocks — reading too early returns stale data
//!   (or, in strict mode, reports a compiler scheduling bug);
//! - *bufferless NoC switches* with dimension-ordered routing that drop
//!   messages on link collision — the model detects and reports any
//!   collision, since the compiler's static schedule must make them
//!   impossible;
//! - the *message-as-instruction* receive mechanism: an arriving message is
//!   written into the tail of the target's instruction memory as a `Set`
//!   and executed when the program counter reaches it (§5.2);
//! - the *global stall*: privileged cache/DRAM accesses and exceptions
//!   freeze the whole compute clock domain, so they appear to the compiler
//!   as fixed-latency operations (§5.3);
//! - hardware performance counters (total/stall cycles, cache hits/misses)
//!   used by the paper's Fig. 8 experiment.
//!
//! Determinism violations (data hazards the compiler failed to schedule
//! around, NoC collisions, late messages) surface as [`MachineError`]s —
//! exactly the failures that would silently corrupt results on the real
//! hardware.
//!
//! The grid executes under one of two engines ([`ExecMode`]): the serial
//! reference engine, or a *sharded bulk-synchronous* engine that steps
//! disjoint core shards on worker threads and performs NoC routing,
//! delivery, and stall accounting in a serial commit phase between
//! per-Vcycle barriers. The two are bit-identical by construction — they
//! share the per-core step function — which the test suite checks across
//! every workload and shard count.
//!
//! A loaded design is split across the compile-once / run-many boundary:
//! the immutable [`CompiledProgram`] (validated per-core programs,
//! exception table, initial state images, replay tape, micro-op streams)
//! is shared behind an `Arc`, and a [`Machine`] is one *run* of it —
//! mutable state only, cheap to boot ([`Machine::from_program`]), which
//! is what the `manticore-fleet` crate batches across a worker pool.
//!
//! Both engines additionally exploit the model's determinism with a
//! *validate-once / replay-many* fast path ([`Machine::set_replay`], on by
//! default): the first Vcycle validates the static schedule in full, after
//! which execution switches to a frozen, pre-decoded replay schedule that
//! skips NOPs, idle-tail positions, and all per-position NoC bookkeeping —
//! same bits, fewer interpreted steps. Two lowerings exist
//! ([`Machine::set_replay_engine`]): the pre-decoded tape through the
//! shared interpreter, and the default *fused micro-op stream* over the
//! machine's structure-of-arrays state, with operands pre-resolved to flat
//! offsets, dead hazard checks removed, counters bulk-accumulated, and the
//! measured-hottest adjacent instruction pairs fused into one dispatch
//! (see the crate-private `replay`/`uops` modules and `ARCHITECTURE.md`).
//!
//! Finally, runs are first-class *scenario-tree* nodes: a [`Checkpoint`]
//! is a serialize-free snapshot of one run at a Vcycle boundary, keyed to
//! its [`CompiledProgram`]; [`Machine::restore`] rewinds a machine to one,
//! and [`Checkpoint::fork`] explodes one into a K-lane [`GangMachine`] of
//! divergent children. [`CoverageMap`] scores the states such trees reach
//! (per-core toggle coverage plus assert/display tallies) for
//! coverage-guided exploration drivers.

mod cache;
mod checkpoint;
mod core;
mod coverage;
mod exec;
mod gang;
mod grid;
mod noc;
mod parallel;
mod persist;
mod program;
mod replay;
mod uops;

pub use cache::{Cache, CacheStats};
pub use checkpoint::Checkpoint;
pub use coverage::CoverageMap;
pub use gang::{GangMachine, MAX_LANES};
pub use grid::{
    ExecMode, HostEvent, Interrupt, Machine, MachineError, PerfCounters, ReplayEngine, RunOutcome,
};
pub use persist::{load_checkpoint, save_checkpoint, PersistError};
pub use program::CompiledProgram;

#[cfg(test)]
mod tests;
