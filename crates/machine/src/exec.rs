//! The per-core instruction step, shared by both execution engines.
//!
//! The serial engine ([`crate::grid`]) and the sharded bulk-synchronous
//! engine ([`crate::parallel`]) must be bit-identical. The way we get that
//! by construction is to funnel *all* architectural effects of one core
//! executing one Vcycle position through this module: both engines call
//! [`step_core`], which mutates only
//!
//! - the core's own state (a [`CoreView`]: per-core metadata plus the
//!   core's register-file and scratchpad lanes of the machine's
//!   structure-of-arrays storage),
//! - the caller-supplied [`PerfCounters`] accumulator,
//! - the caller-supplied host-event list (privileged core only),
//! - the caller-supplied [`SendRecord`] list (messages are *recorded*, not
//!   routed — the engine decides when to inject them into the NoC), and
//! - the global cache (privileged core only; `None` for everyone else).
//!
//! Everything cross-core — NoC routing, message delivery, link-collision
//! validation — stays in the engines, where the two differ only in *when*
//! the same serial commit work happens.
//!
//! The micro-op replay engine ([`crate::uops`]) does *not* go through this
//! module's interpreters — that is its point — but it is compiled from the
//! same decoded instructions and validated against these executors by the
//! equivalence suite.

use manticore_isa::{CoreId, ExceptionDescriptor, ExceptionKind, Instruction, MachineConfig, Reg};

use crate::cache::Cache;
use crate::core::CoreView;
use crate::grid::{HostEvent, MachineError, PerfCounters};

/// Grid-stall cycles charged per serviced exception (host round-trip over
/// PCIe; the paper notes crossing the host-device boundary is expensive).
pub(crate) const EXCEPTION_STALL: u64 = 200;

/// Read-only execution context for one Vcycle.
pub(crate) struct ExecEnv<'a> {
    pub config: &'a MachineConfig,
    pub exceptions: &'a [ExceptionDescriptor],
    pub strict_hazards: bool,
    /// Current Vcycle index (for assertion-failure reporting).
    pub vcycle: u64,
}

/// A `Send` executed this Vcycle, recorded for the engine to inject into
/// the NoC. `pos` orders records across cores: global injection order is
/// `(pos, sender linear index)`, exactly the serial engine's iteration
/// order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SendRecord {
    pub pos: u64,
    pub from: CoreId,
    pub target: CoreId,
    pub rd: Reg,
    pub value: u16,
}

/// The `CoreId` of the core at linear index `idx` in a row-major grid.
pub(crate) fn core_id_of(idx: usize, grid_width: usize) -> CoreId {
    CoreId::new((idx % grid_width) as u8, (idx / grid_width) as u8)
}

fn read_operand(
    env: &ExecEnv<'_>,
    core: &CoreView<'_>,
    core_id: CoreId,
    r: Reg,
    pos: u64,
) -> Result<u16, MachineError> {
    if env.strict_hazards && core.cs.has_pending_write(r) {
        return Err(MachineError::Hazard {
            core: core_id,
            position: pos,
            reg: r,
        });
    }
    Ok(core.reg_value(r))
}

fn read_carry(
    env: &ExecEnv<'_>,
    core: &CoreView<'_>,
    core_id: CoreId,
    r: Reg,
    pos: u64,
) -> Result<bool, MachineError> {
    if env.strict_hazards && core.cs.has_pending_write(r) {
        return Err(MachineError::Hazard {
            core: core_id,
            position: pos,
            reg: r,
        });
    }
    Ok(core.reg_carry(r))
}

fn require_privileged(core_id: CoreId) -> Result<(), MachineError> {
    if core_id != CoreId::PRIVILEGED {
        return Err(MachineError::NotPrivileged { core: core_id });
    }
    Ok(())
}

fn global_addr(
    env: &ExecEnv<'_>,
    core: &CoreView<'_>,
    core_id: CoreId,
    rs_addr: [Reg; 3],
    pos: u64,
) -> Result<u64, MachineError> {
    let lo = read_operand(env, core, core_id, rs_addr[0], pos)? as u64;
    let mid = read_operand(env, core, core_id, rs_addr[1], pos)? as u64;
    let hi = read_operand(env, core, core_id, rs_addr[2], pos)? as u64;
    Ok(lo | (mid << 16) | (hi << 32))
}

/// Services an `Expect` exception: the grid stalls and the host acts on
/// the descriptor. Shared by the interpreter, the micro-op engine, and the
/// lane-batched gang engine. `read_flushed` is the host's view of the
/// servicing core's registers (pipeline drained) — a closure rather than a
/// [`CoreView`] because the gang engine's lane-major state has no
/// contiguous per-core register slice to view.
pub(crate) fn service_exception(
    exceptions: &[ExceptionDescriptor],
    vcycle: u64,
    read_flushed: impl Fn(Reg) -> u16,
    eid: u16,
    counters: &mut PerfCounters,
    events: &mut Vec<HostEvent>,
) -> Result<(), MachineError> {
    counters.exceptions += 1;
    counters.stall_cycles += EXCEPTION_STALL;
    let desc = exceptions
        .iter()
        .find(|d| d.id.0 == eid)
        .ok_or(MachineError::UnknownException { eid })?
        .clone();
    match desc.kind {
        ExceptionKind::Display { format, args } => {
            let rendered = render_display(&format, &args, read_flushed);
            events.push(HostEvent::Display(rendered));
        }
        ExceptionKind::AssertFail { message } => {
            return Err(MachineError::AssertFailed { message, vcycle });
        }
        ExceptionKind::Finish => {
            events.push(HostEvent::Finish);
        }
    }
    Ok(())
}

/// Executes the instruction (or epilogue slot) at Vcycle position `pos` on
/// one core. `now` is the compute-domain time (`vcycle_start + pos`);
/// `cache` is `Some` exactly for the privileged core.
///
/// All effects go through the caller-supplied accumulators, so the caller
/// chooses whether they are the machine's globals (serial engine) or
/// shard-local scratch merged at the barrier (parallel engine).
///
/// This is the fetch/decode wrapper around [`exec_instr`]: it resolves the
/// position into a body instruction or an epilogue slot. The replay engine
/// ([`crate::replay`]) skips it and calls [`exec_instr`] /
/// [`exec_epilogue_slot`] directly with pre-decoded entries — both paths
/// share the same executors, so the replay tape cannot drift semantically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_core(
    env: &ExecEnv<'_>,
    core: &mut CoreView<'_>,
    core_id: CoreId,
    pos: u64,
    now: u64,
    cache: Option<&mut Cache>,
    counters: &mut PerfCounters,
    events: &mut Vec<HostEvent>,
    sends: &mut Vec<SendRecord>,
) -> Result<(), MachineError> {
    let body_len = core.prog.body.len() as u64;
    let epi_len = core.prog.epilogue_len as u64;
    let lat = env.config.hazard_latency as u64;

    // Epilogue region: execute received messages as SET instructions.
    if pos >= body_len {
        let slot = (pos - body_len) as usize;
        if pos < body_len + epi_len {
            match core.cs.epilogue[slot] {
                Some((rd, value)) => {
                    exec_epilogue_slot(core, now, lat, rd, value, counters);
                }
                None => {
                    // The schedule promised a message for this slot and it
                    // has not arrived: the real hardware would execute a
                    // stale SET here. Strict mode reports it as the
                    // deterministic scheduling bug it is; permissive mode
                    // keeps the historical treat-as-NOP behaviour (the
                    // shortfall still surfaces as `MissingMessages` at the
                    // Vcycle wrap).
                    if env.strict_hazards {
                        return Err(MachineError::MissingScheduledMessage {
                            core: core_id,
                            slot,
                            position: pos,
                        });
                    }
                }
            }
        }
        return Ok(());
    }

    let instr = core.prog.body[pos as usize];
    exec_instr(
        env, core, core_id, pos, now, instr, cache, counters, events, sends,
    )
}

/// Executes one filled epilogue slot (`SET rd, value`) at compute time
/// `now`. Shared by [`step_core`] and the replay engines' dense epilogue
/// walks.
pub(crate) fn exec_epilogue_slot(
    core: &mut CoreView<'_>,
    now: u64,
    lat: u64,
    rd: Reg,
    value: u16,
    counters: &mut PerfCounters,
) {
    core.write_reg(now, lat, rd, value, false);
    core.cs.executed += 1;
    counters.instructions += 1;
}

/// Executes one already-decoded body instruction. This is the single
/// source of architectural truth for instruction semantics: the serial
/// engine, the sharded BSP engine, and the tape replay engine all funnel
/// every body instruction through here (the micro-op engine is compiled
/// from the same instructions and checked against this interpreter).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_instr(
    env: &ExecEnv<'_>,
    core: &mut CoreView<'_>,
    core_id: CoreId,
    pos: u64,
    now: u64,
    instr: Instruction,
    cache: Option<&mut Cache>,
    counters: &mut PerfCounters,
    events: &mut Vec<HostEvent>,
    sends: &mut Vec<SendRecord>,
) -> Result<(), MachineError> {
    let lat = env.config.hazard_latency as u64;
    if !matches!(instr, Instruction::Nop) {
        core.cs.executed += 1;
        counters.instructions += 1;
    }
    match instr {
        Instruction::Nop => {}
        Instruction::Set { rd, imm } => {
            core.write_reg(now, lat, rd, imm, false);
        }
        Instruction::Alu { op, rd, rs1, rs2 } => {
            let a = read_operand(env, core, core_id, rs1, pos)?;
            let b = read_operand(env, core, core_id, rs2, pos)?;
            let (v, c) = op.eval(a, b);
            core.write_reg(now, lat, rd, v, c);
        }
        Instruction::AddCarry {
            rd,
            rs1,
            rs2,
            rs_carry,
        } => {
            let a = read_operand(env, core, core_id, rs1, pos)? as u32;
            let b = read_operand(env, core, core_id, rs2, pos)? as u32;
            let cin = read_carry(env, core, core_id, rs_carry, pos)? as u32;
            let sum = a + b + cin;
            core.write_reg(now, lat, rd, sum as u16, sum > 0xffff);
        }
        Instruction::SubBorrow {
            rd,
            rs1,
            rs2,
            rs_borrow,
        } => {
            let a = read_operand(env, core, core_id, rs1, pos)? as i32;
            let b = read_operand(env, core, core_id, rs2, pos)? as i32;
            let carry_in = read_carry(env, core, core_id, rs_borrow, pos)? as i32;
            let diff = a - b - (1 - carry_in);
            core.write_reg(now, lat, rd, diff as u16, diff >= 0);
        }
        Instruction::Mux {
            rd,
            rs_sel,
            rs1,
            rs2,
        } => {
            let sel = read_operand(env, core, core_id, rs_sel, pos)?;
            let a = read_operand(env, core, core_id, rs1, pos)?;
            let b = read_operand(env, core, core_id, rs2, pos)?;
            let v = if sel != 0 { a } else { b };
            core.write_reg(now, lat, rd, v, false);
        }
        Instruction::Slice {
            rd,
            rs,
            offset,
            width,
        } => {
            let v = read_operand(env, core, core_id, rs, pos)?;
            let mask = if width >= 16 {
                0xffff
            } else {
                (1u16 << width) - 1
            };
            core.write_reg(now, lat, rd, (v >> offset) & mask, false);
        }
        Instruction::Custom { rd, func, rs } => {
            let masks = *core.prog.custom_masks.get(func as usize).ok_or_else(|| {
                MachineError::Load(format!(
                    "custom function {func} not programmed on {core_id}"
                ))
            })?;
            let a = read_operand(env, core, core_id, rs[0], pos)?;
            let b = read_operand(env, core, core_id, rs[1], pos)?;
            let c = read_operand(env, core, core_id, rs[2], pos)?;
            let d = read_operand(env, core, core_id, rs[3], pos)?;
            let out = eval_custom_masks(&masks, a, b, c, d);
            core.write_reg(now, lat, rd, out, false);
        }
        Instruction::Predicate { rs } => {
            let v = read_operand(env, core, core_id, rs, pos)?;
            core.cs.predicate = v != 0;
        }
        Instruction::LocalLoad { rd, rs_addr, base } => {
            let a = read_operand(env, core, core_id, rs_addr, pos)?;
            let addr = (base as usize + a as usize) % env.config.scratch_words;
            let v = core.scratch[addr];
            core.write_reg(now, lat, rd, v, false);
        }
        Instruction::LocalStore {
            rs_data,
            rs_addr,
            base,
        } => {
            let v = read_operand(env, core, core_id, rs_data, pos)?;
            let a = read_operand(env, core, core_id, rs_addr, pos)?;
            if core.cs.predicate {
                let addr = (base as usize + a as usize) % env.config.scratch_words;
                core.scratch[addr] = v;
            }
        }
        Instruction::GlobalLoad { rd, rs_addr } => {
            require_privileged(core_id)?;
            let addr = global_addr(env, core, core_id, rs_addr, pos)?;
            let cache = cache.expect("privileged core must be stepped with the cache");
            let (v, stall) = cache.load(addr);
            counters.stall_cycles += stall;
            core.write_reg(now, lat, rd, v, false);
        }
        Instruction::GlobalStore { rs_data, rs_addr } => {
            require_privileged(core_id)?;
            let v = read_operand(env, core, core_id, rs_data, pos)?;
            let addr = global_addr(env, core, core_id, rs_addr, pos)?;
            if core.cs.predicate {
                let cache = cache.expect("privileged core must be stepped with the cache");
                let stall = cache.store(addr, v);
                counters.stall_cycles += stall;
            }
        }
        Instruction::Send {
            target,
            rd_remote,
            rs,
        } => {
            let v = read_operand(env, core, core_id, rs, pos)?;
            counters.sends += 1;
            sends.push(SendRecord {
                pos,
                from: core_id,
                target,
                rd: rd_remote,
                value: v,
            });
        }
        Instruction::Expect { rs1, rs2, eid } => {
            require_privileged(core_id)?;
            let a = read_operand(env, core, core_id, rs1, pos)?;
            let b = read_operand(env, core, core_id, rs2, pos)?;
            if a != b {
                service_exception(
                    env.exceptions,
                    env.vcycle,
                    |r| core.reg_value_flushed(r),
                    eid,
                    counters,
                    events,
                )?;
            }
        }
    }
    Ok(())
}

/// Applies a 4-input LUT truth table across the 16 bit lanes — the
/// direct bit-at-a-time reference form. Execution engines use the
/// bitsliced [`eval_custom_masks`] over the load-time-transposed masks;
/// this form remains the specification it is tested against (hence live
/// only under `cfg(test)`).
#[inline]
#[allow(dead_code)]
pub(crate) fn eval_custom(table: &[u16; 16], a: u16, b: u16, c: u16, d: u16) -> u16 {
    let mut out = 0u16;
    for (lane, &row) in table.iter().enumerate() {
        let sel = ((a >> lane) & 1)
            | (((b >> lane) & 1) << 1)
            | (((c >> lane) & 1) << 2)
            | (((d >> lane) & 1) << 3);
        out |= ((row >> sel) & 1) << lane;
    }
    out
}

/// Transposes a custom-function truth table into its bitsliced mask form:
/// `masks[s]` holds, across all 16 bit lanes, truth-table entry `s` —
/// `masks[s] bit j = (table[j] >> s) & 1`. Computed once at load
/// ([`crate::CompiledProgram`]) so every engine evaluates custom
/// functions through the branch-free mux tree of [`eval_custom_masks`].
pub(crate) fn transpose_custom(table: &[u16; 16]) -> [u16; 16] {
    let mut masks = [0u16; 16];
    for (j, &row) in table.iter().enumerate() {
        for (s, mask) in masks.iter_mut().enumerate() {
            *mask |= ((row >> s) & 1) << j;
        }
    }
    masks
}

/// The bitsliced mux tree behind [`eval_custom_masks`] /
/// [`eval_custom_masks_x4`], generic over the word width so the scalar
/// and the packed forms are one piece of logic: four select levels of
/// word-wide AND/OR, ~50 branch-free ops instead of the reference
/// form's 16-iteration bit loop.
#[inline(always)]
fn custom_mux_tree<T>(m: &[T; 16], a: T, b: T, c: T, d: T) -> T
where
    T: Copy
        + std::ops::Not<Output = T>
        + std::ops::BitAnd<Output = T>
        + std::ops::BitOr<Output = T>,
{
    let (na, nb, nc, nd) = (!a, !b, !c, !d);
    let u0 = (m[0] & na) | (m[1] & a);
    let u1 = (m[2] & na) | (m[3] & a);
    let u2 = (m[4] & na) | (m[5] & a);
    let u3 = (m[6] & na) | (m[7] & a);
    let u4 = (m[8] & na) | (m[9] & a);
    let u5 = (m[10] & na) | (m[11] & a);
    let u6 = (m[12] & na) | (m[13] & a);
    let u7 = (m[14] & na) | (m[15] & a);
    let v0 = (u0 & nb) | (u1 & b);
    let v1 = (u2 & nb) | (u3 & b);
    let v2 = (u4 & nb) | (u5 & b);
    let v3 = (u6 & nb) | (u7 & b);
    let w0 = (v0 & nc) | (v1 & c);
    let w1 = (v2 & nc) | (v3 & c);
    (w0 & nd) | (w1 & d)
}

/// Evaluates a custom function through its bitsliced masks (see
/// [`transpose_custom`]). Bit-equivalence with [`eval_custom`] is pinned
/// by `custom_masks_match_reference` in the machine test suite.
#[inline(always)]
pub(crate) fn eval_custom_masks(m: &[u16; 16], a: u16, b: u16, c: u16, d: u16) -> u16 {
    custom_mux_tree(m, a, b, c, d)
}

/// [`eval_custom_masks`] over four 16-bit lanes packed into one `u64`
/// (each lane in its own 16-bit slot; `m64` is the mask set broadcast
/// into all four slots). The mux tree is pure bitwise logic, so packing
/// is exact — the gang engine uses this to evaluate one custom function
/// for four lanes per tree.
#[inline(always)]
pub(crate) fn eval_custom_masks_x4(m64: &[u64; 16], a: u64, b: u64, c: u64, d: u64) -> u64 {
    custom_mux_tree(m64, a, b, c, d)
}

/// Renders a display format string; `{}` placeholders print arguments in
/// hex, assembled from their 16-bit words (LSW first).
fn render_display(format: &str, args: &[(Vec<Reg>, usize)], read: impl Fn(Reg) -> u16) -> String {
    let mut out = String::with_capacity(format.len() + 16);
    let mut arg_iter = args.iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' && chars.peek() == Some(&'}') {
            chars.next();
            match arg_iter.next() {
                Some((regs, _width)) => {
                    let words: Vec<u16> = regs.iter().map(|&r| read(r)).collect();
                    out.push_str(&hex_of_words(&words));
                }
                None => out.push_str("<missing>"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Hex rendering of a little-endian word vector without leading zeros.
fn hex_of_words(words: &[u16]) -> String {
    let mut s = String::new();
    let mut started = false;
    for w in words.iter().rev() {
        if started {
            s.push_str(&format!("{w:04x}"));
        } else if *w != 0 {
            s.push_str(&format!("{w:x}"));
            started = true;
        }
    }
    if !started {
        s.push('0');
    }
    s
}
