//! The validate-once / replay-many tape: frozen per-core schedules and the
//! machine-wide delivery schedule.
//!
//! Manticore's compute domain is statically scheduled and deterministic:
//! every Vcycle executes the same instruction at the same position on every
//! core, every `Send` takes the same route with the same latency, and every
//! message lands in the same epilogue slot. Only the *data* differs between
//! Vcycles. The first Vcycle therefore acts as a **validation** pass — it
//! proves the schedule's assumptions (no link collisions, no late or
//! missing messages, no epilogue overflow, and, in strict mode, no data
//! hazards) — and every later Vcycle can execute a frozen **replay tape**
//! that skips all of the interpreter overhead those proofs made redundant:
//!
//! - **NOP and idle-tail positions** — the dense per-core tape holds only
//!   `(position, pre-decoded instruction)` entries, so a core whose body is
//!   ten instructions in a 400-cycle Vcycle costs ten steps, not 400;
//! - **per-position message scanning** — the serial engine scans the NoC's
//!   in-flight list at every position (`take_due`); the replay engine uses
//!   the precomputed [`ReplayTape::deliveries`] schedule, which maps the
//!   *k*-th send of the Vcycle straight to its `(target, slot, rd)`;
//! - **link bookkeeping** — routes and reservations never change, so the
//!   NoC is bypassed entirely.
//!
//! The tape is a pure function of the loaded program and the machine
//! configuration, so it is built once when the program is frozen into a
//! [`crate::CompiledProgram`] and shared by every run; it is
//! *used* only after the validation Vcycle completes successfully (a
//! program whose validation Vcycle fails never reaches the replay path).
//! Bit-identity with the per-position engines is structural: the tape
//! replays through the same `exec_instr` / `exec_epilogue_slot` executors
//! at the same `(position, compute-time)` coordinates, and the delivery
//! schedule reproduces the serial engine's exact delivery order — sorted by
//! `(delivery position, arrival time, injection order)`, the order
//! `Noc::take_due` yields.

use manticore_isa::{Instruction, MachineConfig, Reg};

use crate::program::CoreProgram;

/// One pre-decoded body entry: the instruction at a (non-NOP) position.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TapeOp {
    /// Position within the Vcycle.
    pub pos: u32,
    /// The instruction, pre-fetched so replay never touches `core.body`.
    pub instr: Instruction,
}

/// One entry of the frozen delivery schedule, in the serial engine's
/// delivery order. The value is not stored — it is produced fresh each
/// Vcycle by the `send_idx`-th send of the replayed body phase.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplayDelivery {
    /// Index of the producing send in core-major collection order (the
    /// order a replayed body phase records `SendRecord`s).
    pub send_idx: u32,
    /// Target core, linear row-major index.
    pub target: u32,
    /// Epilogue slot the message fills.
    pub slot: u32,
    /// Destination register of the epilogue `SET`.
    pub rd: Reg,
}

/// The frozen per-machine replay schedule. See the module docs.
#[derive(Debug)]
pub(crate) struct ReplayTape {
    /// Per core (linear index): dense non-NOP body entries in position
    /// order, truncated to the Vcycle length.
    pub body: Vec<Vec<TapeOp>>,
    /// Per core: how many epilogue slots actually issue (slots whose
    /// position `body_len + slot` falls inside the Vcycle).
    pub epi_exec: Vec<usize>,
    /// All deliveries of one Vcycle, in serial delivery order.
    pub deliveries: Vec<ReplayDelivery>,
    /// Sends recorded per Vcycle (sanity check for the replayed body).
    pub sends_per_vcycle: usize,
}

/// A `Send` site discovered while scanning the bodies.
struct SendSite {
    /// Issue position within the Vcycle.
    pos: u64,
    /// Sender, linear index (core-major collection order is `(from, pos)`).
    from: usize,
    /// Target, linear index.
    target: usize,
    /// Position at which the serial engine delivers the message: the first
    /// `take_due` scan after both injection and arrival.
    deliver_at: u64,
    /// Arrival time offset (the `take_due` sort key).
    arrive: u64,
    rd: Reg,
}

impl ReplayTape {
    /// Approximate heap footprint of the frozen tape, in bytes. An
    /// accounting figure for cache budgeting, not an allocator-exact
    /// measurement.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        for body in &self.body {
            bytes += body.len() * size_of::<TapeOp>();
        }
        bytes += self.epi_exec.len() * size_of::<usize>();
        bytes += self.deliveries.len() * size_of::<ReplayDelivery>();
        bytes
    }

    /// Freezes the replay schedule for a loaded program, or `None` when the
    /// program cannot be replayed:
    ///
    /// - a message's delivery falls past the Vcycle end (the wrap check
    ///   makes such programs fail their validation Vcycle, since the
    ///   boundary-crossing message cannot have arrived in Vcycle 0), or
    /// - the per-target delivery count does not equal the declared epilogue
    ///   length (validation fails with overflow/missing messages).
    ///
    /// Returning `None` simply keeps the machine on the full per-position
    /// engines, which then report the failure exactly as before.
    pub fn build(
        cores: &[CoreProgram],
        config: &MachineConfig,
        vcycle_len: u64,
    ) -> Option<ReplayTape> {
        let w = config.grid_width;
        let h = config.grid_height;
        let inj = config.injection_latency as u64;
        let hop = config.hop_latency as u64;

        let mut body: Vec<Vec<TapeOp>> = Vec::with_capacity(cores.len());
        let mut sites: Vec<SendSite> = Vec::new();
        for (idx, core) in cores.iter().enumerate() {
            let mut ops = Vec::new();
            for (pos, &instr) in core.body.iter().enumerate() {
                if pos as u64 >= vcycle_len {
                    break; // positions past the Vcycle never issue
                }
                if matches!(instr, Instruction::Nop) {
                    continue;
                }
                if let Instruction::Send {
                    target, rd_remote, ..
                } = instr
                {
                    // Dimension-ordered unidirectional torus distance,
                    // matching `Noc::path`.
                    let dx = (target.x as usize + w - idx % w) % w;
                    let dy = (target.y as usize + h - idx / w) % h;
                    let hops = (dx + dy) as u64;
                    let pos = pos as u64;
                    let arrive = pos + inj + hops * hop;
                    // `take_due` runs before issue, so a message can be
                    // picked up at the earliest one position after its
                    // injection (relevant only for zero-latency configs).
                    let deliver_at = arrive.max(pos + 1);
                    if deliver_at >= vcycle_len {
                        return None;
                    }
                    sites.push(SendSite {
                        pos,
                        from: idx,
                        target: target.linear(w),
                        deliver_at,
                        arrive,
                        rd: rd_remote,
                    });
                }
                ops.push(TapeOp {
                    pos: pos as u32,
                    instr,
                });
            }
            body.push(ops);
        }

        // Serial injection order is `(position, sender index)`; rank each
        // site so ties on arrival time break the way `take_due`'s stable
        // sort does.
        let mut by_injection: Vec<usize> = (0..sites.len()).collect();
        by_injection.sort_by_key(|&i| (sites[i].pos, sites[i].from));
        let mut injection_rank = vec![0usize; sites.len()];
        for (rank, &i) in by_injection.iter().enumerate() {
            injection_rank[i] = rank;
        }

        // Serial delivery order, and with it the epilogue slot assignment.
        let mut by_delivery: Vec<usize> = (0..sites.len()).collect();
        by_delivery.sort_by_key(|&i| (sites[i].deliver_at, sites[i].arrive, injection_rank[i]));
        let mut next_slot = vec![0usize; cores.len()];
        let mut deliveries = Vec::with_capacity(sites.len());
        for &i in &by_delivery {
            let s = &sites[i];
            let slot = next_slot[s.target];
            if slot >= cores[s.target].epilogue_len {
                return None; // validation reports EpilogueOverflow
            }
            next_slot[s.target] += 1;
            deliveries.push(ReplayDelivery {
                send_idx: i as u32,
                target: s.target as u32,
                slot: slot as u32,
                rd: s.rd,
            });
        }
        if cores
            .iter()
            .zip(&next_slot)
            .any(|(c, &n)| n != c.epilogue_len)
        {
            return None; // validation reports MissingMessages
        }

        let epi_exec = cores
            .iter()
            .map(|c| (vcycle_len.saturating_sub(c.body.len() as u64) as usize).min(c.epilogue_len))
            .collect();

        Some(ReplayTape {
            body,
            epi_exec,
            deliveries,
            sends_per_vcycle: sites.len(),
        })
    }
}
