//! The privileged core's global memory path: a direct-mapped, write-allocate,
//! write-back cache backed by a sparse DRAM model.
//!
//! Matches §5.3 of the paper: 128 KiB (64 Ki 16-bit words), implemented on
//! the FPGA with 4 URAMs. Every access stalls the full grid whether it hits
//! or misses; the stall durations come from
//! [`CacheConfig`](manticore_isa::CacheConfig).

use std::collections::HashMap;

use manticore_isa::CacheConfig;

/// Hit/miss/writeback counters (the paper's hardware performance counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit a resident line.
    pub hits: u64,
    /// Accesses that required a line fill.
    pub misses: u64,
    /// Dirty lines written back to DRAM on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 1.0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Line {
    pub(crate) tag: u64,
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
}

/// Direct-mapped write-allocate write-back cache over a sparse word-addressed
/// DRAM. Fields are `pub(crate)` for the persistence layer, which must
/// round-trip the full residency state (lines, data, DRAM image, counters).
#[derive(Debug, Clone)]
pub struct Cache {
    pub(crate) config: CacheConfig,
    pub(crate) lines: Vec<Line>,
    /// Cached data, indexed `line * line_words + offset`.
    pub(crate) data: Vec<u16>,
    pub(crate) dram: HashMap<u64, u16>,
    pub(crate) stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache and DRAM.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.num_lines();
        Cache {
            data: vec![0; n * config.line_words],
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false
                };
                n
            ],
            config,
            dram: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Pre-loads a DRAM word (bootloader path; no stall, no stats).
    pub fn write_dram(&mut self, addr: u64, value: u16) {
        self.dram.insert(addr, value);
    }

    /// Reads a DRAM word bypassing the cache (host debug path). Returns the
    /// cached copy if the word is resident and dirty.
    pub fn peek(&self, addr: u64) -> u16 {
        let (line_idx, tag, offset) = self.split(addr);
        let line = &self.lines[line_idx];
        if line.valid && line.tag == tag {
            self.data[line_idx * self.config.line_words + offset]
        } else {
            self.dram.get(&addr).copied().unwrap_or(0)
        }
    }

    /// Reads `addr` through the cache; returns `(value, stall_cycles)`.
    pub fn load(&mut self, addr: u64) -> (u16, u64) {
        let stall = self.access(addr);
        let (line_idx, _, offset) = self.split(addr);
        (self.data[line_idx * self.config.line_words + offset], stall)
    }

    /// Writes `addr` through the cache (write-allocate); returns stall cycles.
    pub fn store(&mut self, addr: u64, value: u16) -> u64 {
        let stall = self.access(addr);
        let (line_idx, _, offset) = self.split(addr);
        self.data[line_idx * self.config.line_words + offset] = value;
        self.lines[line_idx].dirty = true;
        stall
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn split(&self, addr: u64) -> (usize, u64, usize) {
        let line_words = self.config.line_words as u64;
        let line_addr = addr / line_words;
        let offset = (addr % line_words) as usize;
        let line_idx = (line_addr % self.config.num_lines() as u64) as usize;
        (line_idx, line_addr, offset)
    }

    /// Makes `addr`'s line resident; returns the stall the access costs.
    fn access(&mut self, addr: u64) -> u64 {
        let (line_idx, tag, _) = self.split(addr);
        let line_words = self.config.line_words;
        let line = self.lines[line_idx];
        if line.valid && line.tag == tag {
            self.stats.hits += 1;
            return self.config.hit_stall;
        }
        self.stats.misses += 1;
        let mut stall = self.config.hit_stall + self.config.miss_stall;
        // Write back the dirty victim.
        if line.valid && line.dirty {
            self.stats.writebacks += 1;
            stall += self.config.writeback_stall;
            let base = line.tag * line_words as u64;
            for i in 0..line_words {
                let v = self.data[line_idx * line_words + i];
                self.dram.insert(base + i as u64, v);
            }
        }
        // Fill from DRAM.
        let base = tag * line_words as u64;
        for i in 0..line_words {
            self.data[line_idx * line_words + i] =
                self.dram.get(&(base + i as u64)).copied().unwrap_or(0);
        }
        self.lines[line_idx] = Line {
            tag,
            valid: true,
            dirty: false,
        };
        stall
    }
}
