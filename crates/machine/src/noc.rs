//! The unidirectional 2D torus NoC with dimension-ordered routing and
//! bufferless (drop-on-collision) switches.
//!
//! Because the compute domain is deterministic and the program repeats every
//! Vcycle, the link-occupancy pattern of Vcycle *n* is identical to Vcycle 0.
//! The model therefore performs full link-level collision validation during
//! the first Vcycle and uses precomputed arrival offsets afterwards.

use std::collections::HashMap;

use manticore_isa::{CoreId, MachineConfig, Reg};

/// One hop resource: the output link of a switch, or the delivery port into
/// a core (switch → instruction-memory write port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum LinkId {
    /// The +x output link of the switch at the given core.
    XPlus(CoreId),
    /// The +y output link of the switch at the given core.
    YPlus(CoreId),
    /// The write port into the core's instruction memory.
    Delivery(CoreId),
}

/// A message in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Message {
    pub target: CoreId,
    pub rd: Reg,
    pub value: u16,
    /// Compute-domain time at which the message is delivered.
    pub arrive_at: u64,
}

/// A detected link collision (two messages claiming a link in one cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collision {
    /// Human-readable description of the contended resource.
    pub link: String,
    /// Position within the Vcycle at which the collision occurs.
    pub position: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct Noc {
    grid_width: usize,
    grid_height: usize,
    hop_latency: u64,
    injection_latency: u64,
    /// Link reservations keyed by `(link, position-in-vcycle)`; only
    /// populated during the validation (first) Vcycle. `pub(crate)` so
    /// the persistence layer can carry them across a save/load (a
    /// recovered machine must not re-validate links it already reserved).
    pub(crate) reservations: HashMap<(LinkId, u64), CoreId>,
    /// Messages in flight, sorted by arrival through BinaryHeap-free scan
    /// (counts are tiny per cycle).
    pub in_flight: Vec<Message>,
}

impl Noc {
    pub fn new(config: &MachineConfig) -> Self {
        Noc {
            grid_width: config.grid_width,
            grid_height: config.grid_height,
            hop_latency: config.hop_latency as u64,
            injection_latency: config.injection_latency as u64,
            reservations: HashMap::new(),
            in_flight: Vec::new(),
        }
    }

    /// The dimension-ordered (X then Y) path from `from` to `to` as a list
    /// of output links, in traversal order.
    pub fn path(&self, from: CoreId, to: CoreId) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut x = from.x as usize;
        let mut y = from.y as usize;
        while x != to.x as usize {
            links.push(LinkId::XPlus(CoreId::new(x as u8, y as u8)));
            x = (x + 1) % self.grid_width;
        }
        while y != to.y as usize {
            links.push(LinkId::YPlus(CoreId::new(x as u8, y as u8)));
            y = (y + 1) % self.grid_height;
        }
        links.push(LinkId::Delivery(to));
        links
    }

    /// Injects a message sent at compute time `now` (Vcycle position `pos`).
    ///
    /// During the validation Vcycle (`validate = true`) every hop reserves
    /// its link; a conflicting reservation is reported as a collision —
    /// on the real bufferless switches the message would be dropped.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        from: CoreId,
        target: CoreId,
        rd: Reg,
        value: u16,
        now: u64,
        pos: u64,
        validate: bool,
    ) -> Result<(), Collision> {
        let path = self.path(from, target);
        let first_link_at = now + self.injection_latency;
        if validate {
            for (i, link) in path.iter().enumerate() {
                let at = pos + self.injection_latency + i as u64 * self.hop_latency;
                if let Some(prev) = self.reservations.insert((*link, at), from) {
                    if prev != from {
                        return Err(Collision {
                            link: format!("{link:?}"),
                            position: at,
                        });
                    }
                    // Same sender reserving the same link twice in one cycle
                    // means two of its own messages collide.
                    return Err(Collision {
                        link: format!("{link:?} (self)"),
                        position: at,
                    });
                }
            }
        }
        let hops = (path.len() - 1) as u64; // last entry is the delivery port
        let arrive_at = first_link_at + hops * self.hop_latency;
        self.in_flight.push(Message {
            target,
            rd,
            value,
            arrive_at,
        });
        Ok(())
    }

    /// Removes all messages due at or before `now` into `due`, in arrival
    /// order (stable for equal times: injection order). `due` must be
    /// empty; the caller owns it so the per-position scan of a hot Vcycle
    /// loop can reuse one buffer instead of allocating per position.
    ///
    /// A single stable partition: `retain` keeps the not-yet-due messages
    /// in injection order and hands the due ones over in injection order,
    /// so the stable sort by arrival time preserves injection order among
    /// equal arrivals — O(n + d log d) instead of the O(n·d) that
    /// element-wise `Vec::remove` would cost per position.
    pub fn take_due_into(&mut self, now: u64, due: &mut Vec<Message>) {
        debug_assert!(due.is_empty(), "take_due_into expects a drained buffer");
        self.in_flight.retain(|m| {
            if m.arrive_at <= now {
                due.push(*m);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| m.arrive_at);
    }

    /// Allocating convenience form of [`Noc::take_due_into`].
    pub fn take_due(&mut self, now: u64) -> Vec<Message> {
        let mut due: Vec<Message> = Vec::new();
        self.take_due_into(now, &mut due);
        due
    }
}
