//! The sharded bulk-synchronous execution engine.
//!
//! This is the machine model executing the way the paper's hardware does:
//! compute phases run with *zero* fine-grained synchronization, and all
//! cross-core effects rendezvous at statically-known points. The grid is
//! split into contiguous shards of cores, each owned by one worker thread,
//! and every Vcycle runs as
//!
//! 1. **body phase (parallel)** — each shard steps its cores through their
//!    program bodies. Cores never read other cores' state mid-body, so the
//!    only cross-core traffic — `Send` instructions — is *recorded* into
//!    shard-local lists instead of being routed. Shard-local
//!    [`PerfCounters`] and host events accumulate the same way.
//! 2. **barrier**, then **NoC commit (serial)** — the main thread merges
//!    shard scratch in shard order, sorts the recorded sends into the
//!    serial engine's injection order `(position, sender index)`, and
//!    replays them through the real [`Noc`]: link-collision validation on
//!    the first Vcycle, arrival-time computation, and in-order delivery
//!    into per-target epilogue slots. Delivery legality (overflow, late
//!    message) is decided here, against the same static program geometry
//!    the serial engine checks against.
//! 3. **epilogue phase (parallel)** — shards apply the deliveries routed
//!    to their cores and execute the message epilogues (plus the idle tail
//!    of the Vcycle, which only drains pipeline writebacks).
//! 4. **barrier**, then **wrap (serial)** — missing-message checks in core
//!    order, clock-domain accounting, event draining.
//!
//! Each shard owns a disjoint window of the machine: its `CoreState`
//! slice plus the matching `split_at_mut` ranges of the grid-wide
//! structure-of-arrays register file and scratchpad (a [`ShardSlice`]).
//!
//! Bit-identical to the serial engine by construction: both funnel every
//! instruction through [`exec::step_core`], and the commit phase performs
//! the serial engine's NoC interactions in the serial engine's order. The
//! only divergence is *after* a failing Vcycle (serial aborts mid-cycle,
//! the shards complete theirs), where the machine is dead anyway — the
//! returned error is still deterministic and equal to the serial one: all
//! error candidates are ranked by the serial engine's encounter order
//! `(position, delivery-before-issue, core index)` and the minimum wins.
//!
//! Messages whose arrival time falls beyond the current Vcycle stay in the
//! NoC's in-flight list, so serial and parallel modes can be switched
//! freely between `run_vcycles` calls.
//!
//! After the validation Vcycle, all three phases switch to the frozen
//! replay schedule (see [`crate::replay`]) when replay is enabled: shards
//! walk dense pre-decoded per-core schedules instead of every position —
//! the tape through the shared interpreter, or (the default,
//! [`crate::uops`]) the fused micro-op stream — and the commit phase
//! applies the precomputed delivery schedule instead of replaying the NoC.
//! The validated structure repeats exactly, only the values differ.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use manticore_isa::{CoreId, ExceptionDescriptor, MachineConfig, Reg};
use manticore_util::SpinBarrier;

use crate::cache::Cache;
use crate::core::{CoreState, CoreView};
use crate::exec::{core_id_of, exec_epilogue_slot, exec_instr, step_core, ExecEnv, SendRecord};
use crate::grid::{
    HostEvent, Interrupt, Machine, MachineError, PerfCounters, ReplayEngine, RunOutcome,
};
use crate::program::CoreProgram;
use crate::replay::ReplayTape;
use crate::uops::{run_core_uops, MicroProgram};

const CMD_BODY: u8 = 1;
const CMD_EPILOGUE: u8 = 2;
const CMD_EXIT: u8 = 3;

/// Shared phase-control block: the main thread publishes the command and
/// Vcycle timing, then everyone meets at the barrier. The barrier's
/// acquire/release pairs make the published values visible to workers.
struct Ctl {
    barrier: SpinBarrier,
    cmd: AtomicU8,
    vstart: AtomicU64,
    vcycle: AtomicU64,
}

/// One shard's disjoint window of the machine: its cores plus the
/// matching lanes of the SoA register file and scratchpad.
struct ShardSlice<'a> {
    cores: &'a mut [CoreState],
    regs: &'a mut [u32],
    scratch: &'a mut [u16],
    /// The whole grid's shared core programs (read-only, indexed by
    /// `base + local`).
    progs: &'a [CoreProgram],
    /// Linear index of the first core in this shard.
    base: usize,
    regfile_size: usize,
    scratch_words: usize,
}

impl ShardSlice<'_> {
    /// The view for the shard-local core `local`.
    fn view(&mut self, local: usize) -> CoreView<'_> {
        let rf = self.regfile_size;
        let sw = self.scratch_words;
        CoreView {
            cs: &mut self.cores[local],
            prog: &self.progs[self.base + local],
            regs: &mut self.regs[local * rf..(local + 1) * rf],
            scratch: &mut self.scratch[local * sw..(local + 1) * sw],
        }
    }
}

/// A message routed to a shard during the NoC commit, to be applied at the
/// start of its epilogue phase.
struct Delivery {
    local_idx: usize,
    slot: usize,
    rd: Reg,
    value: u16,
}

/// An error candidate ranked by the serial engine's encounter order.
struct RankedError {
    pos: u64,
    /// Deliveries happen before instruction issue at the same position.
    delivery_phase: bool,
    /// Tie-break within a position: delivery sequence number or core index.
    ord: usize,
    err: MachineError,
}

impl RankedError {
    fn key(&self) -> (u64, u8, usize) {
        (self.pos, u8::from(!self.delivery_phase), self.ord)
    }
}

/// Takes the earlier (serial-encounter-order) of two error candidates.
fn min_error(a: Option<RankedError>, b: Option<RankedError>) -> Option<RankedError> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.key() <= y.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Per-shard scratch: everything a shard produces in a phase, merged by
/// the main thread between barriers. Counter merging happens in shard
/// index order; since the touched counters are plain `u64` sums this is
/// deterministic — and shard-count-independent — by associativity.
#[derive(Default)]
struct ShardScratch {
    counters: PerfCounters,
    sends: Vec<SendRecord>,
    /// Send *values* in core-major order (micro-op replay mode, where
    /// routing is frozen and only values travel).
    send_vals: Vec<u16>,
    events: Vec<HostEvent>,
    error: Option<RankedError>,
    deliveries: Vec<Delivery>,
}

impl ShardScratch {
    fn record_error(&mut self, e: RankedError) {
        let cur = self.error.take();
        self.error = min_error(cur, Some(e));
    }
}

/// One shard's body phase: step every owned core through its program body.
/// `cache` is `Some` only for the shard holding the privileged core.
///
/// With a frozen replay schedule (meaning the validation Vcycle already
/// ran), the shard walks dense pre-decoded entries instead of every
/// position: `uprog` selects the fused micro-op stream, `tape` the
/// pre-decoded tape through the shared executors — same `(position,
/// compute-time)` coordinates either way, far fewer interpreted steps.
#[allow(clippy::too_many_arguments)]
fn body_phase(
    config: &MachineConfig,
    exceptions: &[ExceptionDescriptor],
    strict_hazards: bool,
    vcycle: u64,
    vcycle_len: u64,
    shard: &mut ShardSlice<'_>,
    vstart: u64,
    mut cache: Option<&mut Cache>,
    tape: Option<&ReplayTape>,
    uprog: Option<&MicroProgram>,
    sc: &mut ShardScratch,
) {
    let env = ExecEnv {
        config,
        exceptions,
        strict_hazards,
        vcycle,
    };
    let base = shard.base;
    for i in 0..shard.cores.len() {
        let idx = base + i;
        let core_id = core_id_of(idx, config.grid_width);
        let is_privileged = core_id == CoreId::PRIVILEGED;
        if let Some(up) = uprog {
            // Micro-op replay: skip architecturally inert cores entirely.
            let stream = &up.streams[idx];
            if stream.is_empty() && shard.progs[idx].epilogue_len == 0 {
                continue;
            }
            let mut view = shard.view(i);
            let cache_arg = if is_privileged {
                cache.as_deref_mut()
            } else {
                None
            };
            // Strict mode (validated, no cross-boundary hazard — the
            // engine selection guarantees it) commits writes directly.
            let run = if strict_hazards {
                run_core_uops::<true>
            } else {
                run_core_uops::<false>
            };
            if let Err(fault) = run(
                exceptions,
                vcycle,
                config.scratch_words,
                config.hazard_latency as u64,
                vstart,
                &mut view,
                stream,
                cache_arg,
                &mut sc.counters,
                &mut sc.events,
                &mut sc.send_vals,
            ) {
                sc.record_error(RankedError {
                    pos: fault.pos,
                    delivery_phase: false,
                    ord: idx,
                    err: fault.err,
                });
            }
            continue;
        }
        let mut view = shard.view(i);
        if let Some(tape) = tape {
            for op in &tape.body[idx] {
                let pos = op.pos as u64;
                let now = vstart + pos;
                view.commit_due(now);
                let cache_arg = if is_privileged {
                    cache.as_deref_mut()
                } else {
                    None
                };
                if let Err(err) = exec_instr(
                    &env,
                    &mut view,
                    core_id,
                    pos,
                    now,
                    op.instr,
                    cache_arg,
                    &mut sc.counters,
                    &mut sc.events,
                    &mut sc.sends,
                ) {
                    sc.record_error(RankedError {
                        pos,
                        delivery_phase: false,
                        ord: idx,
                        err,
                    });
                    break;
                }
            }
            continue;
        }
        let body_len = (view.prog.body.len() as u64).min(vcycle_len);
        for pos in 0..body_len {
            let now = vstart + pos;
            view.commit_due(now);
            let cache_arg = if is_privileged {
                cache.as_deref_mut()
            } else {
                None
            };
            if let Err(err) = step_core(
                &env,
                &mut view,
                core_id,
                pos,
                now,
                cache_arg,
                &mut sc.counters,
                &mut sc.events,
                &mut sc.sends,
            ) {
                // The failing core stops here (as the serial engine would
                // stop the world); its position/index rank decides below
                // whether this is the error the run reports.
                sc.record_error(RankedError {
                    pos,
                    delivery_phase: false,
                    ord: idx,
                    err,
                });
                break;
            }
        }
    }
}

/// One shard's epilogue phase: apply routed deliveries, execute the
/// message epilogues, drain the idle tail, and wrap the Vcycle.
///
/// Execution goes through the same [`step_core`] as everything else (its
/// epilogue branch cannot fail, send, or touch the cache, so the extra
/// arguments are inert) — keeping the bit-identical-by-construction
/// invariant structural rather than by parallel maintenance. Both replay
/// lowerings share the dense validated-slot walk.
#[allow(clippy::too_many_arguments)]
fn epilogue_phase(
    config: &MachineConfig,
    exceptions: &[ExceptionDescriptor],
    strict_hazards: bool,
    vcycle: u64,
    shard: &mut ShardSlice<'_>,
    vstart: u64,
    vcycle_len: u64,
    tape: Option<&ReplayTape>,
    uprog: Option<&MicroProgram>,
    sc: &mut ShardScratch,
) {
    if let (Some(tape), Some(_), true) = (tape, uprog, strict_hazards) {
        // Direct micro-op epilogue: deliveries arrive in per-core slot
        // order, nothing can observe the writes in flight, so each
        // executing slot is one direct register commit; bulk counters.
        let base = shard.base;
        let rf = shard.regfile_size;
        for d in sc.deliveries.drain(..) {
            if d.slot < tape.epi_exec[base + d.local_idx] {
                shard.regs[d.local_idx * rf + d.rd.index()] = d.value as u32;
            }
        }
        for (i, core) in shard.cores.iter_mut().enumerate() {
            let epi = tape.epi_exec[base + i] as u64;
            core.executed += epi;
            sc.counters.instructions += epi;
        }
        return;
    }
    let env = ExecEnv {
        config,
        exceptions,
        strict_hazards,
        vcycle,
    };
    for d in sc.deliveries.drain(..) {
        let core = &mut shard.cores[d.local_idx];
        core.epilogue[d.slot] = Some((d.rd, d.value));
        core.received += 1;
    }
    let base = shard.base;
    if let Some(tape) = tape {
        // Replay: every slot was validated to fill and `epi_exec` clamps
        // the ones that never issue; the idle tail is pure pipeline drain
        // and is skipped (commits happen lazily before the next read).
        let lat = config.hazard_latency as u64;
        for i in 0..shard.cores.len() {
            let mut view = shard.view(i);
            let body_len = view.prog.body.len() as u64;
            for slot in 0..tape.epi_exec[base + i] {
                let now = vstart + body_len + slot as u64;
                view.commit_due(now);
                let (rd, value) = view.cs.epilogue[slot].expect("validated: every slot fills");
                exec_epilogue_slot(&mut view, now, lat, rd, value, &mut sc.counters);
            }
            view.cs.wrap_vcycle();
        }
        return;
    }
    for i in 0..shard.cores.len() {
        let core_id = core_id_of(base + i, config.grid_width);
        let mut view = shard.view(i);
        let body_len = (view.prog.body.len() as u64).min(vcycle_len);
        for pos in body_len..vcycle_len {
            let now = vstart + pos;
            view.commit_due(now);
            // Cannot fault: deliveries for the whole Vcycle were applied
            // above, and in strict mode the commit phase already aborted
            // the Vcycle if any slot would have issued empty (the serial
            // engine's `MissingScheduledMessage`); in permissive mode an
            // empty slot is a NOP.
            step_core(
                &env,
                &mut view,
                core_id,
                pos,
                now,
                None,
                &mut sc.counters,
                &mut sc.events,
                &mut sc.sends,
            )
            .expect("epilogue positions cannot fault");
        }
        view.cs.wrap_vcycle();
    }
}

/// Runs up to `max_vcycles` on `shards` worker threads (the calling thread
/// drives shard 0 and the serial commit phases).
pub(crate) fn run_vcycles_parallel(
    m: &mut Machine,
    max_vcycles: u64,
    shards: usize,
) -> Result<RunOutcome, MachineError> {
    let n = m.cores.len();
    if n == 0 {
        return Ok(RunOutcome::default());
    }
    let per = n.div_ceil(shards.clamp(1, n));
    let shards = n.div_ceil(per);
    let program = &m.program;
    let vcl = program.vcycle_len;
    let grid_width = program.config.grid_width;
    let strict = m.strict_hazards;
    let rf = program.config.regfile_size;
    let sw = program.config.scratch_words;

    // Static program geometry, for main-side delivery legality checks.
    let body_lens: Vec<u64> = program.cores.iter().map(|c| c.body.len() as u64).collect();
    let epi_lens: Vec<usize> = program.cores.iter().map(|c| c.epilogue_len).collect();

    // The frozen replay schedule (used only for Vcycles after the
    // validation Vcycle — the phases re-check `ctl.vcycle > 0` each time).
    let replay_tape: Option<&ReplayTape> = if m.replay_enabled && !m.tape_invalidated {
        program.replay_tape.as_ref()
    } else {
        None
    };
    let micro_prog: Option<&MicroProgram> = if replay_tape.is_some()
        && m.replay_engine == ReplayEngine::MicroOps
        && !m.uops_defer_to_tape()
    {
        program.micro_prog.as_ref()
    } else {
        None
    };

    // Split borrows of the machine: shards own disjoint core ranges (and
    // the matching SoA lanes); the main thread keeps the NoC, cache,
    // global counters, and events.
    let config = &program.config;
    let exceptions = &program.exceptions[..];
    let progs = &program.cores[..];
    // Cooperative controls, copied out before the split borrows (the
    // token is an `Arc` clone, the deadline is `Copy`).
    let cancel = m.control.as_deref().and_then(|c| c.cancel.clone());
    let deadline = m.control.as_deref().and_then(|c| c.deadline);
    let noc = &mut m.noc;
    let cache = &mut m.cache;
    let counters = &mut m.counters;
    let events = &mut m.events;
    let compute_time = &mut m.compute_time;
    let finish_requested = &mut m.finish_requested;

    let mut chunks: Vec<ShardSlice<'_>> = Vec::with_capacity(shards);
    let mut rest: &mut [CoreState] = &mut m.cores[..];
    let mut rest_regs: &mut [u32] = &mut m.regs[..];
    let mut rest_scratch: &mut [u16] = &mut m.scratch[..];
    let mut base = 0usize;
    for _ in 0..shards {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        rest = tail;
        let (head_regs, tail_regs) = rest_regs.split_at_mut(take * rf);
        rest_regs = tail_regs;
        let (head_scratch, tail_scratch) = rest_scratch.split_at_mut(take * sw);
        rest_scratch = tail_scratch;
        chunks.push(ShardSlice {
            cores: head,
            regs: head_regs,
            scratch: head_scratch,
            progs,
            base,
            regfile_size: rf,
            scratch_words: sw,
        });
        base += take;
    }

    let scratches: Vec<Mutex<ShardScratch>> = (0..shards)
        .map(|_| Mutex::new(ShardScratch::default()))
        .collect();
    let ctl = Ctl {
        barrier: SpinBarrier::new(shards),
        cmd: AtomicU8::new(0),
        vstart: AtomicU64::new(0),
        vcycle: AtomicU64::new(0),
    };

    std::thread::scope(|scope| {
        let mut chunk_iter = chunks.into_iter();
        let mut chunk0 = chunk_iter.next().expect("at least one shard");
        for (w, mut chunk) in chunk_iter.enumerate() {
            let sid = w + 1;
            let ctl = &ctl;
            let scratches = &scratches;
            scope.spawn(move || {
                // If any participant (a sibling shard or the main thread)
                // panics, its guard poisons the barrier and every wait
                // errors out — workers exit instead of spinning forever on
                // a rendezvous that can never complete.
                let _guard = ctl.barrier.guard();
                loop {
                    if ctl.barrier.wait().is_err() {
                        break;
                    }
                    match ctl.cmd.load(Ordering::Acquire) {
                        CMD_BODY => {
                            let vstart = ctl.vstart.load(Ordering::Acquire);
                            let vcycle = ctl.vcycle.load(Ordering::Acquire);
                            let tape = replay_tape.filter(|_| vcycle > 0);
                            let uprog = micro_prog.filter(|_| vcycle > 0);
                            let mut sc = scratches[sid].lock().unwrap();
                            body_phase(
                                config, exceptions, strict, vcycle, vcl, &mut chunk, vstart, None,
                                tape, uprog, &mut sc,
                            );
                        }
                        CMD_EPILOGUE => {
                            let vstart = ctl.vstart.load(Ordering::Acquire);
                            let vcycle = ctl.vcycle.load(Ordering::Acquire);
                            let tape = replay_tape.filter(|_| vcycle > 0);
                            let uprog = micro_prog.filter(|_| vcycle > 0);
                            let mut sc = scratches[sid].lock().unwrap();
                            epilogue_phase(
                                config, exceptions, strict, vcycle, &mut chunk, vstart, vcl, tape,
                                uprog, &mut sc,
                            );
                        }
                        _ => break,
                    }
                    if ctl.barrier.wait().is_err() {
                        break;
                    }
                }
            });
        }
        // Main thread participates in the same panic protocol.
        let _main_guard = ctl.barrier.guard();

        let mut outcome = RunOutcome::default();
        let mut fatal: Option<MachineError> = None;
        let mut all_sends: Vec<SendRecord> = Vec::new();
        let mut all_vals: Vec<u16> = Vec::new();
        let mut delivered = vec![0usize; n];
        // Per-slot delivery positions, tracked so strict mode can reproduce
        // the serial engine's `MissingScheduledMessage` ordering: an empty
        // slot at issue outranks both the late delivery that would have
        // filled it and the Vcycle-wrap `MissingMessages` check.
        let epi_offsets: Vec<usize> = {
            let mut off = Vec::with_capacity(n);
            let mut acc = 0usize;
            for &l in &epi_lens {
                off.push(acc);
                acc += l;
            }
            off
        };
        let mut slot_pos: Vec<u64> = vec![u64::MAX; epi_lens.iter().sum()];
        'vcycles: for _ in 0..max_vcycles {
            if *finish_requested {
                break;
            }
            if cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                outcome.interrupted = Some(Interrupt::Cancelled);
                break;
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                outcome.interrupted = Some(Interrupt::Deadline);
                break;
            }
            let vstart = *compute_time;
            let validate = counters.vcycles == 0;
            let tape = replay_tape.filter(|_| !validate);
            let uprog = micro_prog.filter(|_| !validate);

            // ---- body phase (parallel) ----
            ctl.vstart.store(vstart, Ordering::Release);
            ctl.vcycle.store(counters.vcycles, Ordering::Release);
            ctl.cmd.store(CMD_BODY, Ordering::Release);
            if ctl.barrier.wait().is_err() {
                break 'vcycles;
            }
            {
                let mut sc = scratches[0].lock().unwrap();
                body_phase(
                    config,
                    exceptions,
                    strict,
                    counters.vcycles,
                    vcl,
                    &mut chunk0,
                    vstart,
                    Some(&mut *cache),
                    tape,
                    uprog,
                    &mut sc,
                );
            }
            if ctl.barrier.wait().is_err() {
                break 'vcycles;
            }

            // ---- NoC commit (serial): merge scratch, replay the NoC ----
            let mut pending_err: Option<RankedError> = None;
            all_sends.clear();
            all_vals.clear();
            for mx in scratches.iter() {
                let mut sc = mx.lock().unwrap();
                counters.merge_from(&sc.counters);
                sc.counters = PerfCounters::default();
                events.append(&mut sc.events);
                pending_err = min_error(pending_err, sc.error.take());
                all_sends.append(&mut sc.sends);
                all_vals.append(&mut sc.send_vals);
            }
            let mut replay_err: Option<RankedError> = None;
            if let Some(t) = tape {
                // Frozen delivery schedule: shard scratch, merged in shard
                // order, is already in the tape's core-major send order, so
                // each schedule entry maps straight to this Vcycle's value.
                // (Skipped when a shard faulted: the serial replay engines
                // abort before their delivery phase too.)
                if pending_err.is_none() {
                    if uprog.is_some() {
                        debug_assert_eq!(all_vals.len(), t.sends_per_vcycle);
                    } else {
                        debug_assert_eq!(all_sends.len(), t.sends_per_vcycle);
                    }
                    for d in &t.deliveries {
                        let tgt = d.target as usize;
                        let value = if uprog.is_some() {
                            all_vals[d.send_idx as usize]
                        } else {
                            all_sends[d.send_idx as usize].value
                        };
                        counters.messages_delivered += 1;
                        scratches[tgt / per]
                            .lock()
                            .unwrap()
                            .deliveries
                            .push(Delivery {
                                local_idx: tgt % per,
                                slot: d.slot as usize,
                                rd: d.rd,
                                value,
                            });
                    }
                }
            } else {
                all_sends.sort_by_key(|s| (s.pos, s.from.linear(grid_width)));

                delivered.fill(0);
                slot_pos.fill(u64::MAX);
                let mut deliver_seq = 0usize;
                let mut si = 0usize;
                // Scan the whole Vcycle even after a candidate: a late
                // delivery at position p implies a serial error at the
                // (earlier) position where its slot issued empty, so the
                // minimum-ranked candidate is only known at the end.
                for pos in 0..vcl {
                    let now = vstart + pos;
                    for msg in noc.take_due(now) {
                        let tgt = msg.target.linear(grid_width);
                        let slot = delivered[tgt];
                        if slot >= epi_lens[tgt] {
                            replay_err = min_error(
                                replay_err,
                                Some(RankedError {
                                    pos,
                                    delivery_phase: true,
                                    ord: deliver_seq,
                                    err: MachineError::EpilogueOverflow { core: msg.target },
                                }),
                            );
                            continue;
                        }
                        if pos > body_lens[tgt] + slot as u64 {
                            replay_err = min_error(
                                replay_err,
                                Some(RankedError {
                                    pos,
                                    delivery_phase: true,
                                    ord: deliver_seq,
                                    err: MachineError::LateMessage {
                                        core: msg.target,
                                        slot,
                                    },
                                }),
                            );
                            continue;
                        }
                        delivered[tgt] += 1;
                        deliver_seq += 1;
                        slot_pos[epi_offsets[tgt] + slot] = pos;
                        counters.messages_delivered += 1;
                        scratches[tgt / per]
                            .lock()
                            .unwrap()
                            .deliveries
                            .push(Delivery {
                                local_idx: tgt % per,
                                slot,
                                rd: msg.rd,
                                value: msg.value,
                            });
                    }
                    while si < all_sends.len() && all_sends[si].pos == pos {
                        let s = all_sends[si];
                        si += 1;
                        if let Err(c) =
                            noc.send(s.from, s.target, s.rd, s.value, now, pos, validate)
                        {
                            replay_err = min_error(
                                replay_err,
                                Some(RankedError {
                                    pos,
                                    delivery_phase: false,
                                    ord: s.from.linear(grid_width),
                                    err: MachineError::LinkCollision {
                                        link: c.link,
                                        position: c.position,
                                    },
                                }),
                            );
                        }
                    }
                }
                if strict {
                    // Serial semantics: a slot that reaches issue before its
                    // message is a `MissingScheduledMessage` at the issue
                    // position — earlier than the late delivery or the wrap
                    // check that would otherwise report it.
                    for t in 0..n {
                        for s in 0..epi_lens[t] {
                            let issue_pos = body_lens[t] + s as u64;
                            if issue_pos >= vcl {
                                break;
                            }
                            if slot_pos[epi_offsets[t] + s] > issue_pos {
                                replay_err = min_error(
                                    replay_err,
                                    Some(RankedError {
                                        pos: issue_pos,
                                        delivery_phase: false,
                                        ord: t,
                                        err: MachineError::MissingScheduledMessage {
                                            core: core_id_of(t, grid_width),
                                            slot: s,
                                            position: issue_pos,
                                        },
                                    }),
                                );
                                break;
                            }
                        }
                    }
                }
            }

            if let Some(e) = min_error(pending_err, replay_err) {
                for mx in scratches.iter() {
                    mx.lock().unwrap().deliveries.clear();
                }
                fatal = Some(e.err);
                break 'vcycles;
            }

            // ---- epilogue phase (parallel) ----
            ctl.cmd.store(CMD_EPILOGUE, Ordering::Release);
            if ctl.barrier.wait().is_err() {
                break 'vcycles;
            }
            {
                let mut sc = scratches[0].lock().unwrap();
                epilogue_phase(
                    config,
                    exceptions,
                    strict,
                    counters.vcycles,
                    &mut chunk0,
                    vstart,
                    vcl,
                    tape,
                    uprog,
                    &mut sc,
                );
            }
            if ctl.barrier.wait().is_err() {
                break 'vcycles;
            }
            for mx in scratches.iter() {
                let mut sc = mx.lock().unwrap();
                counters.merge_from(&sc.counters);
                sc.counters = PerfCounters::default();
            }

            // ---- wrap (serial) ----
            *compute_time += vcl;
            counters.compute_cycles += vcl;
            if tape.is_none() {
                // Replay skips the check: the frozen schedule delivers
                // exactly the validated per-core counts by construction.
                let mut wrap_err = None;
                for idx in 0..n {
                    if delivered[idx] != epi_lens[idx] {
                        wrap_err = Some(MachineError::MissingMessages {
                            core: core_id_of(idx, grid_width),
                            got: delivered[idx],
                            expected: epi_lens[idx],
                        });
                        break;
                    }
                }
                if let Some(e) = wrap_err {
                    fatal = Some(e);
                    break 'vcycles;
                }
            }
            counters.vcycles += 1;

            outcome.vcycles_run += 1;
            for ev in events.drain(..) {
                match ev {
                    HostEvent::Display(s) => outcome.displays.push(s),
                    HostEvent::Finish => outcome.finished = true,
                }
            }
            if outcome.finished {
                *finish_requested = true;
                break;
            }
        }

        ctl.cmd.store(CMD_EXIT, Ordering::Release);
        // On a poisoned barrier the workers have already exited; the error
        // is deliberately ignored (the panic that caused it propagates
        // through the scope join below).
        let _ = ctl.barrier.wait();
        match fatal {
            Some(e) => {
                // Keep pre-failure displays reachable, as the serial
                // engine does (drained-but-undelivered output goes back
                // on the event queue, ahead of the failing Vcycle's own).
                if !outcome.displays.is_empty() {
                    let mut evs: Vec<HostEvent> =
                        outcome.displays.drain(..).map(HostEvent::Display).collect();
                    evs.append(events);
                    *events = evs;
                }
                Err(e)
            }
            None => Ok(outcome),
        }
    })
}
