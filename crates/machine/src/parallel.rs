//! The sharded bulk-synchronous execution engine.
//!
//! This is the machine model executing the way the paper's hardware does:
//! compute phases run with *zero* fine-grained synchronization, and all
//! cross-core effects rendezvous at statically-known points. The grid is
//! split into contiguous shards of cores, each owned by one worker thread,
//! and every Vcycle runs as
//!
//! 1. **body phase (parallel)** — each shard steps its cores through their
//!    program bodies. Cores never read other cores' state mid-body, so the
//!    only cross-core traffic — `Send` instructions — is *recorded* into
//!    shard-local lists instead of being routed. Shard-local
//!    [`PerfCounters`] and host events accumulate the same way.
//! 2. **barrier**, then **NoC commit (serial)** — the main thread merges
//!    shard scratch in shard order, sorts the recorded sends into the
//!    serial engine's injection order `(position, sender index)`, and
//!    replays them through the real [`Noc`]: link-collision validation on
//!    the first Vcycle, arrival-time computation, and in-order delivery
//!    into per-target epilogue slots. Delivery legality (overflow, late
//!    message) is decided here, against the same static program geometry
//!    the serial engine checks against.
//! 3. **epilogue phase (parallel)** — shards apply the deliveries routed
//!    to their cores and execute the message epilogues (plus the idle tail
//!    of the Vcycle, which only drains pipeline writebacks).
//! 4. **barrier**, then **wrap (serial)** — missing-message checks in core
//!    order, clock-domain accounting, event draining.
//!
//! Bit-identical to the serial engine by construction: both funnel every
//! instruction through [`exec::step_core`], and the commit phase performs
//! the serial engine's NoC interactions in the serial engine's order. The
//! only divergence is *after* a failing Vcycle (serial aborts mid-cycle,
//! the shards complete theirs), where the machine is dead anyway — the
//! returned error is still deterministic and equal to the serial one: all
//! error candidates are ranked by the serial engine's encounter order
//! `(position, delivery-before-issue, core index)` and the minimum wins.
//!
//! Messages whose arrival time falls beyond the current Vcycle stay in the
//! NoC's in-flight list, so serial and parallel modes can be switched
//! freely between `run_vcycles` calls.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use manticore_isa::{CoreId, ExceptionDescriptor, MachineConfig, Reg};
use manticore_util::SpinBarrier;

use crate::cache::Cache;
use crate::core::CoreState;
use crate::exec::{core_id_of, step_core, ExecEnv, SendRecord};
use crate::grid::{HostEvent, Machine, MachineError, PerfCounters, RunOutcome};

const CMD_BODY: u8 = 1;
const CMD_EPILOGUE: u8 = 2;
const CMD_EXIT: u8 = 3;

/// Shared phase-control block: the main thread publishes the command and
/// Vcycle timing, then everyone meets at the barrier. The barrier's
/// acquire/release pairs make the published values visible to workers.
struct Ctl {
    barrier: SpinBarrier,
    cmd: AtomicU8,
    vstart: AtomicU64,
    vcycle: AtomicU64,
}

/// A message routed to a shard during the NoC commit, to be applied at the
/// start of its epilogue phase.
struct Delivery {
    local_idx: usize,
    slot: usize,
    rd: Reg,
    value: u16,
}

/// An error candidate ranked by the serial engine's encounter order.
struct RankedError {
    pos: u64,
    /// Deliveries happen before instruction issue at the same position.
    delivery_phase: bool,
    /// Tie-break within a position: delivery sequence number or core index.
    ord: usize,
    err: MachineError,
}

impl RankedError {
    fn key(&self) -> (u64, u8, usize) {
        (self.pos, u8::from(!self.delivery_phase), self.ord)
    }
}

/// Takes the earlier (serial-encounter-order) of two error candidates.
fn min_error(a: Option<RankedError>, b: Option<RankedError>) -> Option<RankedError> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.key() <= y.key() { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Per-shard scratch: everything a shard produces in a phase, merged by
/// the main thread between barriers. Counter merging happens in shard
/// index order; since the touched counters are plain `u64` sums this is
/// deterministic — and shard-count-independent — by associativity.
#[derive(Default)]
struct ShardScratch {
    counters: PerfCounters,
    sends: Vec<SendRecord>,
    events: Vec<HostEvent>,
    error: Option<RankedError>,
    deliveries: Vec<Delivery>,
}

impl ShardScratch {
    fn record_error(&mut self, e: RankedError) {
        let cur = self.error.take();
        self.error = min_error(cur, Some(e));
    }
}

/// One shard's body phase: step every owned core through its program body.
/// `cache` is `Some` only for the shard holding the privileged core.
#[allow(clippy::too_many_arguments)]
fn body_phase(
    config: &MachineConfig,
    exceptions: &[ExceptionDescriptor],
    strict_hazards: bool,
    vcycle: u64,
    vcycle_len: u64,
    chunk: &mut [CoreState],
    base: usize,
    vstart: u64,
    mut cache: Option<&mut Cache>,
    sc: &mut ShardScratch,
) {
    let env = ExecEnv {
        config,
        exceptions,
        strict_hazards,
        vcycle,
    };
    for (i, core) in chunk.iter_mut().enumerate() {
        let idx = base + i;
        let core_id = core_id_of(idx, config.grid_width);
        let body_len = (core.body.len() as u64).min(vcycle_len);
        for pos in 0..body_len {
            let now = vstart + pos;
            core.commit_due(now);
            let cache_arg = if core_id == CoreId::PRIVILEGED {
                cache.as_deref_mut()
            } else {
                None
            };
            if let Err(err) = step_core(
                &env,
                core,
                core_id,
                pos,
                now,
                cache_arg,
                &mut sc.counters,
                &mut sc.events,
                &mut sc.sends,
            ) {
                // The failing core stops here (as the serial engine would
                // stop the world); its position/index rank decides below
                // whether this is the error the run reports.
                sc.record_error(RankedError {
                    pos,
                    delivery_phase: false,
                    ord: idx,
                    err,
                });
                break;
            }
        }
    }
}

/// One shard's epilogue phase: apply routed deliveries, execute the
/// message epilogues, drain the idle tail, and wrap the Vcycle.
///
/// Execution goes through the same [`step_core`] as everything else (its
/// epilogue branch cannot fail, send, or touch the cache, so the extra
/// arguments are inert) — keeping the bit-identical-by-construction
/// invariant structural rather than by parallel maintenance.
#[allow(clippy::too_many_arguments)]
fn epilogue_phase(
    config: &MachineConfig,
    exceptions: &[ExceptionDescriptor],
    strict_hazards: bool,
    vcycle: u64,
    chunk: &mut [CoreState],
    base: usize,
    vstart: u64,
    vcycle_len: u64,
    sc: &mut ShardScratch,
) {
    let env = ExecEnv {
        config,
        exceptions,
        strict_hazards,
        vcycle,
    };
    for d in sc.deliveries.drain(..) {
        let core = &mut chunk[d.local_idx];
        core.epilogue[d.slot] = Some((d.rd, d.value));
        core.received += 1;
    }
    for (i, core) in chunk.iter_mut().enumerate() {
        let core_id = core_id_of(base + i, config.grid_width);
        let body_len = (core.body.len() as u64).min(vcycle_len);
        for pos in body_len..vcycle_len {
            let now = vstart + pos;
            core.commit_due(now);
            step_core(
                &env,
                core,
                core_id,
                pos,
                now,
                None,
                &mut sc.counters,
                &mut sc.events,
                &mut sc.sends,
            )
            .expect("epilogue positions cannot fault");
        }
        core.wrap_vcycle();
    }
}

/// Runs up to `max_vcycles` on `shards` worker threads (the calling thread
/// drives shard 0 and the serial commit phases).
pub(crate) fn run_vcycles_parallel(
    m: &mut Machine,
    max_vcycles: u64,
    shards: usize,
) -> Result<RunOutcome, MachineError> {
    let n = m.cores.len();
    if n == 0 {
        return Ok(RunOutcome::default());
    }
    let per = n.div_ceil(shards.clamp(1, n));
    let shards = n.div_ceil(per);
    let vcl = m.vcycle_len;
    let grid_width = m.config.grid_width;
    let strict = m.strict_hazards;

    // Static program geometry, for main-side delivery legality checks.
    let body_lens: Vec<u64> = m.cores.iter().map(|c| c.body.len() as u64).collect();
    let epi_lens: Vec<usize> = m.cores.iter().map(|c| c.epilogue_len).collect();

    // Split borrows of the machine: shards own disjoint core ranges; the
    // main thread keeps the NoC, cache, global counters, and events.
    let config = &m.config;
    let exceptions = &m.exceptions[..];
    let noc = &mut m.noc;
    let cache = &mut m.cache;
    let counters = &mut m.counters;
    let events = &mut m.events;
    let compute_time = &mut m.compute_time;
    let finish_requested = &mut m.finish_requested;

    let mut chunks: Vec<&mut [CoreState]> = Vec::with_capacity(shards);
    let mut rest: &mut [CoreState] = &mut m.cores[..];
    for _ in 0..shards {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }

    let scratches: Vec<Mutex<ShardScratch>> = (0..shards)
        .map(|_| Mutex::new(ShardScratch::default()))
        .collect();
    let ctl = Ctl {
        barrier: SpinBarrier::new(shards),
        cmd: AtomicU8::new(0),
        vstart: AtomicU64::new(0),
        vcycle: AtomicU64::new(0),
    };

    std::thread::scope(|scope| {
        let mut chunk_iter = chunks.into_iter();
        let chunk0 = chunk_iter.next().expect("at least one shard");
        for (w, chunk) in chunk_iter.enumerate() {
            let sid = w + 1;
            let base = sid * per;
            let ctl = &ctl;
            let scratches = &scratches;
            let chunk = chunk;
            scope.spawn(move || loop {
                ctl.barrier.wait();
                match ctl.cmd.load(Ordering::Acquire) {
                    CMD_BODY => {
                        let vstart = ctl.vstart.load(Ordering::Acquire);
                        let vcycle = ctl.vcycle.load(Ordering::Acquire);
                        let mut sc = scratches[sid].lock().unwrap();
                        body_phase(
                            config, exceptions, strict, vcycle, vcl, chunk, base, vstart, None,
                            &mut sc,
                        );
                    }
                    CMD_EPILOGUE => {
                        let vstart = ctl.vstart.load(Ordering::Acquire);
                        let vcycle = ctl.vcycle.load(Ordering::Acquire);
                        let mut sc = scratches[sid].lock().unwrap();
                        epilogue_phase(
                            config, exceptions, strict, vcycle, chunk, base, vstart, vcl, &mut sc,
                        );
                    }
                    _ => break,
                }
                ctl.barrier.wait();
            });
        }

        let mut outcome = RunOutcome::default();
        let mut fatal: Option<MachineError> = None;
        let mut all_sends: Vec<SendRecord> = Vec::new();
        let mut delivered = vec![0usize; n];
        'vcycles: for _ in 0..max_vcycles {
            if *finish_requested {
                break;
            }
            let vstart = *compute_time;
            let validate = counters.vcycles == 0;

            // ---- body phase (parallel) ----
            ctl.vstart.store(vstart, Ordering::Release);
            ctl.vcycle.store(counters.vcycles, Ordering::Release);
            ctl.cmd.store(CMD_BODY, Ordering::Release);
            ctl.barrier.wait();
            {
                let mut sc = scratches[0].lock().unwrap();
                body_phase(
                    config,
                    exceptions,
                    strict,
                    counters.vcycles,
                    vcl,
                    chunk0,
                    0,
                    vstart,
                    Some(&mut *cache),
                    &mut sc,
                );
            }
            ctl.barrier.wait();

            // ---- NoC commit (serial): merge scratch, replay the NoC ----
            let mut pending_err: Option<RankedError> = None;
            all_sends.clear();
            for mx in scratches.iter() {
                let mut sc = mx.lock().unwrap();
                counters.merge_from(&sc.counters);
                sc.counters = PerfCounters::default();
                events.append(&mut sc.events);
                pending_err = min_error(pending_err, sc.error.take());
                all_sends.append(&mut sc.sends);
            }
            all_sends.sort_by_key(|s| (s.pos, s.from.linear(grid_width)));

            delivered.fill(0);
            let mut deliver_seq = 0usize;
            let mut replay_err: Option<RankedError> = None;
            let mut si = 0usize;
            'replay: for pos in 0..vcl {
                let now = vstart + pos;
                for msg in noc.take_due(now) {
                    let tgt = msg.target.linear(grid_width);
                    let slot = delivered[tgt];
                    if slot >= epi_lens[tgt] {
                        replay_err = Some(RankedError {
                            pos,
                            delivery_phase: true,
                            ord: deliver_seq,
                            err: MachineError::EpilogueOverflow { core: msg.target },
                        });
                        break 'replay;
                    }
                    if pos > body_lens[tgt] + slot as u64 {
                        replay_err = Some(RankedError {
                            pos,
                            delivery_phase: true,
                            ord: deliver_seq,
                            err: MachineError::LateMessage {
                                core: msg.target,
                                slot,
                            },
                        });
                        break 'replay;
                    }
                    delivered[tgt] += 1;
                    deliver_seq += 1;
                    counters.messages_delivered += 1;
                    scratches[tgt / per]
                        .lock()
                        .unwrap()
                        .deliveries
                        .push(Delivery {
                            local_idx: tgt % per,
                            slot,
                            rd: msg.rd,
                            value: msg.value,
                        });
                }
                while si < all_sends.len() && all_sends[si].pos == pos {
                    let s = all_sends[si];
                    si += 1;
                    if let Err(c) = noc.send(s.from, s.target, s.rd, s.value, now, pos, validate) {
                        replay_err = Some(RankedError {
                            pos,
                            delivery_phase: false,
                            ord: s.from.linear(grid_width),
                            err: MachineError::LinkCollision {
                                link: c.link,
                                position: c.position,
                            },
                        });
                        break 'replay;
                    }
                }
            }

            if let Some(e) = min_error(pending_err, replay_err) {
                for mx in scratches.iter() {
                    mx.lock().unwrap().deliveries.clear();
                }
                fatal = Some(e.err);
                break 'vcycles;
            }

            // ---- epilogue phase (parallel) ----
            ctl.cmd.store(CMD_EPILOGUE, Ordering::Release);
            ctl.barrier.wait();
            {
                let mut sc = scratches[0].lock().unwrap();
                epilogue_phase(
                    config,
                    exceptions,
                    strict,
                    counters.vcycles,
                    chunk0,
                    0,
                    vstart,
                    vcl,
                    &mut sc,
                );
            }
            ctl.barrier.wait();
            for mx in scratches.iter() {
                let mut sc = mx.lock().unwrap();
                counters.merge_from(&sc.counters);
                sc.counters = PerfCounters::default();
            }

            // ---- wrap (serial) ----
            *compute_time += vcl;
            counters.compute_cycles += vcl;
            let mut wrap_err = None;
            for idx in 0..n {
                if delivered[idx] != epi_lens[idx] {
                    wrap_err = Some(MachineError::MissingMessages {
                        core: core_id_of(idx, grid_width),
                        got: delivered[idx],
                        expected: epi_lens[idx],
                    });
                    break;
                }
            }
            if let Some(e) = wrap_err {
                fatal = Some(e);
                break 'vcycles;
            }
            counters.vcycles += 1;

            outcome.vcycles_run += 1;
            for ev in events.drain(..) {
                match ev {
                    HostEvent::Display(s) => outcome.displays.push(s),
                    HostEvent::Finish => outcome.finished = true,
                }
            }
            if outcome.finished {
                *finish_requested = true;
                break;
            }
        }

        ctl.cmd.store(CMD_EXIT, Ordering::Release);
        ctl.barrier.wait();
        match fatal {
            Some(e) => {
                // Keep pre-failure displays reachable, as the serial
                // engine does (drained-but-undelivered output goes back
                // on the event queue, ahead of the failing Vcycle's own).
                if !outcome.displays.is_empty() {
                    let mut evs: Vec<HostEvent> =
                        outcome.displays.drain(..).map(HostEvent::Display).collect();
                    evs.append(events);
                    *events = evs;
                }
                Err(e)
            }
            None => Ok(outcome),
        }
    })
}
