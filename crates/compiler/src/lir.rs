//! The *lower assembly* IR (§6 of the paper): SSA instructions whose
//! operands match Manticore's 16-bit datapath.
//!
//! A [`LirProgram`] is a set of [`Process`]es operating on shared
//! *state words* — the 16-bit words of the RTL registers. Each Vcycle every
//! process reads current state words (its live-ins), computes, and commits
//! next values; cross-process readers receive the committed value through
//! `Send`. Initially the program is one monolithic process; partitioning
//! splits and re-merges it (§6.1).

use std::collections::BTreeMap;

use manticore_isa::AluOp;
use manticore_netlist::{MemoryId, RegId};

/// A 16-bit virtual register, local to one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Index into per-process value tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One 16-bit word of RTL register state, shared across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Index into [`LirProgram::states`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata for one state word.
#[derive(Debug, Clone)]
pub struct StateWord {
    /// The RTL register this word belongs to.
    pub rtl_reg: RegId,
    /// Word index within the register (LSW = 0).
    pub word: usize,
    /// Power-on value.
    pub init: u16,
}

/// An RTL memory lowered onto a machine memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LMemId(pub u32);

impl LMemId {
    /// Index into [`LirProgram::mems`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Placement of a lowered memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPlacement {
    /// In the owning core's scratchpad (base assigned at emission).
    Local,
    /// In DRAM behind the privileged core's cache, at this word base.
    Global {
        /// Base word address in DRAM.
        base: u64,
    },
}

/// Metadata for one lowered memory.
#[derive(Debug, Clone)]
pub struct MemInfo {
    /// The RTL memory.
    pub rtl_mem: MemoryId,
    /// Machine words per RTL entry.
    pub words_per_entry: usize,
    /// RTL entry count.
    pub depth: usize,
    /// Placement (local scratchpad vs. global DRAM).
    pub placement: MemPlacement,
    /// Initial contents as machine words (`depth * words_per_entry` long,
    /// or empty for all-zero).
    pub init_words: Vec<u16>,
}

impl MemInfo {
    /// Total machine words occupied.
    pub fn total_words(&self) -> usize {
        self.depth * self.words_per_entry
    }
}

/// What the host does when an `Expect` with this id fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LirExceptionKind {
    /// `$display`: fires when the condition is non-zero; the host prints.
    Display {
        /// Format string.
        format: String,
        /// Per-argument `(word vregs LSW-first, bit width)` in the
        /// privileged process.
        args: Vec<(Vec<VReg>, usize)>,
    },
    /// Assertion: fires when the condition is zero (compared against 1).
    AssertFail {
        /// Message reported on failure.
        message: String,
    },
    /// `$finish`: fires when the condition is non-zero.
    Finish,
}

/// One LIR operation. Operand vregs live in [`LirInstr::args`] with the
/// layout documented per variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LirOp {
    /// `rd = imm`. Hoisted to boot-time register initialization before
    /// scheduling (constants are Vcycle-invariant).
    Const(u16),
    /// Two-operand ALU op; `args = [rs1, rs2]`.
    Alu(AluOp),
    /// `rd = rs1 + rs2 + carry(rs3)`; `args = [rs1, rs2, rs3]`.
    AddCarry,
    /// `rd = rs1 - rs2 - !carry(rs3)`; `args = [rs1, rs2, rs3]`.
    SubBorrow,
    /// `rd = args[0] != 0 ? args[1] : args[2]`.
    Mux,
    /// `rd = (args[0] >> offset) & mask(width)`.
    Slice {
        /// LSB offset.
        offset: u8,
        /// Field width.
        width: u8,
    },
    /// 4-input LUT; `args` are the inputs (≤ 4; missing = zero).
    Custom {
        /// Per-lane 16-entry truth tables over the 4 inputs (256 bits, as
        /// in §5.1); per-lane tables absorb constant operands.
        table: [u16; 16],
    },
    /// `rd = mem[word(args[0]) + word_offset]`; `args = [word_addr]`.
    LocalLoad {
        /// Which memory.
        mem: LMemId,
        /// Static word offset added to the dynamic address.
        word_offset: u16,
    },
    /// `if args[2] != 0 { mem[args[1] + word_offset] = args[0] }`;
    /// `args = [data, word_addr, enable]`. Expands to `Predicate` + store
    /// at emission (occupies two issue slots).
    LocalStore {
        /// Which memory.
        mem: LMemId,
        /// Static word offset.
        word_offset: u16,
    },
    /// `rd = dram[addr48]`; `args = [a0, a1, a2]` (LSW first). Privileged.
    GlobalLoad {
        /// Which memory (for load/store ordering).
        mem: LMemId,
    },
    /// `if args[4] != 0 { dram[addr48] = data }`;
    /// `args = [data, a0, a1, a2, enable]`. Privileged; two issue slots.
    GlobalStore {
        /// Which memory.
        mem: LMemId,
    },
    /// Raise exception `eid` when `args[0] != args[1]`. Privileged.
    /// Display-argument vregs are appended after the two compared values so
    /// their lifetimes extend to the exception point.
    Expect {
        /// Exception id.
        eid: u16,
    },
    /// Commit `args[0]` as the next value of `state` (becomes a move into
    /// the state's home register, or is coalesced away).
    CommitLocal {
        /// The state word.
        state: StateId,
    },
    /// Send `args[0]` to the process reading `state` on another core
    /// (target core + register resolved at emission).
    Send {
        /// The state word being communicated.
        state: StateId,
        /// Destination process id (filled during partitioning).
        to_process: usize,
    },
}

impl LirOp {
    /// True for pure bitwise-logic ops (custom-function candidates).
    pub fn is_bitwise_logic(&self) -> bool {
        matches!(
            self,
            LirOp::Alu(AluOp::And) | LirOp::Alu(AluOp::Or) | LirOp::Alu(AluOp::Xor)
        )
    }

    /// True for ops only the privileged core can execute.
    pub fn is_privileged(&self) -> bool {
        matches!(
            self,
            LirOp::GlobalLoad { .. } | LirOp::GlobalStore { .. } | LirOp::Expect { .. }
        )
    }

    /// Issue slots the op occupies in the schedule (predicated stores
    /// expand to `Predicate` + store).
    pub fn issue_slots(&self) -> usize {
        match self {
            LirOp::LocalStore { .. } | LirOp::GlobalStore { .. } => 2,
            _ => 1,
        }
    }
}

/// One SSA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LirInstr {
    /// Defined value (None for stores, expects, commits, sends).
    pub dest: Option<VReg>,
    /// The operation.
    pub op: LirOp,
    /// Operands.
    pub args: Vec<VReg>,
}

/// A process: a straight-line SSA program over state live-ins.
#[derive(Debug, Clone, Default)]
pub struct Process {
    /// Instructions in dependency order.
    pub instrs: Vec<LirInstr>,
    /// Live-in state words: `state -> vreg holding the current value`.
    pub state_reads: BTreeMap<StateId, VReg>,
    /// Number of vregs used (live-ins + defs).
    pub num_vregs: u32,
    /// True if this process holds the privileged instructions.
    pub is_privileged: bool,
}

impl Process {
    /// Allocates a fresh vreg.
    pub fn fresh(&mut self) -> VReg {
        let v = VReg(self.num_vregs);
        self.num_vregs += 1;
        v
    }

    /// Instruction count excluding structural `Const`s (which become boot
    /// initialization) — the execution-time estimate used by partitioning.
    pub fn cost(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match i.op {
                LirOp::Const(_) => 0,
                ref op => op.issue_slots(),
            })
            .sum()
    }
}

/// The whole lower-assembly program.
#[derive(Debug, Clone, Default)]
pub struct LirProgram {
    /// The processes (one before partitioning; many after).
    pub processes: Vec<Process>,
    /// All state words.
    pub states: Vec<StateWord>,
    /// All lowered memories.
    pub mems: Vec<MemInfo>,
    /// Exception table (ids are dense indices).
    pub exceptions: Vec<LirExceptionKind>,
}

impl LirProgram {
    /// The process that commits each state word (`states.len()` entries).
    ///
    /// # Panics
    ///
    /// Panics if some state word has no committing process (lowering bug).
    pub fn state_owners(&self) -> Vec<usize> {
        let mut owners = vec![usize::MAX; self.states.len()];
        for (pi, p) in self.processes.iter().enumerate() {
            for instr in &p.instrs {
                if let LirOp::CommitLocal { state } = instr.op {
                    owners[state.index()] = pi;
                }
            }
        }
        assert!(
            owners.iter().all(|&o| o != usize::MAX),
            "every state word must have a committing process"
        );
        owners
    }

    /// Total instruction count over all processes (the partitioning cost
    /// metric, excluding `Const`s).
    pub fn total_cost(&self) -> usize {
        self.processes.iter().map(|p| p.cost()).sum()
    }
}
