//! Compiler errors.

use std::fmt;

/// Errors reported by the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The design has primary inputs; Manticore runs closed, self-driving
    /// test harnesses (drive stimulus from registers/ROMs instead).
    UnsupportedInput {
        /// Name of the offending input.
        name: String,
    },
    /// A core's program (body + epilogue) exceeds the instruction memory.
    ImemOverflow {
        /// Instructions required.
        needed: usize,
        /// Instruction memory capacity.
        capacity: usize,
    },
    /// A core ran out of machine registers.
    RegfileOverflow {
        /// Registers required.
        needed: usize,
        /// Register file size.
        capacity: usize,
    },
    /// The local memories assigned to one core exceed its scratchpad.
    ScratchOverflow {
        /// Words required.
        needed: usize,
        /// Scratchpad capacity in words.
        capacity: usize,
    },
    /// More processes than cores after merging (partitioner bug).
    TooManyProcesses {
        /// Processes produced.
        processes: usize,
        /// Cores available.
        cores: usize,
    },
    /// The compile's wall-clock deadline passed before the pipeline
    /// finished. The pipeline polls between passes and inside the
    /// partition merge loop (the one pass that can run long), so a huge
    /// or hostile design stops at a poll point instead of pinning the
    /// compiling thread indefinitely.
    DeadlineExceeded {
        /// The pass that was about to run (or running) when the deadline
        /// was observed.
        pass: &'static str,
    },
    /// The compile's [`crate::CompileControl`] cancel token was tripped.
    Cancelled {
        /// The pass that was about to run (or running) when cancellation
        /// was observed.
        pass: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedInput { name } => write!(
                f,
                "design has primary input `{name}`; Manticore requires closed test harnesses"
            ),
            CompileError::ImemOverflow { needed, capacity } => write!(
                f,
                "program needs {needed} instruction slots but the instruction memory holds {capacity}"
            ),
            CompileError::RegfileOverflow { needed, capacity } => write!(
                f,
                "program needs {needed} machine registers but the register file holds {capacity}"
            ),
            CompileError::ScratchOverflow { needed, capacity } => write!(
                f,
                "local memories need {needed} words but the scratchpad holds {capacity}"
            ),
            CompileError::TooManyProcesses { processes, cores } => write!(
                f,
                "partitioning produced {processes} processes for {cores} cores"
            ),
            CompileError::DeadlineExceeded { pass } => {
                write!(f, "compile deadline exceeded during `{pass}`")
            }
            CompileError::Cancelled { pass } => {
                write!(f, "compile cancelled during `{pass}`")
            }
        }
    }
}

impl std::error::Error for CompileError {}
