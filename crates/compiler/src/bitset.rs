//! A small fixed-capacity bitset used to represent instruction cones during
//! partitioning (unions of cones deduplicate shared instructions, which is
//! what makes merge costs non-linear — §6.1).

/// Fixed-capacity bitset over `usize` indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// True if `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Size of the union of two sets without materializing it.
    pub fn union_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True if the sets intersect.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// The backing words (64 indices per word, LSB first) — lets callers
    /// compute masked popcounts (e.g. weighted union cost) directly.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::BitSet;

    #[test]
    fn basic_ops() {
        let mut a = BitSet::new(200);
        a.insert(0);
        a.insert(63);
        a.insert(64);
        a.insert(199);
        assert!(a.contains(63) && a.contains(64) && !a.contains(65));
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 63, 64, 199]);
        let mut b = BitSet::new(200);
        b.insert(64);
        b.insert(100);
        assert!(a.intersects(&b));
        assert_eq!(a.union_len(&b), 5);
        a.union_with(&b);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }
}
