//! List scheduling with pipeline-hazard and NoC-routing models (§6.3).
//!
//! The scheduler performs "an abstract cycle-accurate simulation of one
//! Vcycle using a model of a core's pipeline and the NoC": every core
//! issues at most one instruction per cycle; an instruction is ready when
//! its operands were produced at least `hazard_latency` cycles earlier; a
//! `Send` additionally requires its entire dimension-ordered route (and the
//! delivery port into the target's instruction memory) to be collision-free
//! — the same reservation discipline the machine model validates.
//!
//! Constants are hoisted out before scheduling: they are Vcycle-invariant
//! and become boot-time register initialization.
//!
//! # Parallel structure and determinism
//!
//! [`schedule_threaded`] splits the pass into per-process dependency-graph
//! construction (independent across processes — fans out over the worker
//! pool) and the global cycle-stepped issue loop, which stays serial in
//! both pipelines: it *is* the NoC arbitration semantics (cores compete
//! for link reservations cycle by cycle, in core order), so its decision
//! order is the specification, not an implementation detail.
//!
//! At `threads > 1` graph construction switches from `build_graph_ref`
//! to `build_graph_fast`, which replaces the reference's O(commits · n)
//! scan for commit anti-edges with per-vreg use lists and its hash-map def
//! table with a vector. The two builders can order a node's successor
//! *list* differently, but they produce the same edge **multiset** — and
//! every consumer is order-insensitive: `indeg` counts edges, `priority`
//! and earliest-start times are maxima over predecessors/successors, and
//! the ready heap pops the unique maximum `(priority, index)` tuple
//! regardless of insertion order. Hence the issue loop makes identical
//! decisions and the schedule is bit-identical at any thread count.

use std::collections::HashMap;

use manticore_isa::{CoreId, MachineConfig};
use manticore_util::{parallel_map, FnvHashMap};

use crate::error::CompileError;
use crate::lir::{LirOp, LirProgram, Process, StateId, VReg};

/// A scheduled program: placement, per-core slot assignment, Vcycle framing.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Core of each process.
    pub core_of_process: Vec<CoreId>,
    /// Per process: instruction index occupying each body slot (`None` is a
    /// NOP). Two-slot stores occupy their issue slot; the following slot is
    /// left `None` and filled with the store half at emission.
    pub slots: Vec<Vec<Option<usize>>>,
    /// Per process: body length including NOP padding for late arrivals.
    pub body_len: Vec<usize>,
    /// Per process: messages received per Vcycle.
    pub epilogue_len: Vec<usize>,
    /// Machine cycles per Vcycle (the VCPL).
    pub vcycle_len: u64,
    /// Per process: constants hoisted to boot time.
    pub const_vregs: Vec<HashMap<VReg, u16>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Link {
    XPlus(u8, u8),
    YPlus(u8, u8),
    Delivery(u8, u8),
}

/// Per-process dependency graph over scheduled (non-`Const`) instructions.
struct ProcGraph {
    /// successor lists: (to, latency)
    succs: Vec<Vec<(usize, u64)>>,
    indeg: Vec<u32>,
    priority: Vec<u64>,
    /// instructions that take part in scheduling (non-Const)
    active: Vec<bool>,
    consts: HashMap<VReg, u16>,
}

/// Schedules a partitioned program with the reference serial pipeline.
///
/// # Errors
///
/// [`CompileError::TooManyProcesses`] if processes exceed cores and
/// [`CompileError::ImemOverflow`] if a body outgrows instruction memory.
pub fn schedule(prog: &LirProgram, config: &MachineConfig) -> Result<Schedule, CompileError> {
    schedule_threaded(prog, config, 1)
}

/// Schedules a partitioned program, building the per-process dependency
/// graphs on `threads` workers. Output is bit-identical at any thread
/// count (see the module docs for why).
///
/// # Errors
///
/// [`CompileError::TooManyProcesses`] if processes exceed cores and
/// [`CompileError::ImemOverflow`] if a body outgrows instruction memory.
pub fn schedule_threaded(
    prog: &LirProgram,
    config: &MachineConfig,
    threads: usize,
) -> Result<Schedule, CompileError> {
    let ncores = config.num_cores();
    let nproc = prog.processes.len();
    if nproc > ncores {
        return Err(CompileError::TooManyProcesses {
            processes: nproc,
            cores: ncores,
        });
    }

    // ------------------------------------------------------------------
    // Placement: privileged process on the privileged core; the rest by
    // descending cost in row-major order.
    // ------------------------------------------------------------------
    let core_at = |linear: usize| {
        CoreId::new(
            (linear % config.grid_width) as u8,
            (linear / config.grid_width) as u8,
        )
    };
    let mut core_of_process = vec![CoreId::new(0, 0); nproc];
    let priv_idx = prog.processes.iter().position(|p| p.is_privileged);
    let mut order: Vec<usize> = (0..nproc).filter(|&i| Some(i) != priv_idx).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(prog.processes[i].cost()));
    let mut next_linear = 0;
    if let Some(pi) = priv_idx {
        core_of_process[pi] = CoreId::PRIVILEGED;
        next_linear = 1;
    }
    for i in order {
        core_of_process[i] = core_at(next_linear);
        next_linear += 1;
    }

    // ------------------------------------------------------------------
    // Per-process dependency graphs (independent — parallel).
    // ------------------------------------------------------------------
    let lat = config.hazard_latency as u64;
    let graphs: Vec<ProcGraph> = if threads > 1 {
        parallel_map(nproc, threads, |pi| {
            build_graph_fast(&prog.processes[pi], lat)
        })
    } else {
        prog.processes
            .iter()
            .map(|p| build_graph_ref(p, lat))
            .collect()
    };

    // ------------------------------------------------------------------
    // Global cycle-stepped issue.
    //
    // An instruction's earliest-start time is final once its last
    // predecessor is scheduled, so ready instructions sit either in a
    // priority heap (startable now) or in time buckets keyed by their
    // earliest start.
    // ------------------------------------------------------------------
    use std::collections::{BTreeMap, BinaryHeap};
    let mut slots: Vec<Vec<Option<usize>>> = vec![Vec::new(); nproc];
    let mut remaining: Vec<usize> = graphs
        .iter()
        .map(|g| g.active.iter().filter(|&&a| a).count())
        .collect();
    let mut est: Vec<Vec<u64>> = graphs.iter().map(|g| vec![0u64; g.indeg.len()]).collect();
    let mut indeg: Vec<Vec<u32>> = graphs.iter().map(|g| g.indeg.clone()).collect();
    let mut busy_until: Vec<u64> = vec![0; nproc];
    // Heap entries: (priority, instr) — max-heap by priority.
    let mut ready: Vec<BinaryHeap<(u64, usize)>> = vec![BinaryHeap::new(); nproc];
    let mut pending: Vec<BTreeMap<u64, Vec<usize>>> = vec![BTreeMap::new(); nproc];
    for pi in 0..nproc {
        for i in 0..graphs[pi].indeg.len() {
            if graphs[pi].active[i] && graphs[pi].indeg[i] == 0 {
                ready[pi].push((graphs[pi].priority[i], i));
            }
        }
    }
    // Link reservations: a set keyed by (link, cycle). The hasher only
    // affects bucket order, never membership, so it is determinism-safe.
    let mut links: FnvHashMap<(Link, u64), ()> = FnvHashMap::default();
    let mut arrivals: Vec<Vec<u64>> = vec![Vec::new(); nproc];
    let inj = config.injection_latency as u64;
    let hop = config.hop_latency as u64;

    let mut total_remaining: usize = remaining.iter().sum();
    let mut t: u64 = 0;
    while total_remaining > 0 {
        for pi in 0..nproc {
            if remaining[pi] == 0 || busy_until[pi] > t {
                continue;
            }
            // Promote pending instructions whose earliest start has come.
            while let Some((&et, _)) = pending[pi].iter().next() {
                if et > t {
                    break;
                }
                let (_, is) = pending[pi].pop_first().unwrap();
                for i in is {
                    ready[pi].push((graphs[pi].priority[i], i));
                }
            }
            // Pick the best ready instruction; Sends may be blocked by link
            // contention, in which case we try the next candidate.
            let mut stash: Vec<(u64, usize)> = Vec::new();
            let mut chosen: Option<usize> = None;
            while let Some((prio, c)) = ready[pi].pop() {
                if let LirOp::Send { to_process, .. } = prog.processes[pi].instrs[c].op {
                    let from = core_of_process[pi];
                    let to = core_of_process[to_process];
                    let path = route(from, to, config);
                    let free = path
                        .iter()
                        .enumerate()
                        .all(|(k, l)| !links.contains_key(&(*l, t + inj + k as u64 * hop)));
                    if !free {
                        stash.push((prio, c));
                        continue;
                    }
                    for (k, l) in path.iter().enumerate() {
                        links.insert((*l, t + inj + k as u64 * hop), ());
                    }
                    let arrive = t + inj + (path.len() as u64 - 1) * hop;
                    arrivals[to_process].push(arrive);
                }
                chosen = Some(c);
                break;
            }
            for e in stash {
                ready[pi].push(e);
            }
            if let Some(c) = chosen {
                let islots = prog.processes[pi].instrs[c].op.issue_slots() as u64;
                while (slots[pi].len() as u64) < t {
                    slots[pi].push(None);
                }
                slots[pi].push(Some(c));
                for _ in 1..islots {
                    slots[pi].push(None); // second half of a store
                }
                busy_until[pi] = t + islots;
                remaining[pi] -= 1;
                total_remaining -= 1;
                for &(s, l) in &graphs[pi].succs[c] {
                    indeg[pi][s] -= 1;
                    est[pi][s] = est[pi][s].max(t + l);
                    if indeg[pi][s] == 0 {
                        let e = est[pi][s];
                        if e <= t {
                            ready[pi].push((graphs[pi].priority[s], s));
                        } else {
                            pending[pi].entry(e).or_default().push(s);
                        }
                    }
                }
            }
        }
        t += 1;
        assert!(t < 50_000_000, "scheduler failed to converge");
    }

    // ------------------------------------------------------------------
    // Vcycle framing: pad bodies so every message arrives before its
    // epilogue slot executes, then fix the global length.
    // ------------------------------------------------------------------
    let mut body_len: Vec<usize> = slots.iter().map(|s| s.len()).collect();
    let mut epilogue_len = vec![0usize; nproc];
    for pi in 0..nproc {
        arrivals[pi].sort_unstable();
        epilogue_len[pi] = arrivals[pi].len();
        for (j, &a) in arrivals[pi].iter().enumerate() {
            let need = a.saturating_sub(j as u64) as usize;
            body_len[pi] = body_len[pi].max(need);
        }
    }
    let mut vcycle_len = 0u64;
    for pi in 0..nproc {
        let footprint = body_len[pi] + epilogue_len[pi];
        if footprint > config.imem_capacity {
            return Err(CompileError::ImemOverflow {
                needed: footprint,
                capacity: config.imem_capacity,
            });
        }
        vcycle_len = vcycle_len.max(footprint as u64);
    }
    vcycle_len += lat + 1; // sleep: drain in-flight writes before wrapping

    Ok(Schedule {
        core_of_process,
        slots,
        body_len,
        epilogue_len,
        vcycle_len,
        const_vregs: graphs.into_iter().map(|g| g.consts).collect(),
    })
}

/// Reference graph construction — the serial pipeline's implementation,
/// kept verbatim and used as the oracle for `build_graph_fast`.
fn build_graph_ref(p: &Process, lat: u64) -> ProcGraph {
    let n = p.instrs.len();
    let mut def_of: HashMap<VReg, usize> = HashMap::new();
    let mut consts: HashMap<VReg, u16> = HashMap::new();
    let mut active = vec![true; n];
    for (i, instr) in p.instrs.iter().enumerate() {
        if let LirOp::Const(v) = instr.op {
            consts.insert(instr.dest.unwrap(), v);
            active[i] = false;
            continue;
        }
        if let Some(d) = instr.dest {
            def_of.insert(d, i);
        }
    }
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u64)>>,
                    indeg: &mut Vec<u32>,
                    from: usize,
                    to: usize,
                    l: u64| {
        if from != to {
            succs[from].push((to, l));
            indeg[to] += 1;
        }
    };
    // Data edges.
    for (i, instr) in p.instrs.iter().enumerate() {
        if !active[i] {
            continue;
        }
        for a in &instr.args {
            if let Some(&d) = def_of.get(a) {
                add_edge(&mut succs, &mut indeg, d, i, lat);
            }
        }
    }
    // Anti edges.
    let livein_of: HashMap<StateId, VReg> = p.state_reads.iter().map(|(&s, &v)| (s, v)).collect();
    let mut mem_loads: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut mem_stores: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut expects: Vec<usize> = Vec::new();
    for (i, instr) in p.instrs.iter().enumerate() {
        if !active[i] {
            continue;
        }
        match &instr.op {
            LirOp::LocalLoad { mem, .. } | LirOp::GlobalLoad { mem } => {
                mem_loads.entry(mem.0).or_default().push(i)
            }
            LirOp::LocalStore { mem, .. } | LirOp::GlobalStore { mem } => {
                mem_stores.entry(mem.0).or_default().push(i)
            }
            LirOp::Expect { .. } => expects.push(i),
            LirOp::CommitLocal { state } => {
                // The commit overwrites the state's home register: it
                // must issue after every reader of the current value.
                if let Some(lv) = livein_of.get(state) {
                    for (j, other) in p.instrs.iter().enumerate() {
                        if j != i && active[j] && other.args.contains(lv) {
                            add_edge(&mut succs, &mut indeg, j, i, 1);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // All loads of a memory before all its stores (reads see pre-cycle
    // contents); stores keep program order.
    for (m, stores) in &mem_stores {
        if let Some(loads) = mem_loads.get(m) {
            for &l in loads {
                for &s in stores {
                    add_edge(&mut succs, &mut indeg, l, s, 1);
                }
            }
        }
        for w in stores.windows(2) {
            add_edge(&mut succs, &mut indeg, w[0], w[1], 2);
        }
    }
    // Exceptions fire in program order (deterministic $display order).
    for w in expects.windows(2) {
        add_edge(&mut succs, &mut indeg, w[0], w[1], 1);
    }

    finish_graph(p, succs, indeg, active, consts)
}

/// Fast graph construction: vector-indexed def table and per-vreg use
/// lists. Produces the same edge multiset as `build_graph_ref` — data
/// edges carry one entry per argument *occurrence* (use lists are built
/// per occurrence), and commit anti-edges carry one entry per reading
/// *instruction* (consecutive duplicates in a use list are collapsed;
/// occurrences of one instruction are adjacent because the list is built
/// in instruction-then-argument order). Successor-list order may differ;
/// every consumer is order-insensitive (see module docs).
fn build_graph_fast(p: &Process, lat: u64) -> ProcGraph {
    let n = p.instrs.len();
    let nv = p.num_vregs as usize;
    let mut def_of: Vec<Option<usize>> = vec![None; nv];
    let mut consts: HashMap<VReg, u16> = HashMap::new();
    let mut active = vec![true; n];
    for (i, instr) in p.instrs.iter().enumerate() {
        if let LirOp::Const(v) = instr.op {
            consts.insert(instr.dest.unwrap(), v);
            active[i] = false;
            continue;
        }
        if let Some(d) = instr.dest {
            def_of[d.index()] = Some(i);
        }
    }
    // Per-vreg use lists over active instructions, one entry per argument
    // occurrence, in instruction-then-argument order.
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); nv];
    for (i, instr) in p.instrs.iter().enumerate() {
        if !active[i] {
            continue;
        }
        for a in &instr.args {
            uses[a.index()].push(i);
        }
    }
    let mut succs: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u64)>>,
                    indeg: &mut Vec<u32>,
                    from: usize,
                    to: usize,
                    l: u64| {
        if from != to {
            succs[from].push((to, l));
            indeg[to] += 1;
        }
    };
    // Data edges: one per use-list entry (= per argument occurrence).
    for (v, vuses) in uses.iter().enumerate() {
        if let Some(d) = def_of[v] {
            for &i in vuses {
                add_edge(&mut succs, &mut indeg, d, i, lat);
            }
        }
    }
    // Anti edges.
    use std::collections::BTreeMap;
    let mut mem_loads: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut mem_stores: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    let mut expects: Vec<usize> = Vec::new();
    for (i, instr) in p.instrs.iter().enumerate() {
        if !active[i] {
            continue;
        }
        match &instr.op {
            LirOp::LocalLoad { mem, .. } | LirOp::GlobalLoad { mem } => {
                mem_loads.entry(mem.0).or_default().push(i)
            }
            LirOp::LocalStore { mem, .. } | LirOp::GlobalStore { mem } => {
                mem_stores.entry(mem.0).or_default().push(i)
            }
            LirOp::Expect { .. } => expects.push(i),
            LirOp::CommitLocal { state } => {
                // One anti-edge per instruction reading the state's
                // current value, regardless of how many of its arguments
                // read it — collapse consecutive duplicates.
                if let Some(lv) = p.state_reads.get(state) {
                    let mut last = usize::MAX;
                    for &j in &uses[lv.index()] {
                        if j != i && j != last {
                            add_edge(&mut succs, &mut indeg, j, i, 1);
                            last = j;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    for (m, stores) in &mem_stores {
        if let Some(loads) = mem_loads.get(m) {
            for &l in loads {
                for &s in stores {
                    add_edge(&mut succs, &mut indeg, l, s, 1);
                }
            }
        }
        for w in stores.windows(2) {
            add_edge(&mut succs, &mut indeg, w[0], w[1], 2);
        }
    }
    for w in expects.windows(2) {
        add_edge(&mut succs, &mut indeg, w[0], w[1], 1);
    }

    finish_graph(p, succs, indeg, active, consts)
}

/// Critical-path priorities over the built edge set (shared tail of both
/// graph builders). The longest-path fixpoint is the same for any valid
/// topological order, so the builders' differing successor orders cannot
/// change priorities.
fn finish_graph(
    p: &Process,
    succs: Vec<Vec<(usize, u64)>>,
    indeg: Vec<u32>,
    active: Vec<bool>,
    consts: HashMap<VReg, u16>,
) -> ProcGraph {
    let n = p.instrs.len();
    let mut priority = vec![0u64; n];
    let topo = topo_order(n, &active, &succs, &indeg);
    for &i in topo.iter().rev() {
        let mut h = p.instrs[i].op.issue_slots() as u64;
        for &(s, l) in &succs[i] {
            h = h.max(priority[s] + l);
        }
        priority[i] = h;
    }
    ProcGraph {
        succs,
        indeg,
        priority,
        active,
        consts,
    }
}

fn topo_order(n: usize, active: &[bool], succs: &[Vec<(usize, u64)>], indeg: &[u32]) -> Vec<usize> {
    let mut indeg = indeg.to_vec();
    let mut stack: Vec<usize> = (0..n).filter(|&i| active[i] && indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(i) = stack.pop() {
        out.push(i);
        for &(s, _) in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                stack.push(s);
            }
        }
    }
    out
}

/// Dimension-ordered route (X then Y) ending with the delivery port —
/// identical to the machine model's path enumeration.
fn route(from: CoreId, to: CoreId, config: &MachineConfig) -> Vec<Link> {
    let mut links = Vec::new();
    let mut x = from.x as usize;
    let mut y = from.y as usize;
    while x != to.x as usize {
        links.push(Link::XPlus(x as u8, y as u8));
        x = (x + 1) % config.grid_width;
    }
    while y != to.y as usize {
        links.push(Link::YPlus(x as u8, y as u8));
        y = (y + 1) % config.grid_height;
    }
    links.push(Link::Delivery(to.x, to.y));
    links
}
