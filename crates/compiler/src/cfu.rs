//! Custom function synthesis (§6.2): collapse chains of bitwise logic into
//! single 4-input LUT instructions.
//!
//! The pass runs per partitioned process:
//!
//! 1. prune the dependence graph to bitwise-logic vertices (`And`/`Or`/
//!    `Xor`; `Not` is already `Xor` with a mask constant, so constants are
//!    absorbed into the per-lane truth tables);
//! 2. enumerate 4-feasible cuts for every logic vertex (cut enumeration in
//!    the style of FPGA technology mapping [Cong et al., FPGA'99]);
//! 3. keep cuts that are MFFCs — no interior result escapes the cone;
//! 4. compute each cone's truth table by evaluating it over the canonical
//!    input masks (per lane, so constant leaves contribute their actual
//!    bits — the paper's 256-bit tables);
//! 5. group cones by table ("logic equivalence") and select a
//!    non-overlapping subset maximizing saved instructions under the
//!    32-tables-per-core budget. The paper solves this with MILP; no MILP
//!    solver is in our dependency budget, so a greedy weighted selection
//!    (largest saving first) stands in — see DESIGN.md.

use std::collections::{HashMap, HashSet};

use manticore_isa::AluOp;

use crate::lir::{LirInstr, LirOp, Process, VReg};

/// Canonical truth-table input masks for up to 4 variables.
const MASKS: [u16; 4] = [0xaaaa, 0xcccc, 0xf0f0, 0xff00];

/// Statistics from one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CfuStats {
    /// Custom instructions emitted.
    pub fused: usize,
    /// Logic instructions removed (interior + roots).
    pub removed: usize,
    /// Distinct truth tables used.
    pub tables: usize,
}

/// A candidate cone: a root logic instruction plus interior nodes.
#[derive(Debug, Clone)]
struct Cone {
    root: usize,
    /// Interior instruction indices (including the root).
    interior: Vec<usize>,
    /// Non-constant leaf vregs (≤ 4), in truth-table input order.
    leaves: Vec<VReg>,
    table: [u16; 16],
    savings: usize,
}

/// Fuses logic chains in `proc`; `max_tables` bounds distinct truth tables
/// (32 on the hardware). Returns statistics. Run [`crate::lir_opt::dce`]
/// afterwards to drop the dead interior instructions.
pub fn synthesize(proc: &mut Process, max_tables: usize) -> CfuStats {
    let n = proc.instrs.len();
    let mut def_of: HashMap<VReg, usize> = HashMap::new();
    for (i, instr) in proc.instrs.iter().enumerate() {
        if let Some(d) = instr.dest {
            def_of.insert(d, i);
        }
    }
    // Known constants (for per-lane absorption).
    let mut const_val: HashMap<VReg, u16> = HashMap::new();
    for instr in &proc.instrs {
        if let (LirOp::Const(v), Some(d)) = (&instr.op, instr.dest) {
            const_val.insert(d, *v);
        }
    }
    // Use lists.
    let mut uses: HashMap<VReg, Vec<usize>> = HashMap::new();
    for (i, instr) in proc.instrs.iter().enumerate() {
        for &a in &instr.args {
            uses.entry(a).or_default().push(i);
        }
    }
    let is_logic = |i: usize| proc.instrs[i].op.is_bitwise_logic();

    // --- Cut enumeration -------------------------------------------------
    // cuts[i]: list of leaf sets (non-const vregs, sorted, ≤4).
    const MAX_CUTS: usize = 12;
    let mut cuts: Vec<Vec<Vec<VReg>>> = vec![Vec::new(); n];
    for i in 0..n {
        if !is_logic(i) {
            continue;
        }
        // Per-operand choice: either the operand as a leaf, or (if the
        // operand is itself a logic node) each of its cuts.
        let mut operand_choices: Vec<Vec<Vec<VReg>>> = Vec::new();
        for &a in &proc.instrs[i].args {
            let mut choices: Vec<Vec<VReg>> = Vec::new();
            if const_val.contains_key(&a) {
                choices.push(vec![]); // constants never consume an input
            } else {
                choices.push(vec![a]);
                if let Some(&d) = def_of.get(&a) {
                    if is_logic(d) {
                        choices.extend(cuts[d].iter().cloned());
                    }
                }
            }
            operand_choices.push(choices);
        }
        let mut mine: Vec<Vec<VReg>> = vec![vec![]];
        for choices in &operand_choices {
            let mut next = Vec::new();
            for base in &mine {
                for c in choices {
                    let mut merged: Vec<VReg> = base.clone();
                    for &l in c {
                        if !merged.contains(&l) {
                            merged.push(l);
                        }
                    }
                    if merged.len() <= 4 {
                        merged.sort_unstable();
                        if !next.contains(&merged) {
                            next.push(merged);
                        }
                    }
                }
            }
            mine = next;
            if mine.len() > MAX_CUTS * 4 {
                mine.truncate(MAX_CUTS * 4);
            }
        }
        mine.sort_by_key(|c| c.len());
        mine.dedup();
        mine.truncate(MAX_CUTS);
        cuts[i] = mine;
    }

    // --- Cone construction + MFFC filter + truth tables ------------------
    let mut candidates: Vec<Cone> = Vec::new();
    for (root, root_cuts) in cuts.iter().enumerate().take(n) {
        if !is_logic(root) {
            continue;
        }
        for cut in root_cuts {
            let leaf_set: HashSet<VReg> = cut.iter().copied().collect();
            // Collect interior nodes: walk back from root until leaves.
            let mut interior: Vec<usize> = Vec::new();
            let mut stack = vec![root];
            let mut seen: HashSet<usize> = HashSet::new();
            seen.insert(root);
            let mut ok = true;
            while let Some(i) = stack.pop() {
                interior.push(i);
                for &a in &proc.instrs[i].args {
                    if leaf_set.contains(&a) || const_val.contains_key(&a) {
                        continue;
                    }
                    match def_of.get(&a) {
                        Some(&d) if is_logic(d) => {
                            if seen.insert(d) {
                                stack.push(d);
                            }
                        }
                        // A non-logic, non-leaf operand: this cut is not a
                        // closed cone over logic ops.
                        _ => {
                            ok = false;
                        }
                    }
                }
            }
            if !ok || interior.len() < 2 {
                continue; // no saving from a single instruction
            }
            // MFFC: no interior node except the root may be used outside.
            let interior_set: HashSet<usize> = interior.iter().copied().collect();
            let escapes = interior.iter().any(|&i| {
                if i == root {
                    return false;
                }
                let d = proc.instrs[i].dest.unwrap();
                uses.get(&d)
                    .map(|us| us.iter().any(|u| !interior_set.contains(u)))
                    .unwrap_or(false)
            });
            if escapes {
                continue;
            }
            // Truth table per lane.
            let table = match eval_cone(proc, root, &interior_set, cut, &const_val, &def_of) {
                Some(t) => t,
                None => continue,
            };
            candidates.push(Cone {
                root,
                interior: interior.clone(),
                leaves: cut.clone(),
                table,
                savings: interior.len() - 1,
            });
        }
    }

    // --- Selection (greedy stand-in for the paper's MILP) ---------------
    candidates.sort_by_key(|c| std::cmp::Reverse(c.savings));
    let mut claimed: HashSet<usize> = HashSet::new();
    let mut tables: Vec<[u16; 16]> = Vec::new();
    let mut chosen: Vec<Cone> = Vec::new();
    for cone in candidates {
        if cone.interior.iter().any(|i| claimed.contains(i)) {
            continue;
        }
        let table_known = tables.contains(&cone.table);
        if !table_known && tables.len() >= max_tables {
            continue;
        }
        if !table_known {
            tables.push(cone.table);
        }
        claimed.extend(cone.interior.iter().copied());
        chosen.push(cone);
    }

    // --- Rewrite ----------------------------------------------------------
    let mut stats = CfuStats {
        fused: chosen.len(),
        removed: chosen.iter().map(|c| c.interior.len()).sum(),
        tables: tables.len(),
    };
    if chosen.is_empty() {
        stats.tables = 0;
        return stats;
    }
    for cone in &chosen {
        let dest = proc.instrs[cone.root].dest;
        proc.instrs[cone.root] = LirInstr {
            dest,
            op: LirOp::Custom { table: cone.table },
            args: cone.leaves.clone(),
        };
        // Interior nodes become dead; DCE removes them.
    }
    stats
}

/// Evaluates the cone over the canonical masks, per lane. Returns `None`
/// when evaluation hits an unsupported op (defensive; interiors are logic).
fn eval_cone(
    proc: &Process,
    root: usize,
    interior: &HashSet<usize>,
    leaves: &[VReg],
    const_val: &HashMap<VReg, u16>,
    def_of: &HashMap<VReg, usize>,
) -> Option<[u16; 16]> {
    let mut table = [0u16; 16];
    for (lane, t) in table.iter_mut().enumerate() {
        // Value of each vreg in truth-table space for this lane.
        let mut memo: HashMap<VReg, u16> = HashMap::new();
        for (k, &l) in leaves.iter().enumerate() {
            memo.insert(l, MASKS[k]);
        }
        fn eval(
            v: VReg,
            lane: usize,
            proc: &Process,
            interior: &HashSet<usize>,
            const_val: &HashMap<VReg, u16>,
            def_of: &HashMap<VReg, usize>,
            memo: &mut HashMap<VReg, u16>,
        ) -> Option<u16> {
            if let Some(&x) = memo.get(&v) {
                return Some(x);
            }
            if let Some(&c) = const_val.get(&v) {
                // Constant: this lane's bit replicated across table space.
                let bit = (c >> lane) & 1;
                let x = if bit == 1 { 0xffff } else { 0x0000 };
                memo.insert(v, x);
                return Some(x);
            }
            let d = *def_of.get(&v)?;
            if !interior.contains(&d) {
                return None;
            }
            let instr = &proc.instrs[d];
            let a = eval(instr.args[0], lane, proc, interior, const_val, def_of, memo)?;
            let b = eval(instr.args[1], lane, proc, interior, const_val, def_of, memo)?;
            let x = match instr.op {
                LirOp::Alu(AluOp::And) => a & b,
                LirOp::Alu(AluOp::Or) => a | b,
                LirOp::Alu(AluOp::Xor) => a ^ b,
                _ => return None,
            };
            memo.insert(v, x);
            Some(x)
        }
        let root_v = proc.instrs[root].dest?;
        *t = eval(root_v, lane, proc, interior, const_val, def_of, &mut memo)?;
    }
    Some(table)
}
