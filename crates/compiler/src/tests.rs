//! Compiler tests, centred on three-way differential testing: the netlist
//! evaluator (ground truth), the lower-assembly interpreter, and the full
//! machine model must agree on every register, every cycle — the same
//! validation methodology the paper describes for its interpreters.

use manticore_bits::Bits;
use manticore_isa::MachineConfig;
use manticore_machine::Machine;
use manticore_netlist::{eval::Evaluator, Netlist, NetlistBuilder};
use manticore_util::SmallRng;

use crate::interp::LirInterp;
use crate::{compile, opt, CompileOptions, PartitionStrategy};

fn test_config(grid: usize) -> MachineConfig {
    MachineConfig {
        grid_width: grid,
        grid_height: grid,
        hazard_latency: 4,
        ..Default::default()
    }
}

fn options(grid: usize) -> CompileOptions {
    CompileOptions {
        config: test_config(grid),
        ..Default::default()
    }
}

/// Runs `netlist` for `cycles` on the evaluator, the LIR interpreter, and
/// the machine, asserting identical register trajectories and events.
fn assert_three_way_equivalence(netlist: &Netlist, cycles: u64, opts: &CompileOptions) {
    let out = compile(netlist, opts).unwrap_or_else(|e| panic!("compile failed: {e}"));
    let mut eval = Evaluator::new(&out.optimized);
    let mut interp = LirInterp::new(&out.lir);
    let mut machine = Machine::load(opts.config.clone(), &out.binary)
        .unwrap_or_else(|e| panic!("load failed: {e}"));

    for cycle in 0..cycles {
        let ev = eval.step();
        let iv = interp.step();
        let mv = machine
            .run_vcycles(1)
            .unwrap_or_else(|e| panic!("machine failed at cycle {cycle}: {e}"));

        assert_eq!(
            ev.displays, iv.displays,
            "interp display mismatch at {cycle}"
        );
        assert_eq!(
            ev.displays, mv.displays,
            "machine display mismatch at {cycle}"
        );
        assert_eq!(ev.finished, mv.finished, "finish mismatch at cycle {cycle}");

        for (ri, reg) in out.optimized.registers().iter().enumerate() {
            let expect = eval.reg_value(ri);
            let got_i = interp.rtl_reg_value(manticore_netlist::RegId(ri as u32), reg.width);
            assert_eq!(
                &got_i, expect,
                "interp reg `{}` mismatch at cycle {cycle}",
                reg.name
            );
            let loc = &out.metadata.reg_locations[ri];
            let words: Vec<u16> = loc
                .words
                .iter()
                .map(|&(core, mreg)| machine.read_reg(core, mreg))
                .collect();
            let got_m = Bits::from_words16(&words, reg.width);
            assert_eq!(
                &got_m, expect,
                "machine reg `{}` mismatch at cycle {cycle}",
                reg.name
            );
        }
        if ev.finished {
            break;
        }
    }
}

// ----------------------------------------------------------------------
// Netlist optimization
// ----------------------------------------------------------------------

#[test]
fn opt_folds_constants() {
    let mut b = NetlistBuilder::new("fold");
    let a = b.lit(3, 8);
    let c = b.lit(4, 8);
    let s = b.add(a, c); // folds to 7
    let r = b.reg("r", 8, 0);
    let next = b.add(r.q(), s);
    b.set_next(r, next);
    b.output("r", r.q());
    let n = b.finish_build().unwrap();
    let o = opt::optimize(&n);
    // add(3,4) folded: only the reg add remains.
    let adds = o.nets().iter().filter(|x| x.op.mnemonic() == "add").count();
    assert_eq!(adds, 1);
}

#[test]
fn opt_eliminates_dead_registers() {
    let mut b = NetlistBuilder::new("dead");
    // live counter observed by an output
    let live = b.reg("live", 8, 0);
    let one = b.lit(1, 8);
    let ln = b.add(live.q(), one);
    b.set_next(live, ln);
    b.output("live", live.q());
    // dead self-feeding register
    let dead = b.reg("dead", 8, 0);
    let dn = b.add(dead.q(), one);
    b.set_next(dead, dn);
    let n = b.finish_build().unwrap();
    let o = opt::optimize(&n);
    assert_eq!(o.registers().len(), 1);
    assert_eq!(o.registers()[0].name, "live");
}

#[test]
fn opt_cse_merges_duplicates() {
    let mut b = NetlistBuilder::new("cse");
    let r = b.reg("r", 8, 1);
    let x1 = b.mul(r.q(), r.q());
    let x2 = b.mul(r.q(), r.q()); // duplicate
    let s = b.xor(x1, x2); // becomes xor(x, x) -> 0 by algebraic rule
    let next = b.add(r.q(), s);
    b.set_next(r, next);
    b.output("r", r.q());
    let n = b.finish_build().unwrap();
    let o = opt::optimize(&n);
    let muls = o.nets().iter().filter(|x| x.op.mnemonic() == "mul").count();
    assert_eq!(muls, 0, "xor(x,x)=0 should kill both muls");
}

#[test]
fn opt_preserves_behaviour() {
    let n = random_netlist(123, 50);
    let o = opt::optimize(&n);
    let mut e1 = Evaluator::new(&n);
    let mut e2 = Evaluator::new(&o);
    // Compare via shared output names.
    for _ in 0..20 {
        e1.step();
        e2.step();
        for (name, _) in n.outputs() {
            assert_eq!(
                e1.output_value(name),
                e2.output_value(name),
                "output {name} diverged"
            );
        }
    }
}

// ----------------------------------------------------------------------
// End-to-end: simple designs
// ----------------------------------------------------------------------

#[test]
fn counter_16bit_end_to_end() {
    let mut b = NetlistBuilder::new("counter16");
    let r = b.reg("count", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("count", r.q());
    let n = b.finish_build().unwrap();
    assert_three_way_equivalence(&n, 10, &options(2));
}

#[test]
fn counter_40bit_crosses_words() {
    let mut b = NetlistBuilder::new("counter40");
    let r = b.reg_init("count", 40, Bits::from_u64(0xffff_fff0, 40));
    let one = b.lit(1, 40);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    b.output("count", r.q());
    let n = b.finish_build().unwrap();
    // Crosses the 32-bit boundary during the run (carry chains).
    assert_three_way_equivalence(&n, 32, &options(2));
}

#[test]
fn finish_and_display_end_to_end() {
    let mut b = NetlistBuilder::new("fd");
    let r = b.reg("c", 16, 0);
    let one = b.lit(1, 16);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let three = b.lit(3, 16);
    let is3 = b.eq(r.q(), three);
    b.display(is3, "c reached {}", &[r.q()]);
    let five = b.lit(5, 16);
    let done = b.eq(r.q(), five);
    b.finish(done);
    let n = b.finish_build().unwrap();
    assert_three_way_equivalence(&n, 20, &options(2));
}

#[test]
fn assertion_failure_propagates() {
    let mut b = NetlistBuilder::new("af");
    let r = b.reg("c", 8, 0);
    let one = b.lit(1, 8);
    let next = b.add(r.q(), one);
    b.set_next(r, next);
    let two = b.lit(2, 8);
    let ok = b.ne(r.q(), two);
    b.expect_true(ok, "c hit 2");
    let n = b.finish_build().unwrap();
    let opts = options(2);
    let out = compile(&n, &opts).unwrap();
    let mut machine = Machine::load(opts.config.clone(), &out.binary).unwrap();
    let err = machine.run_vcycles(10).unwrap_err();
    match err {
        manticore_machine::MachineError::AssertFailed { message, vcycle } => {
            assert_eq!(message, "c hit 2");
            assert_eq!(vcycle, 2);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn local_memory_end_to_end() {
    let mut b = NetlistBuilder::new("mem");
    let mem = b.memory("m", 16, 24);
    let addr = b.reg("addr", 4, 0);
    let one = b.lit(1, 4);
    let next = b.add(addr.q(), one);
    b.set_next(addr, next);
    // write (addr * 3 + 5) extended to 24 bits at addr
    let a24 = b.zext(addr.q(), 24);
    let three = b.lit(3, 24);
    let five = b.lit(5, 24);
    let t = b.mul(a24, three);
    let data = b.add(t, five);
    let en = b.lit(1, 1);
    b.mem_write(mem, addr.q(), data, en);
    // read back previous address into a register
    let prev = b.sub(addr.q(), one);
    let rd = b.mem_read(mem, prev);
    let sink = b.reg("sink", 24, 0);
    b.set_next(sink, rd);
    b.output("sink", sink.q());
    let n = b.finish_build().unwrap();
    assert_three_way_equivalence(&n, 24, &options(2));
}

#[test]
fn global_memory_end_to_end() {
    // A memory too large for the scratchpad goes to DRAM via the
    // privileged core with global stalls.
    let mut cfg = test_config(2);
    cfg.scratch_words = 64; // force global placement
    let opts = CompileOptions {
        config: cfg,
        ..Default::default()
    };
    let mut b = NetlistBuilder::new("gmem");
    let mem = b.memory("big", 128, 16);
    let addr = b.reg("addr", 7, 0);
    let one = b.lit(1, 7);
    let next = b.add(addr.q(), one);
    b.set_next(addr, next);
    let data = b.zext(addr.q(), 16);
    let en = b.lit(1, 1);
    b.mem_write(mem, addr.q(), data, en);
    let prev = b.sub(addr.q(), one);
    let rd = b.mem_read(mem, prev);
    let sink = b.reg("sink", 16, 0);
    b.set_next(sink, rd);
    b.output("sink", sink.q());
    let n = b.finish_build().unwrap();
    assert_three_way_equivalence(&n, 20, &opts);

    // And the machine must actually have stalled for the cache.
    let out = compile(&n, &opts).unwrap();
    let mut machine = Machine::load(opts.config.clone(), &out.binary).unwrap();
    machine.run_vcycles(10).unwrap();
    assert!(machine.counters().stall_cycles > 0);
    assert!(machine.cache_stats().hits + machine.cache_stats().misses > 0);
}

#[test]
fn wide_ops_end_to_end() {
    // Exercises sub, mul, compares, shifts, slices, concat on wide values.
    let mut b = NetlistBuilder::new("wide");
    let x = b.reg_init("x", 48, Bits::from_u64(0x0000_1234_5678, 48));
    let y = b.reg_init("y", 48, Bits::from_u64(0xffff_0000_0001, 48));
    let sum = b.add(x.q(), y.q());
    let diff = b.sub(x.q(), y.q());
    let prod = b.mul(x.q(), diff);
    b.set_next(x, sum);
    b.set_next(y, prod);
    let lt = b.ult(x.q(), y.q());
    let slt = b.slt(x.q(), y.q());
    let flag = b.reg("flag", 2, 0);
    let packed = b.concat(slt, lt);
    b.set_next(flag, packed);
    let sh_amount = b.slice(x.q(), 0, 6);
    let amt48 = b.zext(sh_amount, 48);
    let shifted = b.shr(y.q(), amt48);
    let z = b.reg("z", 48, 0);
    b.set_next(z, shifted);
    b.output("x", x.q());
    b.output("y", y.q());
    b.output("flag", flag.q());
    b.output("z", z.q());
    let n = b.finish_build().unwrap();
    assert_three_way_equivalence(&n, 16, &options(2));
}

#[test]
fn custom_functions_preserve_semantics() {
    // A logic-heavy design: parity/mask network, the custom-function
    // synthesis target. Compare results with CFU on and off.
    let mut b = NetlistBuilder::new("logic");
    let r = b.reg_init("r", 32, Bits::from_u64(0xdeadbeef, 32));
    let s = b.reg_init("s", 32, Bits::from_u64(0x12345678, 32));
    let m1 = b.lit(0x0f0f_0f0f, 32);
    let m2 = b.lit(0x00ff_00ff, 32);
    let a = b.and(r.q(), m1);
    let o = b.or(s.q(), m2);
    let x = b.xor(a, o);
    let nx = b.not(x);
    let y = b.and(nx, s.q());
    let z = b.or(y, r.q());
    let w = b.xor(z, m1);
    b.set_next(r, w);
    let rot = b.rotr_const(r.q(), 7);
    let s2 = b.xor(rot, w);
    b.set_next(s, s2);
    b.output("r", r.q());
    b.output("s", s.q());
    let n = b.finish_build().unwrap();

    let with_cfu = options(2);
    let without_cfu = CompileOptions {
        custom_functions: false,
        ..options(2)
    };
    assert_three_way_equivalence(&n, 16, &with_cfu);
    assert_three_way_equivalence(&n, 16, &without_cfu);

    let out_with = compile(&n, &with_cfu).unwrap();
    let out_without = compile(&n, &without_cfu).unwrap();
    assert!(
        out_with.report.total_custom > 0,
        "synthesis should find fusable logic"
    );
    assert!(
        out_with.report.total_instructions < out_without.report.total_instructions,
        "custom functions should reduce instruction count"
    );
}

#[test]
fn lpt_partitioning_is_also_correct() {
    let n = random_netlist(7, 60);
    let opts = CompileOptions {
        partition: PartitionStrategy::Lpt,
        ..options(3)
    };
    assert_three_way_equivalence(&n, 12, &opts);
}

#[test]
fn partitioning_actually_spreads_work() {
    // Independent counters should land on multiple cores.
    let mut b = NetlistBuilder::new("par");
    for i in 0..8 {
        let r = b.reg(format!("c{i}"), 16, i);
        let k = b.lit(i + 1, 16);
        let next = b.add(r.q(), k);
        b.set_next(r, next);
        b.output(format!("c{i}"), r.q());
    }
    let n = b.finish_build().unwrap();
    let out = compile(&n, &options(3)).unwrap();
    assert!(
        out.report.cores_used > 1,
        "independent work should parallelize, used {}",
        out.report.cores_used
    );
    assert_three_way_equivalence(&n, 8, &options(3));
}

#[test]
fn report_is_populated() {
    let n = random_netlist(42, 40);
    let out = compile(&n, &options(2)).unwrap();
    assert!(out.report.vcpl > 0);
    assert!(out.report.total_instructions > 0);
    assert_eq!(out.report.passes.len(), 7);
    assert_eq!(
        out.report.passes.iter().map(|p| p.name).collect::<Vec<_>>(),
        [
            "netlist-opt",
            "lower",
            "lir-opt",
            "partition",
            "custom-functions",
            "schedule",
            "regalloc-emit"
        ]
    );
    assert_eq!(out.report.compile_threads, 1);
    assert!(out.report.split.vertices > 0);
    let (_, straggler) = out.report.straggler().unwrap();
    assert!(straggler.busy() > 0);
}

#[test]
fn parallel_pipeline_is_bit_identical_and_reports_threads() {
    // The structural heart of this module's differential tests, in unit
    // form: serial (reference) vs. parallel (fast) pipelines must agree on
    // the emitted bytes and the deterministic report fingerprint. The
    // cross-workload version lives in tests/compile_determinism.rs.
    for seed in [7u64, 21, 42] {
        let n = random_netlist(seed, 60);
        let serial = compile(&n, &options(4)).unwrap();
        for threads in [2usize, 4] {
            let mut opts = options(4);
            opts.compile_threads = threads;
            let par = compile(&n, &opts).unwrap();
            assert_eq!(
                serial.binary.to_bytes(),
                par.binary.to_bytes(),
                "seed {seed}: binary differs at {threads} threads"
            );
            assert_eq!(
                serial.report.deterministic_fingerprint(),
                par.report.deterministic_fingerprint(),
                "seed {seed}: report fingerprint differs at {threads} threads"
            );
            assert_eq!(par.report.compile_threads, threads);
            assert!(
                par.report.passes.iter().any(|p| p.threads == threads),
                "parallel passes should report their thread count"
            );
        }
    }
}

#[test]
fn rejects_open_designs() {
    let mut b = NetlistBuilder::new("open");
    let i = b.input("stim", 8);
    let r = b.reg("r", 8, 0);
    b.set_next(r, i);
    let n = b.finish_build().unwrap();
    match compile(&n, &options(2)) {
        Err(crate::CompileError::UnsupportedInput { name }) => assert_eq!(name, "stim"),
        other => panic!("expected UnsupportedInput, got {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Randomized differential testing
// ----------------------------------------------------------------------

/// Builds a random closed netlist: registers of mixed widths feeding a
/// random combinational expression pool, plus a small memory.
fn random_netlist(seed: u64, ops: usize) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(seed);
    let widths = [7usize, 16, 20, 33];
    let mut b = NetlistBuilder::new("rand");

    // One register per width plus a 1-bit toggle.
    let mut pool: Vec<Vec<manticore_netlist::NetId>> = Vec::new();
    let mut regs = Vec::new();
    for (wi, &w) in widths.iter().enumerate() {
        let r = b.reg_init(format!("r{wi}"), w, Bits::from_u128(rng.next_u128(), w));
        regs.push(r);
        let c = b.constant(Bits::from_u128(rng.next_u128(), w));
        pool.push(vec![r.q(), c]);
    }

    // A small memory indexed by the low bits of r1.
    let mem = b.memory("m", 8, 16);
    let addr = b.slice(regs[1].q(), 0, 3);
    let rd = b.mem_read(mem, addr);
    pool[1].push(rd);

    for _ in 0..ops {
        let wi = rng.gen_range(0..widths.len());
        let w = widths[wi];
        let a = pool[wi][rng.gen_range(0..pool[wi].len())];
        let c = pool[wi][rng.gen_range(0..pool[wi].len())];
        let v = match rng.gen_range(0..13) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            4 => b.or(a, c),
            5 => b.xor(a, c),
            6 => b.not(a),
            7 => {
                let e = b.eq(a, c);
                b.zext(e, w)
            }
            8 => {
                let u = b.ult(a, c);
                b.zext(u, w)
            }
            9 => {
                let s = b.slt(a, c);
                b.zext(s, w)
            }
            10 => {
                let sel = b.bit(a, rng.gen_range(0..w));
                b.mux(sel, a, c)
            }
            11 => {
                let amt_w = 6.min(w);
                let amt = b.slice(c, 0, amt_w);
                let amt_full = b.zext(amt, w);
                match rng.gen_range(0..3) {
                    0 => b.shl(a, amt_full),
                    1 => b.shr(a, amt_full),
                    _ => b.ashr(a, amt_full),
                }
            }
            _ => {
                let cut = rng.gen_range(1..w);
                let lo = b.slice(a, 0, cut);
                let hi = b.slice(c, cut, w - cut);
                b.concat(lo, hi)
            }
        };
        pool[wi].push(v);
    }

    // Registers take random next values from their width pool.
    for (wi, r) in regs.iter().enumerate() {
        let v = pool[wi][rng.gen_range(0..pool[wi].len())];
        b.set_next(*r, v);
    }
    // Memory write driven from the pools.
    let wdata = b.slice(pool[2][pool[2].len() - 1], 0, 16);
    let wen = b.bit(regs[0].q(), 0);
    b.mem_write(mem, addr, wdata, wen);

    // Outputs for opt-equivalence checks.
    for (wi, p) in pool.iter().enumerate() {
        b.output(format!("out{wi}"), *p.last().unwrap());
    }
    b.finish_build().unwrap()
}

#[test]
fn prop_random_designs_run_identically() {
    let mut rng = SmallRng::seed_from_u64(0x31);
    for _ in 0..12 {
        let seed = rng.next_u64();
        let ops = rng.gen_range(10..70);
        let n = random_netlist(seed, ops);
        assert_three_way_equivalence(&n, 8, &options(2));
    }
}

#[test]
fn prop_random_designs_on_bigger_grids() {
    let mut rng = SmallRng::seed_from_u64(0x32);
    for _ in 0..12 {
        let seed = rng.next_u64();
        let n = random_netlist(seed, 50);
        assert_three_way_equivalence(&n, 6, &options(4));
    }
}
