//! Register allocation and machine-code emission (§6.3).
//!
//! Each core's register file is split into a *persistent* region — the
//! always-zero register, pooled constants (initialized at boot, never
//! written), and the home registers of state words — and a *temporary*
//! region allocated by linear scan over the scheduled order. The
//! current/next same-register optimization assigns a state's next-value
//! temporary directly to its home register when no reader of the current
//! value executes after the producer, eliminating the commit move (§6.3,
//! citing Wimmer & Franz linear-scan-on-SSA).
//!
//! # Parallel structure and determinism
//!
//! [`emit_threaded`] keeps the cheap cross-process phases serial —
//! persistent-register assignment, scratchpad layout, custom-function
//! tables, the exception table, and metadata — and fans the per-process
//! work (liveness, coalescing, linear scan, body emission, scratch image)
//! out over the worker pool. Results land in pre-assigned process slots
//! and the `Binary`'s core images are assembled in process-index order, so
//! the output is bit-identical at any thread count.
//!
//! At `threads > 1` the allocator switches from the reference hash-map
//! implementation to a vector-indexed one (`alloc_process_fast`) that
//! replays the same decision sequence: liveness and coalescing produce the
//! same per-vreg facts, and the linear scan's free-list (LIFO) and active
//! list (insertion-ordered `retain`) are plain vectors in both. The two
//! allocators differ only in lookup structures, never in decisions.
//!
//! The scratchpad base table is a `BTreeMap` on purpose: the boot image
//! `init_scratch` is emitted by iterating it, and a hash map here would
//! make the binary's byte order run-dependent (the layout itself is
//! order-insensitive, but the determinism suite compares bytes).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use manticore_isa::{
    AluOp, Binary, CoreImage, ExceptionDescriptor, ExceptionId, ExceptionKind, Instruction,
    MachineConfig, Reg,
};
use manticore_util::parallel_map;

use crate::error::CompileError;
use crate::lir::{LirExceptionKind, LirOp, LirProgram, MemPlacement, Process, StateId, VReg};
use crate::report::{CoreBreakdown, MemLocation, Metadata, RegLocation};
use crate::schedule::Schedule;

/// Emission result: the loadable binary plus location metadata and
/// per-core instruction mixes.
#[derive(Debug, Clone)]
pub struct EmitOutput {
    /// The loadable program.
    pub binary: Binary,
    /// Where RTL state lives.
    pub metadata: Metadata,
    /// Per-process instruction mix.
    pub per_core: Vec<CoreBreakdown>,
}

/// The final vreg → machine-register assignment of one process, behind
/// either lookup structure (reference hash map vs. fast vector).
#[derive(Debug, Clone)]
enum RegView {
    Map(HashMap<VReg, Reg>),
    Table(Vec<Option<Reg>>),
}

impl RegView {
    #[inline]
    fn get(&self, v: VReg) -> Reg {
        match self {
            RegView::Map(m) => m[&v],
            RegView::Table(t) => t[v.index()].expect("vreg allocated"),
        }
    }
}

/// Allocates registers and emits the machine binary with the reference
/// serial pipeline.
///
/// # Errors
///
/// Register-file or scratchpad overflow.
pub fn emit(
    prog: &LirProgram,
    schedule: &Schedule,
    config: &MachineConfig,
) -> Result<EmitOutput, CompileError> {
    emit_threaded(prog, schedule, config, 1)
}

/// Allocates registers and emits the machine binary, running per-process
/// allocation and emission on `threads` workers. Output is bit-identical
/// at any thread count (see the module docs).
///
/// # Errors
///
/// Register-file or scratchpad overflow (reported for the lowest failing
/// process index, like the serial pipeline).
pub fn emit_threaded(
    prog: &LirProgram,
    schedule: &Schedule,
    config: &MachineConfig,
    threads: usize,
) -> Result<EmitOutput, CompileError> {
    let nproc = prog.processes.len();

    // ------------------------------------------------------------------
    // Phase A: persistent registers on every core.
    // ------------------------------------------------------------------
    // Per process: vreg -> machine reg for constants and state live-ins.
    let mut pinned: Vec<HashMap<VReg, Reg>> = vec![HashMap::new(); nproc];
    // Per process: state -> home register.
    let mut state_reg: Vec<BTreeMap<StateId, Reg>> = vec![BTreeMap::new(); nproc];
    // Per process: first register available for temporaries.
    let mut temp_base: Vec<u16> = vec![1; nproc];
    // Per process: boot-time register initialization.
    let mut init_regs: Vec<Vec<(Reg, u16)>> = vec![Vec::new(); nproc];

    for pi in 0..nproc {
        let p = &prog.processes[pi];
        let mut next = 1u16;
        // Constants (value 0 aliases the zero register).
        let mut by_value: BTreeMap<u16, Reg> = BTreeMap::new();
        let consts = &schedule.const_vregs[pi];
        let mut const_vregs: Vec<(&VReg, &u16)> = consts.iter().collect();
        const_vregs.sort(); // deterministic allocation order
        for (&v, &val) in const_vregs {
            let r = if val == 0 {
                Reg::ZERO
            } else {
                *by_value.entry(val).or_insert_with(|| {
                    let r = Reg(next);
                    next += 1;
                    init_regs[pi].push((r, val));
                    r
                })
            };
            pinned[pi].insert(v, r);
        }
        // State homes: states read here, plus states committed here.
        let mut states: BTreeSet<StateId> = p.state_reads.keys().copied().collect();
        for instr in &p.instrs {
            if let LirOp::CommitLocal { state } = instr.op {
                states.insert(state);
            }
        }
        for s in states {
            let r = Reg(next);
            next += 1;
            state_reg[pi].insert(s, r);
            init_regs[pi].push((r, prog.states[s.index()].init));
            if let Some(&lv) = p.state_reads.get(&s) {
                pinned[pi].insert(lv, r);
            }
        }
        temp_base[pi] = next;
    }

    // ------------------------------------------------------------------
    // Scratchpad layout per process. Ordered map: `init_scratch` below is
    // emitted by iterating it, so its order is part of the binary bytes.
    // ------------------------------------------------------------------
    let mut mem_base: BTreeMap<u32, (usize, u16)> = BTreeMap::new(); // mem -> (process, scratch base)
    for pi in 0..nproc {
        let p = &prog.processes[pi];
        let mut used: BTreeSet<u32> = BTreeSet::new();
        for instr in &p.instrs {
            match &instr.op {
                LirOp::LocalLoad { mem, .. } | LirOp::LocalStore { mem, .. } => {
                    used.insert(mem.0);
                }
                _ => {}
            }
        }
        let mut base = 0usize;
        for m in used {
            let info = &prog.mems[m as usize];
            mem_base.insert(m, (pi, base as u16));
            base += info.total_words();
        }
        if base > config.scratch_words {
            return Err(CompileError::ScratchOverflow {
                needed: base,
                capacity: config.scratch_words,
            });
        }
    }

    // Custom-function table slots per core (first-appearance order).
    let mut cfu_tables: Vec<Vec<[u16; 16]>> = vec![Vec::new(); nproc];
    for (proc, tables) in prog.processes.iter().zip(cfu_tables.iter_mut()) {
        for instr in &proc.instrs {
            if let LirOp::Custom { table } = instr.op {
                if !tables.contains(&table) {
                    tables.push(table);
                }
            }
        }
        assert!(
            tables.len() <= config.num_custom_functions,
            "custom-function synthesis exceeded the table budget"
        );
    }

    // ------------------------------------------------------------------
    // Phase B: per-process liveness, coalescing, linear scan, emission —
    // independent across processes, fanned out over the pool.
    // ------------------------------------------------------------------
    let per_process = |pi: usize| -> Result<(RegView, CoreImage, CoreBreakdown), CompileError> {
        let p = &prog.processes[pi];
        let slots = &schedule.slots[pi];
        let view = if threads > 1 {
            alloc_process_fast(p, slots, &pinned[pi], &state_reg[pi], temp_base[pi], config)?
        } else {
            alloc_process_ref(p, slots, &pinned[pi], &state_reg[pi], temp_base[pi], config)?
        };

        let (body, mut breakdown) = emit_body(
            pi,
            prog,
            schedule,
            &view,
            &state_reg,
            &cfu_tables[pi],
            &mem_base,
        );
        breakdown.epilogue = schedule.epilogue_len[pi] as u64;
        breakdown.nops = schedule.vcycle_len - breakdown.busy();

        // Scratchpad image (ordered by memory id via the BTreeMap).
        let mut init_scratch: Vec<(u16, u16)> = Vec::new();
        for (m, &(owner, base)) in &mem_base {
            if owner != pi {
                continue;
            }
            let info = &prog.mems[*m as usize];
            for (off, &w) in info.init_words.iter().enumerate() {
                if w != 0 {
                    init_scratch.push((base + off as u16, w));
                }
            }
        }

        let image = CoreImage {
            core: schedule.core_of_process[pi],
            body,
            epilogue_len: schedule.epilogue_len[pi] as u32,
            custom_functions: cfu_tables[pi].clone(),
            init_regs: init_regs[pi].clone(),
            init_scratch,
        };
        Ok((view, image, breakdown))
    };
    let results: Vec<Result<(RegView, CoreImage, CoreBreakdown), CompileError>> = if threads > 1 {
        parallel_map(nproc, threads, per_process)
    } else {
        (0..nproc).map(per_process).collect()
    };
    let mut views: Vec<RegView> = Vec::with_capacity(nproc);
    let mut images: Vec<CoreImage> = Vec::with_capacity(nproc);
    let mut per_core: Vec<CoreBreakdown> = Vec::with_capacity(nproc);
    for r in results {
        let (view, image, breakdown) = r?;
        views.push(view);
        images.push(image);
        per_core.push(breakdown);
    }

    // ------------------------------------------------------------------
    // Exception table with machine registers.
    // ------------------------------------------------------------------
    let priv_idx = prog.processes.iter().position(|p| p.is_privileged);
    let mut exceptions = Vec::with_capacity(prog.exceptions.len());
    for (eid, kind) in prog.exceptions.iter().enumerate() {
        let kind = match kind {
            LirExceptionKind::Display { format, args } => {
                let pi = priv_idx.expect("displays imply a privileged process");
                ExceptionKind::Display {
                    format: format.clone(),
                    args: args
                        .iter()
                        .map(|(regs, w)| (regs.iter().map(|&v| views[pi].get(v)).collect(), *w))
                        .collect(),
                }
            }
            LirExceptionKind::AssertFail { message } => ExceptionKind::AssertFail {
                message: message.clone(),
            },
            LirExceptionKind::Finish => ExceptionKind::Finish,
        };
        exceptions.push(ExceptionDescriptor {
            id: ExceptionId(eid as u16),
            kind,
        });
    }

    // ------------------------------------------------------------------
    // Global memory image.
    // ------------------------------------------------------------------
    let mut init_dram: Vec<(u64, u16)> = Vec::new();
    for info in &prog.mems {
        if let MemPlacement::Global { base } = info.placement {
            for (off, &w) in info.init_words.iter().enumerate() {
                if w != 0 {
                    init_dram.push((base + off as u64, w));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Metadata.
    // ------------------------------------------------------------------
    let owners = prog.state_owners();
    let mut reg_locations: Vec<RegLocation> = Vec::new();
    {
        // Group states by RTL register.
        let mut by_reg: BTreeMap<u32, Vec<(usize, usize)>> = BTreeMap::new(); // rtl -> (word, state idx)
        for (si, s) in prog.states.iter().enumerate() {
            by_reg.entry(s.rtl_reg.0).or_default().push((s.word, si));
        }
        for (rtl, mut words) in by_reg {
            words.sort_unstable();
            let locs = words
                .iter()
                .map(|&(_, si)| {
                    let owner = owners[si];
                    (
                        schedule.core_of_process[owner],
                        state_reg[owner][&StateId(si as u32)],
                    )
                })
                .collect::<Vec<_>>();
            reg_locations.push(RegLocation {
                rtl_reg: manticore_netlist::RegId(rtl),
                width: words.len() * 16, // upper bound; width refined by caller
                words: locs,
            });
        }
    }
    let mem_locations = prog
        .mems
        .iter()
        .enumerate()
        .map(|(mi, info)| match info.placement {
            MemPlacement::Local => {
                let (owner, base) = mem_base.get(&(mi as u32)).copied().unwrap_or((0, 0));
                MemLocation::Local {
                    rtl_mem: info.rtl_mem,
                    core: schedule.core_of_process[owner],
                    base,
                    words_per_entry: info.words_per_entry,
                }
            }
            MemPlacement::Global { base } => MemLocation::Global {
                rtl_mem: info.rtl_mem,
                base,
                words_per_entry: info.words_per_entry,
            },
        })
        .collect();

    let binary = Binary {
        grid_width: config.grid_width as u32,
        grid_height: config.grid_height as u32,
        vcycle_len: schedule.vcycle_len as u32,
        cores: images,
        exceptions,
        init_dram,
    };
    Ok(EmitOutput {
        binary,
        metadata: Metadata {
            reg_locations,
            mem_locations,
            core_of_process: schedule.core_of_process.clone(),
        },
        per_core,
    })
}

/// Reference per-process allocation: liveness, commit coalescing, linear
/// scan — hash-map lookup structures, kept verbatim from the serial
/// pipeline and serving as the oracle for `alloc_process_fast`.
fn alloc_process_ref(
    p: &Process,
    slots: &[Option<usize>],
    pinned: &HashMap<VReg, Reg>,
    state_reg: &BTreeMap<StateId, Reg>,
    temp_base: u16,
    config: &MachineConfig,
) -> Result<RegView, CompileError> {
    // Liveness over scheduled positions.
    let mut def_slot: HashMap<VReg, usize> = HashMap::new();
    let mut last_use: HashMap<VReg, usize> = HashMap::new();
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let instr = &p.instrs[i];
        let read_at = t + instr.op.issue_slots() - 1;
        for &a in &instr.args {
            let e = last_use.entry(a).or_insert(read_at);
            *e = (*e).max(read_at);
        }
        if let Some(d) = instr.dest {
            def_slot.insert(d, t);
        }
    }

    // Commit coalescing.
    let mut elided_commits: BTreeSet<usize> = BTreeSet::new();
    let mut coalesced: HashMap<VReg, Reg> = HashMap::new();
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let LirOp::CommitLocal { state } = p.instrs[i].op else {
            continue;
        };
        let src = p.instrs[i].args[0];
        let home = state_reg[&state];
        // Identity commit: the next value IS the current value.
        if p.state_reads.get(&state) == Some(&src) {
            elided_commits.insert(i);
            continue;
        }
        // Coalesce: src is an unpinned temp whose definition runs after
        // every read of the current value.
        let is_temp = !pinned.contains_key(&src) && !coalesced.contains_key(&src);
        if is_temp {
            let src_def = def_slot.get(&src).copied().unwrap_or(0);
            let ok = match p.state_reads.get(&state) {
                None => true,
                Some(lv) => last_use.get(lv).is_none_or(|&lu| lu < src_def),
            };
            if ok {
                coalesced.insert(src, home);
                elided_commits.insert(i);
            }
        }
        let _ = t;
    }

    // Linear scan for the remaining temporaries.
    let mut alloc: HashMap<VReg, Reg> = HashMap::new();
    let mut free: Vec<u16> = Vec::new();
    let mut next_fresh = temp_base;
    let mut active: Vec<(usize, VReg, Reg)> = Vec::new(); // (last_use, vreg, reg)
    let mut max_reg_used = temp_base.saturating_sub(1) as usize;
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let Some(d) = p.instrs[i].dest else { continue };
        if pinned.contains_key(&d) || coalesced.contains_key(&d) {
            continue;
        }
        // Expire.
        active.retain(|&(lu, _, r)| {
            if lu <= t {
                free.push(r.0);
                false
            } else {
                true
            }
        });
        let lu = last_use.get(&d).copied().unwrap_or(t);
        let r = match free.pop() {
            Some(r) => Reg(r),
            None => {
                let r = next_fresh;
                next_fresh += 1;
                Reg(r)
            }
        };
        max_reg_used = max_reg_used.max(r.index());
        alloc.insert(d, r);
        if lu > t {
            active.push((lu, d, r));
        } else {
            free.push(r.0);
        }
    }
    if max_reg_used >= config.regfile_size {
        return Err(CompileError::RegfileOverflow {
            needed: max_reg_used + 1,
            capacity: config.regfile_size,
        });
    }

    // Final vreg -> machine reg view.
    let mut reg_of: HashMap<VReg, Reg> = HashMap::new();
    reg_of.extend(pinned.iter().map(|(&v, &r)| (v, r)));
    reg_of.extend(coalesced.iter().map(|(&v, &r)| (v, r)));
    reg_of.extend(alloc.iter().map(|(&v, &r)| (v, r)));
    Ok(RegView::Map(reg_of))
}

/// Fast per-process allocation: the same liveness facts, coalescing rules,
/// and linear-scan decision sequence as [`alloc_process_ref`], with every
/// hash map replaced by a vreg-indexed vector. The free list (LIFO pop)
/// and the active list (insertion-ordered `retain`) are plain vectors in
/// both implementations, so the register choices are identical.
fn alloc_process_fast(
    p: &Process,
    slots: &[Option<usize>],
    pinned: &HashMap<VReg, Reg>,
    state_reg: &BTreeMap<StateId, Reg>,
    temp_base: u16,
    config: &MachineConfig,
) -> Result<RegView, CompileError> {
    let nv = p.num_vregs as usize;
    let mut pinned_v: Vec<Option<Reg>> = vec![None; nv];
    for (&v, &r) in pinned {
        pinned_v[v.index()] = Some(r);
    }

    // Liveness over scheduled positions.
    let mut def_slot: Vec<Option<usize>> = vec![None; nv];
    let mut last_use: Vec<Option<usize>> = vec![None; nv];
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let instr = &p.instrs[i];
        let read_at = t + instr.op.issue_slots() - 1;
        for &a in &instr.args {
            let e = &mut last_use[a.index()];
            *e = Some(e.map_or(read_at, |lu| lu.max(read_at)));
        }
        if let Some(d) = instr.dest {
            def_slot[d.index()] = Some(t);
        }
    }

    // Commit coalescing.
    let mut coalesced_v: Vec<Option<Reg>> = vec![None; nv];
    for slot in slots.iter() {
        let Some(i) = *slot else { continue };
        let LirOp::CommitLocal { state } = p.instrs[i].op else {
            continue;
        };
        let src = p.instrs[i].args[0];
        let home = state_reg[&state];
        if p.state_reads.get(&state) == Some(&src) {
            continue; // identity commit
        }
        let is_temp = pinned_v[src.index()].is_none() && coalesced_v[src.index()].is_none();
        if is_temp {
            let src_def = def_slot[src.index()].unwrap_or(0);
            let ok = match p.state_reads.get(&state) {
                None => true,
                Some(lv) => last_use[lv.index()].is_none_or(|lu| lu < src_def),
            };
            if ok {
                coalesced_v[src.index()] = Some(home);
            }
        }
    }

    // Linear scan for the remaining temporaries.
    let mut alloc_v: Vec<Option<Reg>> = vec![None; nv];
    let mut free: Vec<u16> = Vec::new();
    let mut next_fresh = temp_base;
    let mut active: Vec<(usize, VReg, Reg)> = Vec::new();
    let mut max_reg_used = temp_base.saturating_sub(1) as usize;
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let Some(d) = p.instrs[i].dest else { continue };
        if pinned_v[d.index()].is_some() || coalesced_v[d.index()].is_some() {
            continue;
        }
        active.retain(|&(lu, _, r)| {
            if lu <= t {
                free.push(r.0);
                false
            } else {
                true
            }
        });
        let lu = last_use[d.index()].unwrap_or(t);
        let r = match free.pop() {
            Some(r) => Reg(r),
            None => {
                let r = next_fresh;
                next_fresh += 1;
                Reg(r)
            }
        };
        max_reg_used = max_reg_used.max(r.index());
        alloc_v[d.index()] = Some(r);
        if lu > t {
            active.push((lu, d, r));
        } else {
            free.push(r.0);
        }
    }
    if max_reg_used >= config.regfile_size {
        return Err(CompileError::RegfileOverflow {
            needed: max_reg_used + 1,
            capacity: config.regfile_size,
        });
    }

    let view: Vec<Option<Reg>> = (0..nv)
        .map(|v| alloc_v[v].or(coalesced_v[v]).or(pinned_v[v]))
        .collect();
    Ok(RegView::Table(view))
}

/// Emits one process's body from its schedule and register view — shared
/// by both pipelines (the view is the only allocation-dependent input).
fn emit_body(
    pi: usize,
    prog: &LirProgram,
    schedule: &Schedule,
    view: &RegView,
    state_reg: &[BTreeMap<StateId, Reg>],
    cfu_tables: &[[u16; 16]],
    mem_base: &BTreeMap<u32, (usize, u16)>,
) -> (Vec<Instruction>, CoreBreakdown) {
    let p = &prog.processes[pi];
    let slots = &schedule.slots[pi];
    let body_len = schedule.body_len[pi];
    let reg = |v: VReg| -> Reg { view.get(v) };
    let mut body = vec![Instruction::Nop; body_len];
    let mut breakdown = CoreBreakdown::default();

    // A commit is elided iff src's register IS the state's home register
    // (kept in lockstep with coalescing by sharing the view).
    for (t, slot) in slots.iter().enumerate() {
        let Some(i) = *slot else { continue };
        let instr = &p.instrs[i];
        let a = |k: usize| reg(instr.args[k]);
        match &instr.op {
            LirOp::Const(_) => unreachable!("constants are hoisted"),
            LirOp::Alu(op) => {
                body[t] = Instruction::Alu {
                    op: *op,
                    rd: reg(instr.dest.unwrap()),
                    rs1: a(0),
                    rs2: a(1),
                };
                breakdown.compute += 1;
            }
            LirOp::AddCarry => {
                body[t] = Instruction::AddCarry {
                    rd: reg(instr.dest.unwrap()),
                    rs1: a(0),
                    rs2: a(1),
                    rs_carry: a(2),
                };
                breakdown.compute += 1;
            }
            LirOp::SubBorrow => {
                body[t] = Instruction::SubBorrow {
                    rd: reg(instr.dest.unwrap()),
                    rs1: a(0),
                    rs2: a(1),
                    rs_borrow: a(2),
                };
                breakdown.compute += 1;
            }
            LirOp::Mux => {
                body[t] = Instruction::Mux {
                    rd: reg(instr.dest.unwrap()),
                    rs_sel: a(0),
                    rs1: a(1),
                    rs2: a(2),
                };
                breakdown.compute += 1;
            }
            LirOp::Slice { offset, width } => {
                body[t] = Instruction::Slice {
                    rd: reg(instr.dest.unwrap()),
                    rs: a(0),
                    offset: *offset,
                    width: *width,
                };
                breakdown.compute += 1;
            }
            LirOp::Custom { table } => {
                let func = cfu_tables.iter().position(|t2| t2 == table).unwrap();
                let mut rs = [Reg::ZERO; 4];
                for (k, &arg) in instr.args.iter().enumerate() {
                    rs[k] = reg(arg);
                }
                body[t] = Instruction::Custom {
                    rd: reg(instr.dest.unwrap()),
                    func: func as u8,
                    rs,
                };
                breakdown.compute += 1;
                breakdown.custom += 1;
            }
            LirOp::LocalLoad { mem, word_offset } => {
                let (_, base) = mem_base[&mem.0];
                body[t] = Instruction::LocalLoad {
                    rd: reg(instr.dest.unwrap()),
                    rs_addr: a(0),
                    base: base + word_offset,
                };
                breakdown.compute += 1;
            }
            LirOp::LocalStore { mem, word_offset } => {
                let (_, base) = mem_base[&mem.0];
                body[t] = Instruction::Predicate { rs: a(2) };
                body[t + 1] = Instruction::LocalStore {
                    rs_data: a(0),
                    rs_addr: a(1),
                    base: base + word_offset,
                };
                breakdown.compute += 2;
            }
            LirOp::GlobalLoad { .. } => {
                body[t] = Instruction::GlobalLoad {
                    rd: reg(instr.dest.unwrap()),
                    rs_addr: [a(0), a(1), a(2)],
                };
                breakdown.compute += 1;
            }
            LirOp::GlobalStore { .. } => {
                body[t] = Instruction::Predicate { rs: a(4) };
                body[t + 1] = Instruction::GlobalStore {
                    rs_data: a(0),
                    rs_addr: [a(1), a(2), a(3)],
                };
                breakdown.compute += 2;
            }
            LirOp::Expect { eid } => {
                body[t] = Instruction::Expect {
                    rs1: a(0),
                    rs2: a(1),
                    eid: *eid,
                };
                breakdown.compute += 1;
            }
            LirOp::CommitLocal { state } => {
                let home = state_reg[pi][state];
                let src = reg(instr.args[0]);
                if src != home {
                    body[t] = Instruction::Alu {
                        op: AluOp::Or,
                        rd: home,
                        rs1: src,
                        rs2: Reg::ZERO,
                    };
                    breakdown.compute += 1;
                }
            }
            LirOp::Send { state, to_process } => {
                let target = schedule.core_of_process[*to_process];
                let rd_remote = state_reg[*to_process][state];
                body[t] = Instruction::Send {
                    target,
                    rd_remote,
                    rs: a(0),
                };
                breakdown.sends += 1;
            }
        }
    }
    (body, breakdown)
}
