//! Width legalization: netlist assembly → 16-bit lower assembly (§6 step
//! "lower").
//!
//! Every `w`-bit net becomes `ceil(w/16)` virtual registers. Wide arithmetic
//! lowers to ripple chains through the register file's carry bits
//! (`AddCarry`/`SubBorrow`), wide comparisons to word-wise compare/select
//! chains, dynamic shifts to mux ladders over constant shifts (a barrel
//! shifter in software), and multiplications to `Mul`/`Mulh` partial
//! products. RTL memories map to scratchpad regions (or DRAM when they
//! exceed the scratchpad) with explicit address arithmetic.
//!
//! The result is one *monolithic* process, exactly as in the paper; the
//! partitioner splits it afterwards.
//!
//! Invariant maintained throughout: the unused high bits of every value's
//! top word are zero ("normalized"), mirroring `Bits::normalize`.

use std::collections::HashMap;

use manticore_isa::AluOp;
use manticore_netlist::{CellOp, NetId, Netlist};

use crate::error::CompileError;
use crate::lir::{
    LMemId, LirExceptionKind, LirInstr, LirOp, LirProgram, MemInfo, MemPlacement, Process, StateId,
    StateWord, VReg,
};

/// Number of 16-bit words for a bit width.
pub fn nwords(width: usize) -> usize {
    width.div_ceil(16)
}

/// Lowers an optimized netlist into a monolithic single-process
/// [`LirProgram`].
///
/// # Errors
///
/// Returns [`CompileError::UnsupportedInput`] if the design has primary
/// inputs (Manticore runs closed, self-driving test harnesses, §7.5).
pub fn lower(netlist: &Netlist, scratch_words: usize) -> Result<LirProgram, CompileError> {
    if let Some((name, _)) = netlist.inputs().first() {
        return Err(CompileError::UnsupportedInput { name: name.clone() });
    }
    let mut lw = Lowerer::new(netlist, scratch_words);
    lw.run()?;
    Ok(lw.finish())
}

struct Lowerer<'a> {
    netlist: &'a Netlist,
    proc: Process,
    states: Vec<StateWord>,
    mems: Vec<MemInfo>,
    exceptions: Vec<LirExceptionKind>,
    /// Lowered words per net.
    net_words: HashMap<NetId, Vec<VReg>>,
    /// Pooled constants.
    consts: HashMap<u16, VReg>,
    /// State ids per RTL register (word order).
    reg_states: Vec<Vec<StateId>>,
    /// Cached per-memory `(word_addr, in_range)` for each address net, so a
    /// read and write using the same address share the address arithmetic.
    addr_cache: HashMap<(u32, NetId), (Vec<VReg>, Option<VReg>)>,
}

impl<'a> Lowerer<'a> {
    fn new(netlist: &'a Netlist, scratch_words: usize) -> Self {
        let mut states = Vec::new();
        let mut reg_states = Vec::new();
        for (ri, r) in netlist.registers().iter().enumerate() {
            let words = r.init.to_words16();
            let mut ids = Vec::new();
            for (wi, &init) in words.iter().enumerate() {
                ids.push(StateId(states.len() as u32));
                states.push(StateWord {
                    rtl_reg: manticore_netlist::RegId(ri as u32),
                    word: wi,
                    init,
                });
            }
            reg_states.push(ids);
        }
        let mut mems = Vec::new();
        let mut global_base = 0u64;
        for (mi, m) in netlist.memories().iter().enumerate() {
            let wpe = nwords(m.width);
            let total = wpe * m.depth;
            let placement = if total <= scratch_words {
                MemPlacement::Local
            } else {
                let base = global_base;
                global_base += total as u64;
                // Round up to a fresh cache-line-ish boundary.
                global_base = (global_base + 63) & !63;
                MemPlacement::Global { base }
            };
            let mut init_words = Vec::new();
            if !m.init.is_empty() {
                init_words = vec![0u16; total];
                for (ei, v) in m.init.iter().enumerate() {
                    for (wi, w) in v.to_words16().into_iter().enumerate() {
                        init_words[ei * wpe + wi] = w;
                    }
                }
            }
            mems.push(MemInfo {
                rtl_mem: manticore_netlist::MemoryId(mi as u32),
                words_per_entry: wpe,
                depth: m.depth,
                placement,
                init_words,
            });
        }
        Lowerer {
            netlist,
            proc: Process::default(),
            states,
            mems,
            exceptions: Vec::new(),
            net_words: HashMap::new(),
            consts: HashMap::new(),
            reg_states,
            addr_cache: HashMap::new(),
        }
    }

    fn finish(mut self) -> LirProgram {
        self.proc.is_privileged = self.proc.instrs.iter().any(|i| i.op.is_privileged());
        LirProgram {
            processes: vec![self.proc],
            states: self.states,
            mems: self.mems,
            exceptions: self.exceptions,
        }
    }

    // ------------------------------------------------------------------
    // Emission primitives
    // ------------------------------------------------------------------

    fn emit(&mut self, op: LirOp, args: Vec<VReg>) -> VReg {
        let d = self.proc.fresh();
        self.proc.instrs.push(LirInstr {
            dest: Some(d),
            op,
            args,
        });
        d
    }

    fn emit0(&mut self, op: LirOp, args: Vec<VReg>) {
        self.proc.instrs.push(LirInstr {
            dest: None,
            op,
            args,
        });
    }

    fn konst(&mut self, v: u16) -> VReg {
        if let Some(&r) = self.consts.get(&v) {
            return r;
        }
        let d = self.proc.fresh();
        self.proc.instrs.push(LirInstr {
            dest: Some(d),
            op: LirOp::Const(v),
            args: vec![],
        });
        self.consts.insert(v, d);
        d
    }

    fn zero(&mut self) -> VReg {
        self.konst(0)
    }

    fn alu(&mut self, op: AluOp, a: VReg, b: VReg) -> VReg {
        self.emit(LirOp::Alu(op), vec![a, b])
    }

    fn mux1(&mut self, sel: VReg, a: VReg, b: VReg) -> VReg {
        self.emit(LirOp::Mux, vec![sel, a, b])
    }

    /// Masks the top word when `width % 16 != 0` (restores normalization).
    fn normalize(&mut self, mut words: Vec<VReg>, width: usize) -> Vec<VReg> {
        let rem = width % 16;
        if rem != 0 {
            let mask = self.konst(((1u32 << rem) - 1) as u16);
            let top = words.len() - 1;
            words[top] = self.alu(AluOp::And, words[top], mask);
        }
        words
    }

    /// Sign-extends a partial top word to a full 16-bit word
    /// (`Sll` then `Sra` by `16 - rem`).
    fn sext_in_word(&mut self, w: VReg, rem: usize) -> VReg {
        if rem == 0 || rem == 16 {
            return w;
        }
        let sh = self.konst((16 - rem) as u16);
        let t = self.alu(AluOp::Sll, w, sh);
        self.alu(AluOp::Sra, t, sh)
    }

    // ------------------------------------------------------------------
    // Word-vector operations
    // ------------------------------------------------------------------

    fn add_words(&mut self, a: &[VReg], b: &[VReg], width: usize) -> Vec<VReg> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let w = if i == 0 {
                self.alu(AluOp::Add, a[0], b[0])
            } else {
                let prev = out[i - 1];
                self.emit(LirOp::AddCarry, vec![a[i], b[i], prev])
            };
            out.push(w);
        }
        self.normalize(out, width)
    }

    fn sub_words(&mut self, a: &[VReg], b: &[VReg], width: usize) -> Vec<VReg> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let w = if i == 0 {
                self.alu(AluOp::Sub, a[0], b[0])
            } else {
                let prev = out[i - 1];
                self.emit(LirOp::SubBorrow, vec![a[i], b[i], prev])
            };
            out.push(w);
        }
        self.normalize(out, width)
    }

    /// Adds `v` into column `k` of the accumulator, rippling the carry up.
    fn add_into(&mut self, acc: &mut [VReg], k: usize, v: VReg) {
        let t = self.alu(AluOp::Add, acc[k], v);
        acc[k] = t;
        let mut carry = t;
        let z = self.zero();
        for slot in acc.iter_mut().skip(k + 1) {
            let t2 = self.emit(LirOp::AddCarry, vec![*slot, z, carry]);
            *slot = t2;
            carry = t2;
        }
    }

    fn mul_words(&mut self, a: &[VReg], b: &[VReg], width: usize) -> Vec<VReg> {
        let n = a.len();
        let z = self.zero();
        let mut acc = vec![z; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().take(n - i).enumerate() {
                let k = i + j;
                let lo = self.alu(AluOp::Mul, ai, bj);
                self.add_into(&mut acc, k, lo);
                if k + 1 < n {
                    let hi = self.alu(AluOp::Mulh, ai, bj);
                    self.add_into(&mut acc, k + 1, hi);
                }
            }
        }
        self.normalize(acc, width)
    }

    fn logic_words(&mut self, op: AluOp, a: &[VReg], b: &[VReg]) -> Vec<VReg> {
        (0..a.len()).map(|i| self.alu(op, a[i], b[i])).collect()
    }

    fn not_words(&mut self, a: &[VReg], width: usize) -> Vec<VReg> {
        let mut out = Vec::with_capacity(a.len());
        for (i, &w) in a.iter().enumerate() {
            let mask = if i == a.len() - 1 && !width.is_multiple_of(16) {
                ((1u32 << (width % 16)) - 1) as u16
            } else {
                0xffff
            };
            let m = self.konst(mask);
            out.push(self.alu(AluOp::Xor, w, m));
        }
        out
    }

    fn eq_words(&mut self, a: &[VReg], b: &[VReg]) -> VReg {
        let mut acc: Option<VReg> = None;
        for i in 0..a.len() {
            let e = self.alu(AluOp::Seq, a[i], b[i]);
            acc = Some(match acc {
                None => e,
                Some(p) => self.alu(AluOp::And, p, e),
            });
        }
        acc.expect("non-empty word vector")
    }

    fn ult_words(&mut self, a: &[VReg], b: &[VReg]) -> VReg {
        let mut lt = self.alu(AluOp::Sltu, a[0], b[0]);
        for i in 1..a.len() {
            let wlt = self.alu(AluOp::Sltu, a[i], b[i]);
            let weq = self.alu(AluOp::Seq, a[i], b[i]);
            lt = self.mux1(weq, lt, wlt);
        }
        lt
    }

    fn slt_words(&mut self, a: &[VReg], b: &[VReg], width: usize) -> VReg {
        let top = a.len() - 1;
        let rem = width % 16;
        let at = self.sext_in_word(a[top], rem);
        let bt = self.sext_in_word(b[top], rem);
        let top_lt = self.alu(AluOp::Slts, at, bt);
        if a.len() == 1 {
            return top_lt;
        }
        let top_eq = self.alu(AluOp::Seq, a[top], b[top]);
        let low_lt = self.ult_words(&a[..top], &b[..top]);
        self.mux1(top_eq, low_lt, top_lt)
    }

    fn shl_const_words(&mut self, a: &[VReg], k: usize, width: usize) -> Vec<VReg> {
        let n = a.len();
        let z = self.zero();
        if k >= width {
            return vec![z; n];
        }
        let s = k / 16;
        let r = k % 16;
        let mut out = Vec::with_capacity(n);
        for o in 0..n {
            let w = if o < s {
                z
            } else if r == 0 {
                a[o - s]
            } else {
                let rc = self.konst(r as u16);
                let hi = self.alu(AluOp::Sll, a[o - s], rc);
                if o > s {
                    let rc2 = self.konst((16 - r) as u16);
                    let lo = self.alu(AluOp::Srl, a[o - s - 1], rc2);
                    self.alu(AluOp::Or, hi, lo)
                } else {
                    hi
                }
            };
            out.push(w);
        }
        self.normalize(out, width)
    }

    fn shr_const_words(&mut self, a: &[VReg], k: usize, width: usize) -> Vec<VReg> {
        let n = a.len();
        let z = self.zero();
        if k >= width {
            return vec![z; n];
        }
        let s = k / 16;
        let r = k % 16;
        let mut out = Vec::with_capacity(n);
        for o in 0..n {
            let w = if o + s >= n {
                z
            } else if r == 0 {
                a[o + s]
            } else {
                let rc = self.konst(r as u16);
                let lo = self.alu(AluOp::Srl, a[o + s], rc);
                if o + s + 1 < n {
                    let rc2 = self.konst((16 - r) as u16);
                    let hi = self.alu(AluOp::Sll, a[o + s + 1], rc2);
                    self.alu(AluOp::Or, lo, hi)
                } else {
                    lo
                }
            };
            out.push(w);
        }
        // A logical right shift cannot dirty the top word.
        out
    }

    /// Sign word (0x0000 or 0xffff) of a value.
    fn sign_word(&mut self, a: &[VReg], width: usize) -> VReg {
        let rem = width % 16;
        let top = self.sext_in_word(a[a.len() - 1], rem);
        let c15 = self.konst(15);
        self.alu(AluOp::Sra, top, c15)
    }

    fn ashr_const_words(&mut self, a: &[VReg], k: usize, width: usize) -> Vec<VReg> {
        let n = a.len();
        let sign = self.sign_word(a, width);
        if k >= width {
            return self.normalize(vec![sign; n], width);
        }
        let rem = width % 16;
        // Value with the top word sign-extended to a full 16 bits.
        let mut full = a.to_vec();
        let t = full.len() - 1;
        full[t] = self.sext_in_word(full[t], rem);
        let s = k / 16;
        let r = k % 16;
        let get = |i: usize| if i < n { full[i] } else { sign };
        let mut out = Vec::with_capacity(n);
        for o in 0..n {
            let w = if r == 0 {
                get(o + s)
            } else {
                let rc = self.konst(r as u16);
                let lo = self.alu(AluOp::Srl, get(o + s), rc);
                let rc2 = self.konst((16 - r) as u16);
                let hi = self.alu(AluOp::Sll, get(o + s + 1), rc2);
                self.alu(AluOp::Or, lo, hi)
            };
            out.push(w);
        }
        self.normalize(out, width)
    }

    fn mux_words(&mut self, sel: VReg, a: &[VReg], b: &[VReg]) -> Vec<VReg> {
        (0..a.len())
            .map(|i| self.emit(LirOp::Mux, vec![sel, a[i], b[i]]))
            .collect()
    }

    /// Dynamic shift: barrel of constant-shift stages selected by the
    /// amount's bits, plus a saturation mux for amount bits ≥ log2(width).
    fn shift_dyn_words(
        &mut self,
        kind: ShiftKind,
        a: &[VReg],
        amt: &[VReg],
        width: usize,
        amt_width: usize,
    ) -> Vec<VReg> {
        // Bits 0..k select barrel stages; k = smallest with 2^k >= width.
        let k = (0..).find(|&k| (1usize << k) >= width).unwrap();
        let mut x = a.to_vec();
        for bit in 0..k.min(amt_width) {
            let word = bit / 16;
            let cond = self.emit(
                LirOp::Slice {
                    offset: (bit % 16) as u8,
                    width: 1,
                },
                vec![amt[word]],
            );
            let shifted = match kind {
                ShiftKind::Shl => self.shl_const_words(&x, 1 << bit, width),
                ShiftKind::Shr => self.shr_const_words(&x, 1 << bit, width),
                ShiftKind::Ashr => self.ashr_const_words(&x, 1 << bit, width),
            };
            x = self.mux_words(cond, &shifted, &x);
        }
        // Any amount bit >= k set: the result saturates (zero or sign fill).
        if amt_width > k {
            let mut any: Option<VReg> = None;
            for (word, &amt_word) in amt.iter().enumerate() {
                let lo_bit = word * 16;
                let hi_bit = ((word + 1) * 16).min(amt_width);
                if hi_bit <= k {
                    continue;
                }
                let from = k.max(lo_bit) - lo_bit;
                let high = if from == 0 {
                    amt_word
                } else {
                    self.emit(
                        LirOp::Slice {
                            offset: from as u8,
                            width: (hi_bit - lo_bit - from) as u8,
                        },
                        vec![amt_word],
                    )
                };
                any = Some(match any {
                    None => high,
                    Some(p) => self.alu(AluOp::Or, p, high),
                });
            }
            if let Some(any) = any {
                let fill = match kind {
                    ShiftKind::Shl | ShiftKind::Shr => {
                        let z = self.zero();
                        vec![z; a.len()]
                    }
                    ShiftKind::Ashr => {
                        let s = self.sign_word(a, width);
                        let v = vec![s; a.len()];
                        self.normalize(v, width)
                    }
                };
                x = self.mux_words(any, &fill, &x);
            }
        }
        x
    }

    fn slice_words(&mut self, a: &[VReg], offset: usize, out_width: usize) -> Vec<VReg> {
        let n_out = nwords(out_width);
        let z = self.zero();
        let mut out = Vec::with_capacity(n_out);
        for o in 0..n_out {
            let bitpos = offset + o * 16;
            let s = bitpos / 16;
            let r = bitpos % 16;
            let w = if s >= a.len() {
                z
            } else if r == 0 {
                a[s]
            } else {
                let rc = self.konst(r as u16);
                let lo = self.alu(AluOp::Srl, a[s], rc);
                if s + 1 < a.len() {
                    let rc2 = self.konst((16 - r) as u16);
                    let hi = self.alu(AluOp::Sll, a[s + 1], rc2);
                    self.alu(AluOp::Or, lo, hi)
                } else {
                    lo
                }
            };
            out.push(w);
        }
        self.normalize(out, out_width)
    }

    fn concat_words(&mut self, lo: &[VReg], lo_w: usize, hi: &[VReg], hi_w: usize) -> Vec<VReg> {
        let out_w = lo_w + hi_w;
        let n_out = nwords(out_w);
        let r = lo_w % 16;
        let mut out = Vec::with_capacity(n_out);
        if r == 0 {
            out.extend_from_slice(lo);
            out.extend_from_slice(hi);
        } else {
            out.extend_from_slice(&lo[..lo.len() - 1]);
            // Top word of lo merged with the bottom bits of hi[0].
            let rc = self.konst(r as u16);
            let first_hi = self.alu(AluOp::Sll, hi[0], rc);
            out.push(self.alu(AluOp::Or, lo[lo.len() - 1], first_hi));
            // Remaining words combine consecutive hi words.
            let rc2 = self.konst((16 - r) as u16);
            let mut t = 0;
            while out.len() < n_out {
                let lo_part = self.alu(AluOp::Srl, hi[t], rc2);
                let w = if t + 1 < hi.len() {
                    let hi_part = self.alu(AluOp::Sll, hi[t + 1], rc);
                    self.alu(AluOp::Or, lo_part, hi_part)
                } else {
                    lo_part
                };
                out.push(w);
                t += 1;
            }
        }
        self.normalize(out, out_w)
    }

    fn zext_words(&mut self, a: &[VReg], to_width: usize) -> Vec<VReg> {
        let mut out = a.to_vec();
        let z = self.zero();
        while out.len() < nwords(to_width) {
            out.push(z);
        }
        out
    }

    fn sext_words(&mut self, a: &[VReg], from_width: usize, to_width: usize) -> Vec<VReg> {
        let rem = from_width % 16;
        let mut out = a.to_vec();
        let t = out.len() - 1;
        if rem != 0 {
            out[t] = self.sext_in_word(out[t], rem);
        }
        let sign = self.sign_word(a, from_width);
        while out.len() < nwords(to_width) {
            out.push(sign);
        }
        self.normalize(out, to_width)
    }

    fn red_or_words(&mut self, a: &[VReg]) -> VReg {
        let mut acc = a[0];
        for &w in &a[1..] {
            acc = self.alu(AluOp::Or, acc, w);
        }
        let z = self.zero();
        self.alu(AluOp::Sltu, z, acc)
    }

    fn red_and_words(&mut self, a: &[VReg], width: usize) -> VReg {
        let mut acc: Option<VReg> = None;
        for (i, &w) in a.iter().enumerate() {
            let mask: u16 = if i == a.len() - 1 && !width.is_multiple_of(16) {
                ((1u32 << (width % 16)) - 1) as u16
            } else {
                0xffff
            };
            let m = self.konst(mask);
            let e = self.alu(AluOp::Seq, w, m);
            acc = Some(match acc {
                None => e,
                Some(p) => self.alu(AluOp::And, p, e),
            });
        }
        acc.expect("non-empty word vector")
    }

    fn red_xor_words(&mut self, a: &[VReg]) -> VReg {
        let mut acc = a[0];
        for &w in &a[1..] {
            acc = self.alu(AluOp::Xor, acc, w);
        }
        for sh in [8u16, 4, 2, 1] {
            let c = self.konst(sh);
            let t = self.alu(AluOp::Srl, acc, c);
            acc = self.alu(AluOp::Xor, acc, t);
        }
        let one = self.konst(1);
        self.alu(AluOp::And, acc, one)
    }

    /// Multiplies a 16-bit word index by a small constant via shift/add.
    fn mul_const16(&mut self, v: VReg, k: usize) -> VReg {
        match k {
            0 => self.zero(),
            1 => v,
            _ => {
                let mut acc: Option<VReg> = None;
                for bit in 0..16 {
                    if k & (1 << bit) != 0 {
                        let term = if bit == 0 {
                            v
                        } else {
                            let c = self.konst(bit as u16);
                            self.alu(AluOp::Sll, v, c)
                        };
                        acc = Some(match acc {
                            None => term,
                            Some(p) => self.alu(AluOp::Add, p, term),
                        });
                    }
                }
                acc.unwrap()
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory lowering
    // ------------------------------------------------------------------

    /// Computes `(word address vregs, optional in-range condition)` for an
    /// access to memory `mid` with the given address net.
    fn mem_addr(&mut self, mid: LMemId, addr_net: NetId) -> (Vec<VReg>, Option<VReg>) {
        if let Some(cached) = self.addr_cache.get(&(mid.0, addr_net)) {
            return cached.clone();
        }
        let info = self.mems[mid.index()].clone();
        let addr_width = self.netlist.net(addr_net).width;
        let addr_words = self.net_words[&addr_net].clone();
        // Out-of-range guard, needed only when the address can express an
        // index >= depth.
        let guard = if addr_width < 64 && (1u64 << addr_width) <= info.depth as u64 {
            None
        } else {
            // depth as a constant of the address width.
            let depth_words: Vec<VReg> = (0..addr_words.len())
                .map(|i| {
                    let w = ((info.depth as u64) >> (16 * i)) as u16;
                    self.konst(w)
                })
                .collect();
            Some(self.ult_words(&addr_words, &depth_words))
        };
        let word_addr = match info.placement {
            MemPlacement::Local => {
                vec![self.mul_const16(addr_words[0], info.words_per_entry)]
            }
            MemPlacement::Global { .. } => {
                // 48-bit word index = zext(addr) * words_per_entry.
                let idx = self.zext_words(&addr_words, 48);
                let idx = &idx[..3];
                let stride_words: Vec<VReg> = {
                    let k = info.words_per_entry as u64;
                    (0..3).map(|i| self.konst((k >> (16 * i)) as u16)).collect()
                };
                self.mul_words(idx, &stride_words, 48)
            }
        };
        self.addr_cache
            .insert((mid.0, addr_net), (word_addr.clone(), guard));
        (word_addr, guard)
    }

    fn lower_mem_read(&mut self, mid: LMemId, addr_net: NetId, width: usize) -> Vec<VReg> {
        let info = self.mems[mid.index()].clone();
        let (word_addr, guard) = self.mem_addr(mid, addr_net);
        let mut out = Vec::with_capacity(info.words_per_entry);
        match info.placement {
            MemPlacement::Local => {
                for j in 0..info.words_per_entry {
                    out.push(self.emit(
                        LirOp::LocalLoad {
                            mem: mid,
                            word_offset: j as u16,
                        },
                        vec![word_addr[0]],
                    ));
                }
            }
            MemPlacement::Global { base } => {
                for j in 0..info.words_per_entry {
                    // addr3 = word_index + (base + j)
                    let c: Vec<VReg> = (0..3)
                        .map(|i| self.konst(((base + j as u64) >> (16 * i)) as u16))
                        .collect();
                    let addr3 = self.add_words(&word_addr, &c, 48);
                    out.push(self.emit(LirOp::GlobalLoad { mem: mid }, addr3));
                }
            }
        }
        if let Some(g) = guard {
            let z = self.zero();
            let zs = vec![z; out.len()];
            out = self.mux_words(g, &out.clone(), &zs);
        }
        let _ = width;
        out
    }

    fn lower_mem_write(&mut self, mid: LMemId, addr: NetId, data: NetId, en: NetId) {
        let info = self.mems[mid.index()].clone();
        let (word_addr, guard) = self.mem_addr(mid, addr);
        let data_words = self.net_words[&data].clone();
        let mut en_v = self.net_words[&en][0];
        if let Some(g) = guard {
            en_v = self.alu(AluOp::And, en_v, g);
        }
        match info.placement {
            MemPlacement::Local => {
                for (j, &dw) in data_words.iter().enumerate() {
                    self.emit0(
                        LirOp::LocalStore {
                            mem: mid,
                            word_offset: j as u16,
                        },
                        vec![dw, word_addr[0], en_v],
                    );
                }
            }
            MemPlacement::Global { base } => {
                for (j, &dw) in data_words.iter().enumerate() {
                    let c: Vec<VReg> = (0..3)
                        .map(|i| self.konst(((base + j as u64) >> (16 * i)) as u16))
                        .collect();
                    let addr3 = self.add_words(&word_addr, &c, 48);
                    self.emit0(
                        LirOp::GlobalStore { mem: mid },
                        vec![dw, addr3[0], addr3[1], addr3[2], en_v],
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Driver
    // ------------------------------------------------------------------

    fn run(&mut self) -> Result<(), CompileError> {
        // Bind register current values to live-in vregs.
        for (ri, ids) in self.reg_states.clone().into_iter().enumerate() {
            let q = self.netlist.registers()[ri].q;
            let mut words = Vec::with_capacity(ids.len());
            for sid in ids {
                let v = self.proc.fresh();
                self.proc.state_reads.insert(sid, v);
                words.push(v);
            }
            self.net_words.insert(q, words);
        }

        // Lower all nets in topological order.
        let order =
            manticore_netlist::topo::topological_order(self.netlist).expect("acyclic netlist");
        for id in order {
            if self.net_words.contains_key(&id) {
                continue; // RegQ nets pre-bound
            }
            let words = self.lower_net(id)?;
            self.net_words.insert(id, words);
        }

        // Sinks: register commits.
        for (ri, ids) in self.reg_states.clone().into_iter().enumerate() {
            let next = self.netlist.registers()[ri].next;
            let next_words = self.net_words[&next].clone();
            for (sid, &w) in ids.iter().zip(next_words.iter()) {
                self.emit0(LirOp::CommitLocal { state: *sid }, vec![w]);
            }
        }
        // Memory write ports.
        for (mi, m) in self.netlist.memories().iter().enumerate() {
            for w in m.writes.clone() {
                self.lower_mem_write(LMemId(mi as u32), w.addr, w.data, w.en);
            }
        }
        // Testbench cells → Expect instructions + exception table.
        let one = self.konst(1);
        let zero = self.zero();
        for d in self.netlist.displays() {
            let eid = self.exceptions.len() as u16;
            let mut arg_vregs = Vec::new();
            let mut args = vec![self.net_words[&d.cond][0], zero];
            for a in &d.args {
                let words = self.net_words[a].clone();
                args.extend(&words);
                arg_vregs.push((words, self.netlist.net(*a).width));
            }
            self.exceptions.push(LirExceptionKind::Display {
                format: d.format.clone(),
                args: arg_vregs,
            });
            self.emit0(LirOp::Expect { eid }, args);
        }
        for e in self.netlist.expects() {
            let eid = self.exceptions.len() as u16;
            self.exceptions.push(LirExceptionKind::AssertFail {
                message: e.message.clone(),
            });
            let cond = self.net_words[&e.cond][0];
            self.emit0(LirOp::Expect { eid }, vec![cond, one]);
        }
        for f in self.netlist.finishes() {
            let eid = self.exceptions.len() as u16;
            self.exceptions.push(LirExceptionKind::Finish);
            let cond = self.net_words[&f.cond][0];
            self.emit0(LirOp::Expect { eid }, vec![cond, zero]);
        }
        Ok(())
    }

    fn lower_net(&mut self, id: NetId) -> Result<Vec<VReg>, CompileError> {
        let net = self.netlist.net(id).clone();
        let w = net.width;
        let words = |lw: &Self, i: usize| lw.net_words[&net.args[i]].clone();
        Ok(match net.op {
            CellOp::Const(ref c) => {
                let ws = c.to_words16();
                ws.into_iter().map(|v| self.konst(v)).collect()
            }
            CellOp::Input => {
                let name = self
                    .netlist
                    .inputs()
                    .iter()
                    .find(|(_, nid)| *nid == id)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_default();
                return Err(CompileError::UnsupportedInput { name });
            }
            CellOp::RegQ(_) => unreachable!("RegQ nets are pre-bound"),
            CellOp::MemRead(m) => {
                let mid = LMemId(m.0);
                self.lower_mem_read(mid, net.args[0], w)
            }
            CellOp::And => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.logic_words(AluOp::And, &a, &b)
            }
            CellOp::Or => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.logic_words(AluOp::Or, &a, &b)
            }
            CellOp::Xor => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.logic_words(AluOp::Xor, &a, &b)
            }
            CellOp::Not => {
                let a = words(self, 0);
                self.not_words(&a, w)
            }
            CellOp::Add => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.add_words(&a, &b, w)
            }
            CellOp::Sub => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.sub_words(&a, &b, w)
            }
            CellOp::Mul => {
                let (a, b) = (words(self, 0), words(self, 1));
                self.mul_words(&a, &b, w)
            }
            CellOp::Eq => {
                let (a, b) = (words(self, 0), words(self, 1));
                vec![self.eq_words(&a, &b)]
            }
            CellOp::Ult => {
                let (a, b) = (words(self, 0), words(self, 1));
                vec![self.ult_words(&a, &b)]
            }
            CellOp::Slt => {
                let (a, b) = (words(self, 0), words(self, 1));
                let aw = self.netlist.net(net.args[0]).width;
                vec![self.slt_words(&a, &b, aw)]
            }
            CellOp::Shl | CellOp::Shr | CellOp::Ashr => {
                let kind = match net.op {
                    CellOp::Shl => ShiftKind::Shl,
                    CellOp::Shr => ShiftKind::Shr,
                    _ => ShiftKind::Ashr,
                };
                let a = words(self, 0);
                // Constant amounts take the cheap path.
                if let CellOp::Const(c) = &self.netlist.net(net.args[1]).op {
                    let k = c.to_u128().min(usize::MAX as u128) as usize;
                    match kind {
                        ShiftKind::Shl => self.shl_const_words(&a, k, w),
                        ShiftKind::Shr => self.shr_const_words(&a, k, w),
                        ShiftKind::Ashr => self.ashr_const_words(&a, k, w),
                    }
                } else {
                    let amt = words(self, 1);
                    let amt_w = self.netlist.net(net.args[1]).width;
                    self.shift_dyn_words(kind, &a, &amt, w, amt_w)
                }
            }
            CellOp::Slice { offset } => {
                let a = words(self, 0);
                self.slice_words(&a, offset, w)
            }
            CellOp::Concat => {
                let (lo, hi) = (words(self, 0), words(self, 1));
                let lo_w = self.netlist.net(net.args[0]).width;
                let hi_w = self.netlist.net(net.args[1]).width;
                self.concat_words(&lo, lo_w, &hi, hi_w)
            }
            CellOp::ZExt => {
                let a = words(self, 0);
                self.zext_words(&a, w)
            }
            CellOp::SExt => {
                let a = words(self, 0);
                let from_w = self.netlist.net(net.args[0]).width;
                self.sext_words(&a, from_w, w)
            }
            CellOp::Mux => {
                let sel = self.net_words[&net.args[0]][0];
                let (a, b) = (words(self, 1), words(self, 2));
                self.mux_words(sel, &a, &b)
            }
            CellOp::RedOr => {
                let a = words(self, 0);
                vec![self.red_or_words(&a)]
            }
            CellOp::RedAnd => {
                let a = words(self, 0);
                let aw = self.netlist.net(net.args[0]).width;
                vec![self.red_and_words(&a, aw)]
            }
            CellOp::RedXor => {
                let a = words(self, 0);
                vec![self.red_xor_words(&a)]
            }
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Shl,
    Shr,
    Ashr,
}
