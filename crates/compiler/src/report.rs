//! Compilation reports: pass timings, VCPL, per-core breakdowns — the raw
//! material for the paper's Fig. 7, Fig. 9, Fig. 10, Fig. 13, and Table 8.

use std::time::Duration;

use manticore_isa::{CoreId, Reg};
use manticore_netlist::{MemoryId, RegId};

/// Where an RTL register's words live on the machine.
#[derive(Debug, Clone)]
pub struct RegLocation {
    /// The RTL register.
    pub rtl_reg: RegId,
    /// Its bit width.
    pub width: usize,
    /// Home `(core, machine register)` of each 16-bit word, LSW first.
    pub words: Vec<(CoreId, Reg)>,
}

/// Where an RTL memory lives on the machine.
#[derive(Debug, Clone)]
pub enum MemLocation {
    /// In a core's scratchpad.
    Local {
        /// The RTL memory.
        rtl_mem: MemoryId,
        /// Owning core.
        core: CoreId,
        /// Base word address in the scratchpad.
        base: u16,
        /// Machine words per RTL entry.
        words_per_entry: usize,
    },
    /// In DRAM behind the privileged cache.
    Global {
        /// The RTL memory.
        rtl_mem: MemoryId,
        /// Base word address in DRAM.
        base: u64,
        /// Machine words per RTL entry.
        words_per_entry: usize,
    },
}

/// Compiler → runtime/test metadata: where RTL state ended up.
#[derive(Debug, Clone, Default)]
pub struct Metadata {
    /// Per RTL register (indexed by `RegId`).
    pub reg_locations: Vec<RegLocation>,
    /// Per RTL memory (indexed by `MemoryId`).
    pub mem_locations: Vec<MemLocation>,
    /// Core each process was placed on.
    pub core_of_process: Vec<CoreId>,
}

/// Instruction mix of one core over a Vcycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreBreakdown {
    /// Compute instructions (ALU, memory, mux, custom, predicates…).
    pub compute: u64,
    /// `Send` instructions.
    pub sends: u64,
    /// Custom-function instructions (subset of `compute`).
    pub custom: u64,
    /// Message SET slots (epilogue).
    pub epilogue: u64,
    /// NOP slots up to the Vcycle length.
    pub nops: u64,
}

impl CoreBreakdown {
    /// Busy (non-NOP) slots.
    pub fn busy(&self) -> u64 {
        self.compute + self.sends + self.epilogue
    }
}

/// Statistics of the maximal split (before merging) — the `|V|`/`|E|`
/// numbers of the paper's Table 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Number of maximal split processes (graph vertices).
    pub vertices: usize,
    /// Number of communicating pairs (graph edges).
    pub edges: usize,
}

/// Per-pass instrumentation recorded by the pass manager: wall time and
/// the IR size the pass left behind (a deterministic compiler output —
/// unlike the timing, it must reproduce exactly across runs and thread
/// counts, and the bench gate compares it exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name, in pipeline order (Fig. 13's bar labels).
    pub name: &'static str,
    /// Wall-clock time of this pass alone.
    pub duration: Duration,
    /// Size of the IR after the pass ran (nets for the netlist pass,
    /// instructions for the rest).
    pub ir_size: usize,
    /// Worker threads the pass ran with (1 for inherently serial passes
    /// and for the whole reference pipeline).
    pub threads: usize,
}

/// The full compilation report.
#[derive(Debug, Clone, Default)]
pub struct CompileReport {
    /// Per-pass instrumentation, in pipeline order (Fig. 13), recorded by
    /// the pass manager around each pass.
    pub passes: Vec<PassStat>,
    /// Worker threads the pipeline ran with (1 = the serial reference
    /// pipeline).
    pub compile_threads: usize,
    /// Virtual critical-path length: machine cycles per RTL cycle. The
    /// simulation rate is `clock / vcpl` (Fig. 7, Table 3).
    pub vcpl: u64,
    /// Cores with a non-empty program.
    pub cores_used: usize,
    /// Processes after merging.
    pub processes: usize,
    /// Split statistics (Table 8's |V| and |E|).
    pub split: SplitStats,
    /// Per-core instruction mix, indexed like
    /// [`Metadata::core_of_process`]'s targets.
    pub per_core: Vec<CoreBreakdown>,
    /// Total `Send` instructions (Table 4).
    pub total_sends: u64,
    /// Total non-NOP instructions over all cores.
    pub total_instructions: u64,
    /// Total custom-function instructions (Fig. 10).
    pub total_custom: u64,
}

impl CompileReport {
    /// The straggler: the core with the most busy slots (its index and
    /// breakdown). Fig. 9 plots this core's compute/send/NOP mix.
    pub fn straggler(&self) -> Option<(usize, CoreBreakdown)> {
        self.per_core
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.busy())
            .map(|(i, b)| (i, *b))
    }

    /// Total compile time across passes.
    pub fn total_time(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }

    /// The pass that took the longest, if any ran.
    pub fn dominant_pass(&self) -> Option<&PassStat> {
        self.passes.iter().max_by_key(|p| p.duration)
    }

    /// The deterministic portion of the report — everything except wall
    /// times and the thread count: per-pass IR sizes, VCPL, placement and
    /// instruction-mix statistics. Two compiles of the same netlist with
    /// the same options must agree on this **exactly**, at any thread
    /// count; the compile-determinism suite enforces it.
    pub fn deterministic_fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for p in &self.passes {
            let _ = write!(s, "{}={};", p.name, p.ir_size);
        }
        let _ = write!(
            s,
            "vcpl={};cores={};procs={};split={}/{};sends={};instrs={};custom={};",
            self.vcpl,
            self.cores_used,
            self.processes,
            self.split.vertices,
            self.split.edges,
            self.total_sends,
            self.total_instructions,
            self.total_custom
        );
        for b in &self.per_core {
            let _ = write!(
                s,
                "[{},{},{},{},{}]",
                b.compute, b.sends, b.custom, b.epilogue, b.nops
            );
        }
        s
    }
}
