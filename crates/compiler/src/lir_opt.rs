//! Lower-assembly optimizations: per-process CSE and DCE (§6 runs a second
//! "optimize" step after lowering and again after custom-function fusion).

use std::collections::HashMap;

use crate::lir::{LirInstr, LirOp, Process, VReg};

/// Common-subexpression elimination over pure ops. Rewrites uses in place;
/// the redundant definitions become dead and fall to [`dce`]. Returns the
/// applied substitution so external references (the exception table's
/// display-argument vregs) can be remapped.
pub fn cse(proc: &mut Process) -> HashMap<VReg, VReg> {
    // (op fingerprint, args) -> canonical dest
    let mut seen: HashMap<(String, Vec<VReg>), VReg> = HashMap::new();
    let mut subst: HashMap<VReg, VReg> = HashMap::new();
    for instr in &mut proc.instrs {
        for a in &mut instr.args {
            if let Some(&r) = subst.get(a) {
                *a = r;
            }
        }
        let pure = matches!(
            instr.op,
            LirOp::Const(_)
                | LirOp::Alu(_)
                | LirOp::AddCarry
                | LirOp::SubBorrow
                | LirOp::Mux
                | LirOp::Slice { .. }
                | LirOp::Custom { .. }
        );
        if !pure {
            continue;
        }
        let Some(dest) = instr.dest else { continue };
        let key = (format!("{:?}", instr.op), instr.args.clone());
        match seen.get(&key) {
            Some(&canon) => {
                subst.insert(dest, canon);
            }
            None => {
                seen.insert(key, dest);
            }
        }
    }
    subst
}

/// Dead-code elimination: keeps instructions transitively needed by the
/// side-effecting roots (stores, commits, sends, expects).
pub fn dce(proc: &mut Process) {
    let n = proc.instrs.len();
    let mut def_of: HashMap<VReg, usize> = HashMap::new();
    for (i, instr) in proc.instrs.iter().enumerate() {
        if let Some(d) = instr.dest {
            def_of.insert(d, i);
        }
    }
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for (i, instr) in proc.instrs.iter().enumerate() {
        let root = matches!(
            instr.op,
            LirOp::LocalStore { .. }
                | LirOp::GlobalStore { .. }
                | LirOp::Expect { .. }
                | LirOp::CommitLocal { .. }
                | LirOp::Send { .. }
        );
        if root {
            live[i] = true;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        for a in &proc.instrs[i].args {
            if let Some(&d) = def_of.get(a) {
                if !live[d] {
                    live[d] = true;
                    stack.push(d);
                }
            }
        }
    }
    let old: Vec<LirInstr> = std::mem::take(&mut proc.instrs);
    proc.instrs = old
        .into_iter()
        .zip(live)
        .filter_map(|(i, l)| l.then_some(i))
        .collect();
    // Live-ins that are no longer referenced can be dropped too: they would
    // otherwise force pointless Sends from their owners.
    let used: std::collections::HashSet<VReg> = proc
        .instrs
        .iter()
        .flat_map(|i| i.args.iter().copied())
        .collect();
    proc.state_reads.retain(|_, v| used.contains(v));
}

/// Runs CSE then DCE on every process, keeping the exception table's
/// display-argument vregs consistent.
pub fn optimize(prog: &mut crate::lir::LirProgram) {
    optimize_threaded(prog, 1);
}

/// [`optimize`], with the per-process work fanned out over `threads`
/// workers. Each process's CSE/DCE is independent; the privileged
/// process's substitution is applied to the exception table afterwards.
/// Bit-identical to the serial run at any thread count.
pub fn optimize_threaded(prog: &mut crate::lir::LirProgram, threads: usize) {
    let priv_idx = prog.processes.iter().position(|p| p.is_privileged);
    let substs = manticore_util::parallel_map_mut(&mut prog.processes, threads, |_, p| {
        let subst = cse(p);
        dce(p);
        subst
    });
    if let Some(pi) = priv_idx {
        let subst = &substs[pi];
        for e in &mut prog.exceptions {
            if let crate::lir::LirExceptionKind::Display { args, .. } = e {
                for (regs, _) in args {
                    for r in regs {
                        if let Some(&s) = subst.get(r) {
                            *r = s;
                        }
                    }
                }
            }
        }
    }
}
