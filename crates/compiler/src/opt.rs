//! Netlist-level optimizations: constant folding, common-subexpression
//! elimination, and dead-code elimination (§6, backend step "optimize").
//!
//! The passes rebuild the netlist through [`NetlistBuilder`], which re-runs
//! all structural validation. Dead registers and memories (those whose
//! values can never reach a testbench cell, output, or live memory) are
//! removed entirely.

use std::collections::HashMap;

use manticore_bits::Bits;
use manticore_netlist::{CellOp, MemHandle, NetId, Netlist, NetlistBuilder, RegHandle};

/// Runs constant folding + CSE + DCE to a fixpoint (bounded rounds).
pub fn optimize(netlist: &Netlist) -> Netlist {
    let mut current = optimize_once(netlist);
    for _ in 0..4 {
        let next = optimize_once(&current);
        if next.nets().len() == current.nets().len() {
            return next;
        }
        current = next;
    }
    current
}

/// Liveness over nets, registers, and memories: a register is live if its
/// current value can reach a root (testbench cell, named output, or a write
/// to a live memory); similarly for memories through their read ports.
fn liveness(netlist: &Netlist) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    let nnets = netlist.nets().len();
    let mut net_live = vec![false; nnets];
    let mut reg_live = vec![false; netlist.registers().len()];
    let mut mem_live = vec![false; netlist.memories().len()];
    let mut worklist: Vec<NetId> = Vec::new();

    let mark = |id: NetId, net_live: &mut Vec<bool>, worklist: &mut Vec<NetId>| {
        if !net_live[id.index()] {
            net_live[id.index()] = true;
            worklist.push(id);
        }
    };

    // Roots: testbench cells and named outputs.
    for d in netlist.displays() {
        mark(d.cond, &mut net_live, &mut worklist);
        for &a in &d.args {
            mark(a, &mut net_live, &mut worklist);
        }
    }
    for e in netlist.expects() {
        mark(e.cond, &mut net_live, &mut worklist);
    }
    for f in netlist.finishes() {
        mark(f.cond, &mut net_live, &mut worklist);
    }
    for (_, id) in netlist.outputs() {
        mark(*id, &mut net_live, &mut worklist);
    }

    while let Some(id) = worklist.pop() {
        let net = netlist.net(id);
        for &a in &net.args {
            mark(a, &mut net_live, &mut worklist);
        }
        match net.op {
            CellOp::RegQ(r) if !reg_live[r.index()] => {
                reg_live[r.index()] = true;
                // The register's next-value cone becomes live.
                mark(
                    netlist.registers()[r.index()].next,
                    &mut net_live,
                    &mut worklist,
                );
            }
            CellOp::MemRead(m) if !mem_live[m.index()] => {
                mem_live[m.index()] = true;
                for w in &netlist.memories()[m.index()].writes {
                    mark(w.addr, &mut net_live, &mut worklist);
                    mark(w.data, &mut net_live, &mut worklist);
                    mark(w.en, &mut net_live, &mut worklist);
                }
            }
            _ => {}
        }
    }
    (net_live, reg_live, mem_live)
}

/// Key for CSE: the op discriminant plus remapped args.
#[derive(PartialEq, Eq, Hash)]
struct CseKey {
    op: String,
    konst: Option<Bits>,
    args: Vec<NetId>,
    width: usize,
}

fn optimize_once(netlist: &Netlist) -> Netlist {
    let (net_live, reg_live, mem_live) = liveness(netlist);
    let mut b = NetlistBuilder::new(netlist.name());

    // Values known at compile time, in the new netlist's id space.
    let mut const_of: HashMap<NetId, Bits> = HashMap::new();
    // old net id -> new net id
    let mut map: HashMap<NetId, NetId> = HashMap::new();
    let mut cse: HashMap<CseKey, NetId> = HashMap::new();

    // Inputs first (preserve declaration order), live or not: they are the
    // design's interface.
    for (name, old_id) in netlist.inputs() {
        let new_id = b.input(name.clone(), netlist.net(*old_id).width);
        map.insert(*old_id, new_id);
    }

    // Live registers.
    let mut reg_handles: HashMap<usize, RegHandle> = HashMap::new();
    for (i, r) in netlist.registers().iter().enumerate() {
        if reg_live[i] {
            let h = b.reg_init(r.name.clone(), r.width, r.init.clone());
            map.insert(r.q, h.q());
            reg_handles.insert(i, h);
        }
    }

    // Live memories.
    let mut mem_handles: HashMap<usize, MemHandle> = HashMap::new();
    for (i, m) in netlist.memories().iter().enumerate() {
        if mem_live[i] {
            let h = b.memory_init(m.name.clone(), m.depth, m.width, m.init.clone());
            mem_handles.insert(i, h);
        }
    }

    // Constant pool: one net per distinct constant value.
    let mut const_pool: HashMap<Bits, NetId> = HashMap::new();

    // Rebuild live combinational nets in topological order (creation order
    // is topological for builder-produced netlists).
    for (idx, net) in netlist.nets().iter().enumerate() {
        let old_id = NetId(idx as u32);
        if !net_live[idx] || map.contains_key(&old_id) {
            continue;
        }
        let arg = |i: usize| map[&net.args[i]];
        let cval = |i: usize, const_of: &HashMap<NetId, Bits>| -> Option<Bits> {
            const_of.get(&map[&net.args[i]]).cloned()
        };

        // Memory reads carry a handle, so route them directly.
        if let CellOp::MemRead(m) = net.op {
            let h = mem_handles[&m.index()];
            let new_id = b.mem_read(h, map[&net.args[0]]);
            map.insert(old_id, new_id);
            continue;
        }

        // 1. Constant folding (with a pooled constant per value).
        let folded: Option<Bits> = fold(net, &|i| cval(i, &const_of));
        let new_id = if let Some(value) = folded {
            let id = *const_pool
                .entry(value.clone())
                .or_insert_with(|| b.constant(value.clone()));
            const_of.insert(id, value);
            id
        } else if let Some(id) = algebraic(&mut b, net, &|i| arg(i), &|i| cval(i, &const_of)) {
            id
        } else {
            // 2. CSE.
            let key = CseKey {
                op: format!("{:?}", discriminant_of(&net.op)),
                konst: match &net.op {
                    CellOp::Const(c) => Some(c.clone()),
                    _ => None,
                },
                args: net.args.iter().map(|a| map[a]).collect(),
                width: net.width,
            };
            if let Some(&id) = cse.get(&key) {
                id
            } else {
                let id = rebuild(&mut b, net, &|i| arg(i));
                if let CellOp::Const(c) = &net.op {
                    const_of.insert(id, c.clone());
                }
                cse.insert(key, id);
                id
            }
        };
        map.insert(old_id, new_id);
    }

    // Reconnect register next values.
    for (i, r) in netlist.registers().iter().enumerate() {
        if let Some(h) = reg_handles.get(&i) {
            b.set_next(*h, map[&r.next]);
        }
    }
    // Memory write ports.
    for (i, m) in netlist.memories().iter().enumerate() {
        if let Some(h) = mem_handles.get(&i) {
            for w in &m.writes {
                b.mem_write(*h, map[&w.addr], map[&w.data], map[&w.en]);
            }
        }
    }
    // Testbench cells and outputs.
    for d in netlist.displays() {
        let args: Vec<NetId> = d.args.iter().map(|a| map[a]).collect();
        b.display(map[&d.cond], d.format.clone(), &args);
    }
    for e in netlist.expects() {
        b.expect_true(map[&e.cond], e.message.clone());
    }
    for f in netlist.finishes() {
        b.finish(map[&f.cond]);
    }
    for (name, id) in netlist.outputs() {
        b.output(name.clone(), map[id]);
    }

    b.finish_build()
        .expect("optimization must preserve structural validity")
}

/// A stable tag for CSE keys.
fn discriminant_of(op: &CellOp) -> &CellOp {
    op
}

/// Tries to evaluate `net` to a constant given constant args.
fn fold(net: &manticore_netlist::Net, cval: &dyn Fn(usize) -> Option<Bits>) -> Option<Bits> {
    use CellOp::*;
    let all: Option<Vec<Bits>> = (0..net.args.len()).map(cval).collect();
    let a = all?;
    Some(match &net.op {
        Const(c) => c.clone(),
        And => a[0].and(&a[1]),
        Or => a[0].or(&a[1]),
        Xor => a[0].xor(&a[1]),
        Not => a[0].not(),
        Add => a[0].add(&a[1]),
        Sub => a[0].sub(&a[1]),
        Mul => a[0].mul(&a[1]),
        Eq => Bits::from_bool(a[0] == a[1]),
        Ult => Bits::from_bool(a[0].ult(&a[1])),
        Slt => Bits::from_bool(a[0].slt(&a[1])),
        Shl => a[0].shl_dyn(&a[1]),
        Shr => a[0].shr_dyn(&a[1]),
        Ashr => a[0].ashr_dyn(&a[1]),
        Slice { offset } => a[0].slice(*offset, net.width),
        Concat => a[0].concat(&a[1]),
        ZExt => a[0].zext(net.width),
        SExt => a[0].sext(net.width),
        Mux => Bits::mux(&a[0], &a[1], &a[2]),
        RedOr => a[0].reduce_or(),
        RedAnd => a[0].reduce_and(),
        RedXor => a[0].reduce_xor(),
        Input | RegQ(_) | MemRead(_) => return None,
    })
}

/// Algebraic simplifications with one constant operand. Returns the
/// replacement net if one applies.
fn algebraic(
    b: &mut NetlistBuilder,
    net: &manticore_netlist::Net,
    arg: &dyn Fn(usize) -> NetId,
    cval: &dyn Fn(usize) -> Option<Bits>,
) -> Option<NetId> {
    use CellOp::*;
    let w = net.width;
    match &net.op {
        And => {
            for i in 0..2 {
                if let Some(c) = cval(i) {
                    if c.is_zero() {
                        return Some(b.constant(Bits::zero(w)));
                    }
                    if c == Bits::ones(w) {
                        return Some(arg(1 - i));
                    }
                }
            }
            if arg(0) == arg(1) {
                return Some(arg(0));
            }
        }
        Or => {
            for i in 0..2 {
                if let Some(c) = cval(i) {
                    if c.is_zero() {
                        return Some(arg(1 - i));
                    }
                    if c == Bits::ones(w) {
                        return Some(b.constant(Bits::ones(w)));
                    }
                }
            }
            if arg(0) == arg(1) {
                return Some(arg(0));
            }
        }
        Xor => {
            for i in 0..2 {
                if let Some(c) = cval(i) {
                    if c.is_zero() {
                        return Some(arg(1 - i));
                    }
                }
            }
            if arg(0) == arg(1) {
                return Some(b.constant(Bits::zero(w)));
            }
        }
        Add => {
            for i in 0..2 {
                if let Some(c) = cval(i) {
                    if c.is_zero() {
                        return Some(arg(1 - i));
                    }
                }
            }
        }
        Sub => {
            if let Some(c) = cval(1) {
                if c.is_zero() {
                    return Some(arg(0));
                }
            }
            if arg(0) == arg(1) {
                return Some(b.constant(Bits::zero(w)));
            }
        }
        Mul => {
            for i in 0..2 {
                if let Some(c) = cval(i) {
                    if c.is_zero() {
                        return Some(b.constant(Bits::zero(w)));
                    }
                    if c == Bits::from_u64(1, c.width()) {
                        return Some(arg(1 - i));
                    }
                }
            }
        }
        Shl | Shr | Ashr => {
            if let Some(c) = cval(1) {
                if c.is_zero() {
                    return Some(arg(0));
                }
            }
        }
        Eq if arg(0) == arg(1) => {
            return Some(b.constant(Bits::from_bool(true)));
        }
        Mux => {
            if let Some(c) = cval(0) {
                return Some(if c.is_zero() { arg(2) } else { arg(1) });
            }
            if arg(1) == arg(2) {
                return Some(arg(1));
            }
        }
        _ => {}
    }
    None
}

/// Re-emits `net` through the builder with remapped args.
fn rebuild(
    b: &mut NetlistBuilder,
    net: &manticore_netlist::Net,
    arg: &dyn Fn(usize) -> NetId,
) -> NetId {
    use CellOp::*;
    match &net.op {
        Const(c) => b.constant(c.clone()),
        And => b.and(arg(0), arg(1)),
        Or => b.or(arg(0), arg(1)),
        Xor => b.xor(arg(0), arg(1)),
        Not => b.not(arg(0)),
        Add => b.add(arg(0), arg(1)),
        Sub => b.sub(arg(0), arg(1)),
        Mul => b.mul(arg(0), arg(1)),
        Eq => b.eq(arg(0), arg(1)),
        Ult => b.ult(arg(0), arg(1)),
        Slt => b.slt(arg(0), arg(1)),
        Shl => b.shl(arg(0), arg(1)),
        Shr => b.shr(arg(0), arg(1)),
        Ashr => b.ashr(arg(0), arg(1)),
        Slice { offset } => b.slice(arg(0), *offset, net.width),
        Concat => {
            // args = [lo, hi]
            b.concat(arg(1), arg(0))
        }
        ZExt => b.zext(arg(0), net.width),
        SExt => b.sext(arg(0), net.width),
        Mux => b.mux(arg(0), arg(1), arg(2)),
        RedOr => b.reduce_or(arg(0)),
        RedAnd => b.reduce_and(arg(0)),
        RedXor => b.reduce_xor(arg(0)),
        MemRead(_) | Input | RegQ(_) => {
            unreachable!("sources are pre-mapped before rebuilding")
        }
    }
}
