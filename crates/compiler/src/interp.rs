//! The lower-assembly interpreter (§6: "Both \[IRs\] can be interpreted in
//! software... We used the interpreters extensively to validate the
//! compiler passes").
//!
//! Executes a [`LirProgram`] with full RTL-cycle semantics but no machine
//! timing: all processes run to completion each Vcycle, memory writes and
//! state commits apply atomically at the cycle boundary. Differential
//! testing pits this against the netlist evaluator (above it) and the
//! machine model (below it).

use std::collections::HashMap;

use manticore_bits::Bits;

use crate::lir::{LirExceptionKind, LirOp, LirProgram, MemPlacement, VReg};

/// Side effects of one interpreted Vcycle.
#[derive(Debug, Clone, Default)]
pub struct LirEvents {
    /// Rendered `$display` lines.
    pub displays: Vec<String>,
    /// First failed assertion message, if any.
    pub failed_assert: Option<String>,
    /// True if `$finish` fired.
    pub finished: bool,
}

/// Interpreter state over a lower-assembly program.
#[derive(Debug, Clone)]
pub struct LirInterp<'p> {
    prog: &'p LirProgram,
    /// Current value of every state word.
    state: Vec<u16>,
    /// Backing store for local memories.
    local_mems: Vec<Vec<u16>>,
    /// Sparse DRAM for global memories.
    dram: HashMap<u64, u16>,
    vcycle: u64,
}

impl<'p> LirInterp<'p> {
    /// Creates an interpreter with state and memories at initial values.
    pub fn new(prog: &'p LirProgram) -> Self {
        let state = prog.states.iter().map(|s| s.init).collect();
        let mut local_mems = Vec::with_capacity(prog.mems.len());
        let mut dram = HashMap::new();
        for m in &prog.mems {
            match m.placement {
                MemPlacement::Local => {
                    let mut words = m.init_words.clone();
                    words.resize(m.total_words(), 0);
                    local_mems.push(words);
                }
                MemPlacement::Global { base } => {
                    local_mems.push(Vec::new());
                    for (i, &w) in m.init_words.iter().enumerate() {
                        if w != 0 {
                            dram.insert(base + i as u64, w);
                        }
                    }
                }
            }
        }
        LirInterp {
            prog,
            state,
            local_mems,
            dram,
            vcycle: 0,
        }
    }

    /// Vcycles executed so far.
    pub fn vcycle(&self) -> u64 {
        self.vcycle
    }

    /// Current value of a state word.
    pub fn state_word(&self, index: usize) -> u16 {
        self.state[index]
    }

    /// Current value of an RTL register, reassembled from its state words.
    pub fn rtl_reg_value(&self, rtl_reg: manticore_netlist::RegId, width: usize) -> Bits {
        let words: Vec<u16> = self
            .prog
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.rtl_reg == rtl_reg)
            .map(|(i, _)| self.state[i])
            .collect();
        Bits::from_words16(&words, width)
    }

    /// Executes one Vcycle.
    pub fn step(&mut self) -> LirEvents {
        let mut events = LirEvents::default();
        let mut commits: Vec<(usize, u16)> = Vec::new();
        let mut local_writes: Vec<(usize, usize, u16)> = Vec::new();
        let mut dram_writes: Vec<(u64, u16)> = Vec::new();

        for proc in &self.prog.processes {
            // Value + carry per vreg (bit 16 = carry).
            let mut vals = vec![0u32; proc.num_vregs as usize];
            for (&sid, &v) in &proc.state_reads {
                vals[v.index()] = self.state[sid.index()] as u32;
            }
            for instr in &proc.instrs {
                let a = |i: usize| vals[instr.args[i].index()] as u16;
                let carry = |i: usize| (vals[instr.args[i].index()] >> 16) & 1;
                let result: Option<u32> = match instr.op {
                    LirOp::Const(imm) => Some(imm as u32),
                    LirOp::Alu(op) => {
                        let (v, c) = op.eval(a(0), a(1));
                        Some(v as u32 | ((c as u32) << 16))
                    }
                    LirOp::AddCarry => {
                        let sum = a(0) as u32 + a(1) as u32 + carry(2);
                        Some((sum & 0xffff) | (((sum > 0xffff) as u32) << 16))
                    }
                    LirOp::SubBorrow => {
                        let diff = a(0) as i32 - a(1) as i32 - (1 - carry(2) as i32);
                        Some(((diff as u32) & 0xffff) | (((diff >= 0) as u32) << 16))
                    }
                    LirOp::Mux => Some(if a(0) != 0 { a(1) as u32 } else { a(2) as u32 }),
                    LirOp::Slice { offset, width } => {
                        let mask = if width >= 16 {
                            0xffff
                        } else {
                            (1u16 << width) - 1
                        };
                        Some(((a(0) >> offset) & mask) as u32)
                    }
                    LirOp::Custom { table } => {
                        let ws: Vec<u16> = (0..instr.args.len()).map(a).collect();
                        let mut out = 0u16;
                        for (lane, &row) in table.iter().enumerate() {
                            let mut sel = 0u16;
                            for (k, w) in ws.iter().enumerate() {
                                sel |= ((w >> lane) & 1) << k;
                            }
                            out |= ((row >> sel) & 1) << lane;
                        }
                        Some(out as u32)
                    }
                    LirOp::LocalLoad { mem, word_offset } => {
                        let m = &self.local_mems[mem.index()];
                        let addr = (a(0) as usize + word_offset as usize) % m.len().max(1);
                        Some(m.get(addr).copied().unwrap_or(0) as u32)
                    }
                    LirOp::LocalStore { mem, word_offset } => {
                        if a(2) != 0 {
                            let m = &self.local_mems[mem.index()];
                            let addr = (a(1) as usize + word_offset as usize) % m.len().max(1);
                            local_writes.push((mem.index(), addr, a(0)));
                        }
                        None
                    }
                    LirOp::GlobalLoad { .. } => {
                        let addr = a(0) as u64 | ((a(1) as u64) << 16) | ((a(2) as u64) << 32);
                        Some(self.dram.get(&addr).copied().unwrap_or(0) as u32)
                    }
                    LirOp::GlobalStore { .. } => {
                        if a(4) != 0 {
                            let addr = a(1) as u64 | ((a(2) as u64) << 16) | ((a(3) as u64) << 32);
                            dram_writes.push((addr, a(0)));
                        }
                        None
                    }
                    LirOp::Expect { eid } => {
                        if a(0) != a(1) {
                            self.fire_exception(eid, &vals, &mut events);
                        }
                        None
                    }
                    LirOp::CommitLocal { state } => {
                        commits.push((state.index(), a(0)));
                        None
                    }
                    LirOp::Send { .. } => None, // state is shared in the interpreter
                };
                if let (Some(d), Some(v)) = (instr.dest, result) {
                    vals[d.index()] = v;
                }
            }
        }

        // Atomic cycle-boundary updates: memory writes then state commits.
        for (m, addr, v) in local_writes {
            self.local_mems[m][addr] = v;
        }
        for (addr, v) in dram_writes {
            self.dram.insert(addr, v);
        }
        for (s, v) in commits {
            self.state[s] = v;
        }
        self.vcycle += 1;
        events
    }

    fn fire_exception(&self, eid: u16, vals: &[u32], events: &mut LirEvents) {
        match &self.prog.exceptions[eid as usize] {
            LirExceptionKind::Display { format, args } => {
                let rendered = render(format, args, vals);
                events.displays.push(rendered);
            }
            LirExceptionKind::AssertFail { message } => {
                if events.failed_assert.is_none() {
                    events.failed_assert = Some(message.clone());
                }
            }
            LirExceptionKind::Finish => events.finished = true,
        }
    }
}

fn render(format: &str, args: &[(Vec<VReg>, usize)], vals: &[u32]) -> String {
    let mut out = String::new();
    let mut it = args.iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '{' && chars.peek() == Some(&'}') {
            chars.next();
            match it.next() {
                Some((regs, width)) => {
                    let words: Vec<u16> = regs.iter().map(|r| vals[r.index()] as u16).collect();
                    let b = Bits::from_words16(&words, *width);
                    out.push_str(&format!("{b:x}"));
                }
                None => out.push_str("<missing>"),
            }
        } else {
            out.push(c);
        }
    }
    out
}
