//! Extracting parallelism (§6.1): split the monolithic process into a
//! maximal set of per-sink cones, then merge them down to the core count.
//!
//! Splitting walks backwards from every sink (a state-word commit, the
//! stores of one memory, or the privileged instruction group) and takes the
//! full fan-in cone, duplicating shared computation — maximal parallelism
//! at the cost of recomputation. Two affinity rules constrain the split:
//! all accesses to one memory stay together, and all privileged
//! instructions stay together.
//!
//! Merging is a graph clustering problem with a *non-linear* cost: merging
//! two cones deduplicates their shared instructions (represented here as
//! bitsets over the monolithic instruction indices, so the merged cost is a
//! popcount of the union) and eliminates Sends between them. Two strategies
//! are implemented:
//!
//! - [`PartitionStrategy::Balanced`] — the paper's communication-aware
//!   heuristic: repeatedly merge the cheapest process into the communicating
//!   partner that minimizes the merged execution time, continuing past the
//!   core count while it keeps the straggler bounded;
//! - [`PartitionStrategy::Lpt`] — the communication-oblivious
//!   longest-processing-time-first baseline the paper evaluates against
//!   (Fig. 9 / Table 4).
//!
//! # Parallel structure and determinism
//!
//! [`partition_threaded`] decomposes the pass into an embarrassingly
//! parallel cone phase (each seed's fan-in closure is independent given the
//! def table), a **serial** merge (the greedy loop is a sequential decision
//! process), and an embarrassingly parallel materialization (each surviving
//! unit rebuilds its instruction list independently; Sends and the
//! exception remap are appended serially afterwards). Parallel stages fan
//! out with [`manticore_util::parallel_map`], which assigns results to
//! pre-determined slots — output is a pure function of the index, so the
//! pass is bit-identical at any thread count.
//!
//! At `threads > 1` the balanced merge switches to
//! `merge_balanced_fast`, an incremental-bookkeeping reimplementation
//! that replays the reference greedy loop's *exact* decision sequence
//! (same cheapest-unit, partner, and stop decisions, including
//! first-minimal tie-breaks) while replacing the reference's
//! O(units² · states) rescans with cached per-unit costs, per-state live
//! reader counts, and masked-popcount union costs. A unit test checks the
//! two merges agree on every workload-sized program; the end-to-end
//! compile-determinism suite checks the emitted binaries byte-for-byte.

use std::collections::{BTreeSet, HashMap};

use manticore_util::parallel_map;

use crate::bitset::BitSet;
use crate::error::CompileError;
use crate::lir::{LirExceptionKind, LirInstr, LirOp, LirProgram, Process, StateId, VReg};
use crate::pass::CompileControl;

/// How many merge iterations run between [`CompileControl`] polls. The
/// greedy loop retires one unit per iteration, so even a huge design
/// observes a tripped deadline within a bounded amount of work.
const MERGE_POLL_PERIOD: usize = 64;

/// Which merge strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Communication-aware balanced merging (the paper's algorithm, `B`).
    #[default]
    Balanced,
    /// Longest-processing-time-first, communication-oblivious (`L`).
    Lpt,
}

/// One mergeable unit: a cone of monolithic instructions plus its state
/// interface.
#[derive(Debug, Clone)]
struct Unit {
    instrs: BitSet,
    /// Deduplicated instruction cost (weighted popcount of `instrs`).
    base_cost: usize,
    /// States committed inside this unit.
    commits: BTreeSet<StateId>,
    /// States read (live-in) by this unit.
    reads: BTreeSet<StateId>,
}

/// Splits and merges the monolithic program onto `num_cores` cores using
/// the reference serial pipeline (`threads = 1`).
///
/// # Panics
///
/// Panics if `prog` is not monolithic (exactly one process).
pub fn partition(prog: &LirProgram, num_cores: usize, strategy: PartitionStrategy) -> LirProgram {
    partition_threaded(prog, num_cores, strategy, 1)
}

/// Splits and merges the monolithic program onto `num_cores` cores,
/// fanning the cone and materialization phases over `threads` workers and
/// (for the balanced strategy at `threads > 1`) using the incremental
/// merge. Output is bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `prog` is not monolithic (exactly one process).
pub fn partition_threaded(
    prog: &LirProgram,
    num_cores: usize,
    strategy: PartitionStrategy,
    threads: usize,
) -> LirProgram {
    partition_controlled(
        prog,
        num_cores,
        strategy,
        threads,
        &CompileControl::default(),
    )
    .expect("unconstrained partition cannot be interrupted")
}

/// [`partition_threaded`] with a [`CompileControl`]: the serial merge loop
/// polls the control every `MERGE_POLL_PERIOD` iterations, so a tripped
/// deadline or cancel token stops the pass with a structured error
/// instead of running the (potentially quadratic) merge to completion.
///
/// # Errors
///
/// [`CompileError::DeadlineExceeded`] / [`CompileError::Cancelled`] when
/// the control fires mid-merge.
///
/// # Panics
///
/// Panics if `prog` is not monolithic (exactly one process).
pub fn partition_controlled(
    prog: &LirProgram,
    num_cores: usize,
    strategy: PartitionStrategy,
    threads: usize,
    control: &CompileControl,
) -> Result<LirProgram, CompileError> {
    assert_eq!(
        prog.processes.len(),
        1,
        "partition expects a monolithic program"
    );
    let mono = &prog.processes[0];
    let n = mono.instrs.len();

    // def index per vreg (live-ins have none).
    let mut def_of: Vec<Option<usize>> = vec![None; mono.num_vregs as usize];
    for (i, instr) in mono.instrs.iter().enumerate() {
        if let Some(d) = instr.dest {
            def_of[d.index()] = Some(i);
        }
    }
    let instr_cost: Vec<usize> = mono
        .instrs
        .iter()
        .map(|i| match i.op {
            LirOp::Const(_) => 0,
            ref op => op.issue_slots(),
        })
        .collect();
    let mut vreg_state: HashMap<VReg, StateId> = HashMap::new();
    for (&s, &v) in &mono.state_reads {
        vreg_state.insert(v, s);
    }

    // ------------------------------------------------------------------
    // Split: seed groups, grow cones (each cone independent — parallel).
    // ------------------------------------------------------------------
    let mut seeds: Vec<Vec<usize>> = Vec::new();
    let mut mem_seed: HashMap<u32, usize> = HashMap::new();
    let mut priv_seed: Option<usize> = None;
    for (i, instr) in mono.instrs.iter().enumerate() {
        match &instr.op {
            LirOp::CommitLocal { .. } => seeds.push(vec![i]),
            LirOp::LocalStore { mem, .. } | LirOp::GlobalStore { mem, .. } => {
                let g = *mem_seed.entry(mem.0).or_insert_with(|| {
                    seeds.push(Vec::new());
                    seeds.len() - 1
                });
                seeds[g].push(i);
            }
            LirOp::Expect { .. } => {
                let g = *priv_seed.get_or_insert_with(|| {
                    seeds.push(Vec::new());
                    seeds.len() - 1
                });
                seeds[g].push(i);
            }
            _ => {}
        }
    }

    let cones: Vec<BitSet> = parallel_map(seeds.len(), threads, |si| {
        let seed = &seeds[si];
        let mut cone = BitSet::new(n);
        let mut stack: Vec<usize> = seed.clone();
        for &s in seed {
            cone.insert(s);
        }
        while let Some(i) = stack.pop() {
            for a in &mono.instrs[i].args {
                if let Some(d) = def_of[a.index()] {
                    if !cone.contains(d) {
                        cone.insert(d);
                        stack.push(d);
                    }
                }
            }
        }
        cone
    });

    // Affinity: cones touching the same memory unite; cones with privileged
    // instructions unite with the privileged cone.
    let mut uf = UnionFind::new(cones.len());
    let mut mem_home: HashMap<u32, usize> = HashMap::new();
    for (u, cone) in cones.iter().enumerate() {
        for i in cone.iter() {
            match &mono.instrs[i].op {
                LirOp::LocalLoad { mem, .. }
                | LirOp::LocalStore { mem, .. }
                | LirOp::GlobalLoad { mem }
                | LirOp::GlobalStore { mem } => {
                    let home = *mem_home.entry(mem.0).or_insert(u);
                    uf.union(home, u);
                }
                _ => {}
            }
            if mono.instrs[i].op.is_privileged() {
                if let Some(pg) = priv_seed {
                    uf.union(pg, u);
                }
            }
        }
    }
    let mut class_unit: HashMap<usize, usize> = HashMap::new();
    let mut unit_sets: Vec<BitSet> = Vec::new();
    for (u, cone) in cones.iter().enumerate() {
        let root = uf.find(u);
        match class_unit.get(&root) {
            Some(&idx) => unit_sets[idx].union_with(cone),
            None => {
                class_unit.insert(root, unit_sets.len());
                unit_sets.push(cone.clone());
            }
        }
    }

    let units: Vec<Unit> = {
        let mut unit_sets = unit_sets;
        parallel_map(unit_sets.len(), threads, |ui| {
            let set = &unit_sets[ui];
            let base_cost = set.iter().map(|i| instr_cost[i]).sum();
            let mut commits = BTreeSet::new();
            let mut reads = BTreeSet::new();
            for i in set.iter() {
                if let LirOp::CommitLocal { state } = mono.instrs[i].op {
                    commits.insert(state);
                }
                for a in &mono.instrs[i].args {
                    if let Some(&s) = vreg_state.get(a) {
                        reads.insert(s);
                    }
                }
            }
            (base_cost, commits, reads)
        })
        .into_iter()
        .enumerate()
        .map(|(ui, (base_cost, commits, reads))| Unit {
            instrs: std::mem::replace(&mut unit_sets[ui], BitSet::new(0)),
            base_cost,
            commits,
            reads,
        })
        .collect()
    };

    // ------------------------------------------------------------------
    // Merge (inherently serial: a sequential greedy decision process).
    // ------------------------------------------------------------------
    let merged_sets = match (strategy, threads > 1) {
        (PartitionStrategy::Balanced, false) => {
            merge_balanced(units, num_cores, &instr_cost, control)?
        }
        (PartitionStrategy::Balanced, true) => {
            merge_balanced_fast(units, num_cores, &instr_cost, prog.states.len(), control)?
        }
        (PartitionStrategy::Lpt, _) => merge_lpt(units, num_cores),
    };

    Ok(materialize(
        prog,
        mono,
        &merged_sets,
        &def_of,
        &vreg_state,
        threads,
    ))
}

/// Send count of unit `u` given current ownership: one per (state committed
/// by `u`, other live unit reading it).
fn send_count(u: usize, units: &[Unit], alive: &[bool]) -> usize {
    let mut sends = 0;
    for s in &units[u].commits {
        for (v, other) in units.iter().enumerate() {
            if v != u && alive[v] && other.reads.contains(s) {
                sends += 1;
            }
        }
    }
    sends
}

/// The reference balanced merge: recomputes unit costs and merged costs
/// from first principles every iteration. Kept verbatim as the serial
/// pipeline and as the oracle for `merge_balanced_fast`.
fn merge_balanced(
    mut units: Vec<Unit>,
    num_cores: usize,
    instr_cost: &[usize],
    control: &CompileControl,
) -> Result<Vec<BitSet>, CompileError> {
    let mut alive = vec![true; units.len()];
    let mut iterations = 0usize;
    loop {
        if iterations.is_multiple_of(MERGE_POLL_PERIOD) {
            control.check("partition")?;
        }
        iterations += 1;
        let live: Vec<usize> = (0..units.len()).filter(|&i| alive[i]).collect();
        if live.len() <= 1 {
            break;
        }
        let must_merge = live.len() > num_cores;
        let cost = |i: usize, units: &[Unit], alive: &[bool]| {
            units[i].base_cost + send_count(i, units, alive)
        };
        // Cheapest live unit.
        let &u = live
            .iter()
            .min_by_key(|&&i| cost(i, &units, &alive))
            .unwrap();
        // Communicating partners.
        let partners: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&v| {
                v != u
                    && (units[u].commits.iter().any(|s| units[v].reads.contains(s))
                        || units[v].commits.iter().any(|s| units[u].reads.contains(s)))
            })
            .collect();
        let candidates = if partners.is_empty() {
            live.iter().copied().filter(|&v| v != u).collect::<Vec<_>>()
        } else {
            partners
        };
        // Merged cost of u+v: deduped instructions + sends of the union.
        let merged_cost = |v: usize, units: &[Unit], alive: &[bool]| -> usize {
            let mut base = 0usize;
            // weighted union popcount
            let set = &units[u].instrs;
            let other = &units[v].instrs;
            for i in set.iter() {
                base += instr_cost[i];
            }
            for i in other.iter() {
                if !set.contains(i) {
                    base += instr_cost[i];
                }
            }
            let mut sends = 0;
            for s in units[u].commits.iter().chain(units[v].commits.iter()) {
                for (w, ww) in units.iter().enumerate() {
                    if w != u && w != v && alive[w] && ww.reads.contains(s) {
                        sends += 1;
                    }
                }
            }
            base + sends
        };
        let best = candidates
            .iter()
            .map(|&v| (merged_cost(v, &units, &alive), v))
            .min();
        let Some((best_cost, v)) = best else { break };
        if !must_merge {
            let straggler = live.iter().map(|&i| cost(i, &units, &alive)).max().unwrap();
            if best_cost > straggler {
                break;
            }
        }
        // Merge v into u.
        let vv = units[v].clone();
        units[u].instrs.union_with(&vv.instrs);
        units[u].base_cost = units[u].instrs.iter().map(|i| instr_cost[i]).sum();
        units[u].commits.extend(vv.commits.iter().copied());
        units[u].reads.extend(vv.reads.iter().copied());
        alive[v] = false;
    }
    Ok(units
        .into_iter()
        .zip(alive)
        .filter_map(|(un, a)| a.then_some(un.instrs))
        .collect())
}

/// The incremental balanced merge: replays [`merge_balanced`]'s exact
/// decision sequence with cached bookkeeping.
///
/// Why the decisions cannot diverge:
///
/// - **Unit cost.** The reference's `cost(i) = base_cost(i) + sends(i)`
///   where `sends(i) = Σ_{s ∈ commits_i} |{v alive, v ≠ i, s ∈ reads_v}|`.
///   Here `readers_cnt[s]` maintains the number of *live* units reading
///   `s`, so `sends(i) = Σ_s (readers_cnt[s] − [i reads s])`; `cost[]` is
///   kept consistent across merges by local updates (below) plus a full
///   recompute of the merged unit.
/// - **Cheapest unit.** The reference takes `min_by_key` over live units
///   in ascending index order, which returns the *first* minimum; the scan
///   here uses strict `<` over the same order.
/// - **Partner choice.** The reference minimizes `(merged_cost, v)`
///   tuples; `merged_cost(v)` = weighted union popcount + chained sends
///   `Σ_{s ∈ commits_u ∪ commits_v} (readers_cnt[s] − [u reads s] −
///   [v reads s])` — the same quantity, computed via per-weight word masks
///   (`popcount(w & mask1) + 2·popcount(w & mask2)`) instead of bit
///   iteration. Note `commits_u` and `commits_v` are disjoint (each state
///   has exactly one committer), so the chained iteration counts each
///   state once, exactly like the reference.
/// - **Stop rule.** `must_merge` and the straggler bound use the same
///   cached costs.
///
/// On merging `v` into `u`: for each state read by both, the union loses a
/// duplicate reader, so `readers_cnt[s] -= 1` and the state's live
/// committer (if distinct from `u`/`v`) loses one send; `v`'s committed
/// states transfer their committer to `u`; `cost[u]` is recomputed in
/// full. Everything else is unchanged.
fn merge_balanced_fast(
    mut units: Vec<Unit>,
    num_cores: usize,
    instr_cost: &[usize],
    num_states: usize,
    control: &CompileControl,
) -> Result<Vec<BitSet>, CompileError> {
    let nunits = units.len();
    let mut alive = vec![true; nunits];
    if nunits == 0 {
        return Ok(Vec::new());
    }

    // Per-weight word masks over monolithic instruction indices: the
    // weighted popcount of any instruction set is then two masked
    // popcounts per word (issue slots are 1 or 2; Consts weigh 0).
    let nwords = units[0].instrs.words().len();
    let mut mask1 = vec![0u64; nwords];
    let mut mask2 = vec![0u64; nwords];
    for (i, &c) in instr_cost.iter().enumerate() {
        match c {
            0 => {}
            1 => mask1[i / 64] |= 1 << (i % 64),
            2 => mask2[i / 64] |= 1 << (i % 64),
            _ => unreachable!("issue slots are 1 or 2"),
        }
    }
    let weighted = |words: &[u64]| -> usize {
        words
            .iter()
            .zip(mask1.iter().zip(&mask2))
            .map(|(&w, (&m1, &m2))| ((w & m1).count_ones() + 2 * (w & m2).count_ones()) as usize)
            .sum()
    };
    let weighted_union = |a: &BitSet, b: &BitSet| -> usize {
        a.words()
            .iter()
            .zip(b.words())
            .zip(mask1.iter().zip(&mask2))
            .map(|((&wa, &wb), (&m1, &m2))| {
                let w = wa | wb;
                ((w & m1).count_ones() + 2 * (w & m2).count_ones()) as usize
            })
            .sum()
    };

    // Live-reader counts and (unique) committers per state.
    let mut readers_cnt = vec![0usize; num_states];
    let mut committer = vec![usize::MAX; num_states];
    for (ui, unit) in units.iter().enumerate() {
        for s in &unit.reads {
            readers_cnt[s.index()] += 1;
        }
        for s in &unit.commits {
            debug_assert_eq!(committer[s.index()], usize::MAX, "unique committer");
            committer[s.index()] = ui;
        }
    }
    let full_cost = |u: usize, units: &[Unit], readers_cnt: &[usize]| -> usize {
        let sends: usize = units[u]
            .commits
            .iter()
            .map(|s| readers_cnt[s.index()] - units[u].reads.contains(s) as usize)
            .sum();
        units[u].base_cost + sends
    };
    let mut cost: Vec<usize> = (0..nunits)
        .map(|u| full_cost(u, &units, &readers_cnt))
        .collect();

    let mut live_count = nunits;
    let mut iterations = 0usize;
    while live_count > 1 {
        if iterations.is_multiple_of(MERGE_POLL_PERIOD) {
            control.check("partition")?;
        }
        iterations += 1;
        let must_merge = live_count > num_cores;
        // Cheapest live unit: first minimal in ascending index order.
        let mut u = usize::MAX;
        for i in 0..nunits {
            if alive[i] && (u == usize::MAX || cost[i] < cost[u]) {
                u = i;
            }
        }
        // Communicating partners (same membership test as the reference).
        let mut candidates: Vec<usize> = (0..nunits)
            .filter(|&v| {
                alive[v]
                    && v != u
                    && (units[u].commits.iter().any(|s| units[v].reads.contains(s))
                        || units[v].commits.iter().any(|s| units[u].reads.contains(s)))
            })
            .collect();
        if candidates.is_empty() {
            candidates = (0..nunits).filter(|&v| alive[v] && v != u).collect();
        }
        let merged_cost = |v: usize| -> usize {
            let base = weighted_union(&units[u].instrs, &units[v].instrs);
            let sends: usize = units[u]
                .commits
                .iter()
                .chain(units[v].commits.iter())
                .map(|s| {
                    readers_cnt[s.index()]
                        - units[u].reads.contains(s) as usize
                        - units[v].reads.contains(s) as usize
                })
                .sum();
            base + sends
        };
        let best = candidates.iter().map(|&v| (merged_cost(v), v)).min();
        let Some((best_cost, v)) = best else { break };
        if !must_merge {
            let straggler = (0..nunits)
                .filter(|&i| alive[i])
                .map(|i| cost[i])
                .max()
                .unwrap();
            if best_cost > straggler {
                break;
            }
        }

        // Merge v into u, updating the caches.
        let vv = std::mem::replace(
            &mut units[v],
            Unit {
                instrs: BitSet::new(0),
                base_cost: 0,
                commits: BTreeSet::new(),
                reads: BTreeSet::new(),
            },
        );
        // Duplicate readers collapse: states read by both lose one live
        // reader, and their committers (other than u/v) lose one send.
        for s in vv.reads.intersection(&units[u].reads) {
            readers_cnt[s.index()] -= 1;
            let c = committer[s.index()];
            if c != usize::MAX && c != u && c != v && alive[c] {
                cost[c] -= 1;
            }
        }
        for s in &vv.commits {
            committer[s.index()] = u;
        }
        units[u].instrs.union_with(&vv.instrs);
        let merged_base = weighted(units[u].instrs.words());
        units[u].base_cost = merged_base;
        units[u].commits.extend(vv.commits.iter().copied());
        units[u].reads.extend(vv.reads.iter().copied());
        alive[v] = false;
        live_count -= 1;
        cost[u] = full_cost(u, &units, &readers_cnt);
    }
    Ok(units
        .into_iter()
        .zip(alive)
        .filter_map(|(un, a)| a.then_some(un.instrs))
        .collect())
}

fn merge_lpt(units: Vec<Unit>, num_cores: usize) -> Vec<BitSet> {
    let alive = vec![true; units.len()];
    let costs: Vec<usize> = (0..units.len())
        .map(|i| units[i].base_cost + send_count(i, &units, &alive))
        .collect();
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let nbins = num_cores.min(units.len());
    if nbins == 0 {
        return Vec::new();
    }
    let cap = units
        .first()
        .map(|u| u.instrs.iter().max().map_or(1, |m| m + 1))
        .unwrap_or(1);
    // Bitsets in the bins need the monolithic instruction capacity; take it
    // from any unit's backing size (all share it).
    let _ = cap;
    let mut bins: Vec<Option<BitSet>> = vec![None; nbins];
    let mut bin_load = vec![0usize; nbins];
    for i in order {
        let b = (0..nbins).min_by_key(|&b| bin_load[b]).unwrap();
        match &mut bins[b] {
            Some(set) => set.union_with(&units[i].instrs),
            slot @ None => *slot = Some(units[i].instrs.clone()),
        }
        bin_load[b] += costs[i]; // linear cost assumption: the point of L
    }
    bins.into_iter().flatten().collect()
}

/// Rebuilds per-process instruction lists from unit bitsets, renumbers
/// vregs, threads live-ins through, generates `Send`s, and remaps the
/// exception table. The per-unit rebuild is independent across units and
/// fans out over the worker pool; Sends and the exception remap run
/// serially afterwards (they read cross-unit ownership).
fn materialize(
    prog: &LirProgram,
    mono: &Process,
    units: &[BitSet],
    def_of: &[Option<usize>],
    vreg_state: &HashMap<VReg, StateId>,
    threads: usize,
) -> LirProgram {
    let rebuilt: Vec<(Process, HashMap<VReg, VReg>)> = parallel_map(units.len(), threads, |ui| {
        let unit = &units[ui];
        let mut p = Process::default();
        let mut vmap: HashMap<VReg, VReg> = HashMap::new();
        for i in unit.iter() {
            let old = &mono.instrs[i];
            let mut args = Vec::with_capacity(old.args.len());
            for &a in &old.args {
                let mapped = if let Some(&m) = vmap.get(&a) {
                    m
                } else if let Some(&s) = vreg_state.get(&a) {
                    let v = p.fresh();
                    p.state_reads.insert(s, v);
                    vmap.insert(a, v);
                    v
                } else {
                    debug_assert!(def_of[a.index()].is_some());
                    unreachable!("cone closure must include defining instruction")
                };
                args.push(mapped);
            }
            let dest = old.dest.map(|d| {
                let v = p.fresh();
                vmap.insert(d, v);
                v
            });
            if old.op.is_privileged() {
                p.is_privileged = true;
            }
            p.instrs.push(LirInstr {
                dest,
                op: old.op.clone(),
                args,
            });
        }
        (p, vmap)
    });
    let (mut processes, vmaps): (Vec<Process>, Vec<HashMap<VReg, VReg>>) =
        rebuilt.into_iter().unzip();

    // Sends: the owner of each state sends to every other reader process.
    let mut owners = vec![usize::MAX; prog.states.len()];
    for (pi, p) in processes.iter().enumerate() {
        for instr in &p.instrs {
            if let LirOp::CommitLocal { state } = instr.op {
                owners[state.index()] = pi;
            }
        }
    }
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); prog.states.len()];
    for (pi, p) in processes.iter().enumerate() {
        for &s in p.state_reads.keys() {
            readers[s.index()].push(pi);
        }
    }
    for (si, state_readers) in readers.iter().enumerate() {
        let owner = owners[si];
        if owner == usize::MAX {
            continue;
        }
        let src = processes[owner]
            .instrs
            .iter()
            .find_map(|i| match i.op {
                LirOp::CommitLocal { state } if state.index() == si => Some(i.args[0]),
                _ => None,
            })
            .expect("owner commits the state");
        for &rp in state_readers {
            if rp != owner {
                processes[owner].instrs.push(LirInstr {
                    dest: None,
                    op: LirOp::Send {
                        state: StateId(si as u32),
                        to_process: rp,
                    },
                    args: vec![src],
                });
            }
        }
    }

    // Remap exception argument vregs into the privileged process.
    let priv_idx = processes.iter().position(|p| p.is_privileged);
    let exceptions = prog
        .exceptions
        .iter()
        .map(|e| match e {
            LirExceptionKind::Display { format, args } => {
                let pi = priv_idx.expect("displays imply a privileged process");
                let vmap = &vmaps[pi];
                LirExceptionKind::Display {
                    format: format.clone(),
                    args: args
                        .iter()
                        .map(|(regs, w)| (regs.iter().map(|r| vmap[r]).collect(), *w))
                        .collect(),
                }
            }
            other => other.clone(),
        })
        .collect();

    LirProgram {
        processes,
        states: prog.states.clone(),
        mems: prog.mems.clone(),
        exceptions,
    }
}

/// Plain union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}
