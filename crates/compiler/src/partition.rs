//! Extracting parallelism (§6.1): split the monolithic process into a
//! maximal set of per-sink cones, then merge them down to the core count.
//!
//! Splitting walks backwards from every sink (a state-word commit, the
//! stores of one memory, or the privileged instruction group) and takes the
//! full fan-in cone, duplicating shared computation — maximal parallelism
//! at the cost of recomputation. Two affinity rules constrain the split:
//! all accesses to one memory stay together, and all privileged
//! instructions stay together.
//!
//! Merging is a graph clustering problem with a *non-linear* cost: merging
//! two cones deduplicates their shared instructions (represented here as
//! bitsets over the monolithic instruction indices, so the merged cost is a
//! popcount of the union) and eliminates Sends between them. Two strategies
//! are implemented:
//!
//! - [`PartitionStrategy::Balanced`] — the paper's communication-aware
//!   heuristic: repeatedly merge the cheapest process into the communicating
//!   partner that minimizes the merged execution time, continuing past the
//!   core count while it keeps the straggler bounded;
//! - [`PartitionStrategy::Lpt`] — the communication-oblivious
//!   longest-processing-time-first baseline the paper evaluates against
//!   (Fig. 9 / Table 4).

use std::collections::{BTreeSet, HashMap};

use crate::bitset::BitSet;
use crate::lir::{LirExceptionKind, LirInstr, LirOp, LirProgram, Process, StateId, VReg};

/// Which merge strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Communication-aware balanced merging (the paper's algorithm, `B`).
    #[default]
    Balanced,
    /// Longest-processing-time-first, communication-oblivious (`L`).
    Lpt,
}

/// One mergeable unit: a cone of monolithic instructions plus its state
/// interface.
#[derive(Debug, Clone)]
struct Unit {
    instrs: BitSet,
    /// Deduplicated instruction cost (weighted popcount of `instrs`).
    base_cost: usize,
    /// States committed inside this unit.
    commits: BTreeSet<StateId>,
    /// States read (live-in) by this unit.
    reads: BTreeSet<StateId>,
}

/// Splits and merges the monolithic program onto `num_cores` cores.
///
/// # Panics
///
/// Panics if `prog` is not monolithic (exactly one process).
pub fn partition(prog: &LirProgram, num_cores: usize, strategy: PartitionStrategy) -> LirProgram {
    assert_eq!(
        prog.processes.len(),
        1,
        "partition expects a monolithic program"
    );
    let mono = &prog.processes[0];
    let n = mono.instrs.len();

    // def index per vreg (live-ins have none).
    let mut def_of: Vec<Option<usize>> = vec![None; mono.num_vregs as usize];
    for (i, instr) in mono.instrs.iter().enumerate() {
        if let Some(d) = instr.dest {
            def_of[d.index()] = Some(i);
        }
    }
    let instr_cost: Vec<usize> = mono
        .instrs
        .iter()
        .map(|i| match i.op {
            LirOp::Const(_) => 0,
            ref op => op.issue_slots(),
        })
        .collect();
    let mut vreg_state: HashMap<VReg, StateId> = HashMap::new();
    for (&s, &v) in &mono.state_reads {
        vreg_state.insert(v, s);
    }

    // ------------------------------------------------------------------
    // Split: seed groups, grow cones.
    // ------------------------------------------------------------------
    let mut seeds: Vec<Vec<usize>> = Vec::new();
    let mut mem_seed: HashMap<u32, usize> = HashMap::new();
    let mut priv_seed: Option<usize> = None;
    for (i, instr) in mono.instrs.iter().enumerate() {
        match &instr.op {
            LirOp::CommitLocal { .. } => seeds.push(vec![i]),
            LirOp::LocalStore { mem, .. } | LirOp::GlobalStore { mem, .. } => {
                let g = *mem_seed.entry(mem.0).or_insert_with(|| {
                    seeds.push(Vec::new());
                    seeds.len() - 1
                });
                seeds[g].push(i);
            }
            LirOp::Expect { .. } => {
                let g = *priv_seed.get_or_insert_with(|| {
                    seeds.push(Vec::new());
                    seeds.len() - 1
                });
                seeds[g].push(i);
            }
            _ => {}
        }
    }

    let mut cones: Vec<BitSet> = Vec::with_capacity(seeds.len());
    for seed in &seeds {
        let mut cone = BitSet::new(n);
        let mut stack: Vec<usize> = seed.clone();
        for &s in seed {
            cone.insert(s);
        }
        while let Some(i) = stack.pop() {
            for a in &mono.instrs[i].args {
                if let Some(d) = def_of[a.index()] {
                    if !cone.contains(d) {
                        cone.insert(d);
                        stack.push(d);
                    }
                }
            }
        }
        cones.push(cone);
    }

    // Affinity: cones touching the same memory unite; cones with privileged
    // instructions unite with the privileged cone.
    let mut uf = UnionFind::new(cones.len());
    let mut mem_home: HashMap<u32, usize> = HashMap::new();
    for (u, cone) in cones.iter().enumerate() {
        for i in cone.iter() {
            match &mono.instrs[i].op {
                LirOp::LocalLoad { mem, .. }
                | LirOp::LocalStore { mem, .. }
                | LirOp::GlobalLoad { mem }
                | LirOp::GlobalStore { mem } => {
                    let home = *mem_home.entry(mem.0).or_insert(u);
                    uf.union(home, u);
                }
                _ => {}
            }
            if mono.instrs[i].op.is_privileged() {
                if let Some(pg) = priv_seed {
                    uf.union(pg, u);
                }
            }
        }
    }
    let mut class_unit: HashMap<usize, usize> = HashMap::new();
    let mut unit_sets: Vec<BitSet> = Vec::new();
    for (u, cone) in cones.iter().enumerate() {
        let root = uf.find(u);
        match class_unit.get(&root) {
            Some(&idx) => unit_sets[idx].union_with(cone),
            None => {
                class_unit.insert(root, unit_sets.len());
                unit_sets.push(cone.clone());
            }
        }
    }

    let make_unit = |set: BitSet| -> Unit {
        let base_cost = set.iter().map(|i| instr_cost[i]).sum();
        let mut commits = BTreeSet::new();
        let mut reads = BTreeSet::new();
        for i in set.iter() {
            if let LirOp::CommitLocal { state } = mono.instrs[i].op {
                commits.insert(state);
            }
            for a in &mono.instrs[i].args {
                if let Some(&s) = vreg_state.get(a) {
                    reads.insert(s);
                }
            }
        }
        Unit {
            instrs: set,
            base_cost,
            commits,
            reads,
        }
    };
    let units: Vec<Unit> = unit_sets.into_iter().map(make_unit).collect();

    // ------------------------------------------------------------------
    // Merge.
    // ------------------------------------------------------------------
    let merged_sets = match strategy {
        PartitionStrategy::Balanced => merge_balanced(units, num_cores, &instr_cost),
        PartitionStrategy::Lpt => merge_lpt(units, num_cores),
    };

    materialize(prog, mono, &merged_sets, &def_of, &vreg_state)
}

/// Send count of unit `u` given current ownership: one per (state committed
/// by `u`, other live unit reading it).
fn send_count(u: usize, units: &[Unit], alive: &[bool]) -> usize {
    let mut sends = 0;
    for s in &units[u].commits {
        for (v, other) in units.iter().enumerate() {
            if v != u && alive[v] && other.reads.contains(s) {
                sends += 1;
            }
        }
    }
    sends
}

fn merge_balanced(mut units: Vec<Unit>, num_cores: usize, instr_cost: &[usize]) -> Vec<BitSet> {
    let mut alive = vec![true; units.len()];
    loop {
        let live: Vec<usize> = (0..units.len()).filter(|&i| alive[i]).collect();
        if live.len() <= 1 {
            break;
        }
        let must_merge = live.len() > num_cores;
        let cost = |i: usize, units: &[Unit], alive: &[bool]| {
            units[i].base_cost + send_count(i, units, alive)
        };
        // Cheapest live unit.
        let &u = live
            .iter()
            .min_by_key(|&&i| cost(i, &units, &alive))
            .unwrap();
        // Communicating partners.
        let partners: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&v| {
                v != u
                    && (units[u].commits.iter().any(|s| units[v].reads.contains(s))
                        || units[v].commits.iter().any(|s| units[u].reads.contains(s)))
            })
            .collect();
        let candidates = if partners.is_empty() {
            live.iter().copied().filter(|&v| v != u).collect::<Vec<_>>()
        } else {
            partners
        };
        // Merged cost of u+v: deduped instructions + sends of the union.
        let merged_cost = |v: usize, units: &[Unit], alive: &[bool]| -> usize {
            let mut base = 0usize;
            // weighted union popcount
            let set = &units[u].instrs;
            let other = &units[v].instrs;
            for i in set.iter() {
                base += instr_cost[i];
            }
            for i in other.iter() {
                if !set.contains(i) {
                    base += instr_cost[i];
                }
            }
            let mut sends = 0;
            for s in units[u].commits.iter().chain(units[v].commits.iter()) {
                for (w, ww) in units.iter().enumerate() {
                    if w != u && w != v && alive[w] && ww.reads.contains(s) {
                        sends += 1;
                    }
                }
            }
            base + sends
        };
        let best = candidates
            .iter()
            .map(|&v| (merged_cost(v, &units, &alive), v))
            .min();
        let Some((best_cost, v)) = best else { break };
        if !must_merge {
            let straggler = live.iter().map(|&i| cost(i, &units, &alive)).max().unwrap();
            if best_cost > straggler {
                break;
            }
        }
        // Merge v into u.
        let vv = units[v].clone();
        units[u].instrs.union_with(&vv.instrs);
        units[u].base_cost = units[u].instrs.iter().map(|i| instr_cost[i]).sum();
        units[u].commits.extend(vv.commits.iter().copied());
        units[u].reads.extend(vv.reads.iter().copied());
        alive[v] = false;
    }
    units
        .into_iter()
        .zip(alive)
        .filter_map(|(un, a)| a.then_some(un.instrs))
        .collect()
}

fn merge_lpt(units: Vec<Unit>, num_cores: usize) -> Vec<BitSet> {
    let alive = vec![true; units.len()];
    let costs: Vec<usize> = (0..units.len())
        .map(|i| units[i].base_cost + send_count(i, &units, &alive))
        .collect();
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    let nbins = num_cores.min(units.len());
    if nbins == 0 {
        return Vec::new();
    }
    let cap = units
        .first()
        .map(|u| u.instrs.iter().max().map_or(1, |m| m + 1))
        .unwrap_or(1);
    // Bitsets in the bins need the monolithic instruction capacity; take it
    // from any unit's backing size (all share it).
    let _ = cap;
    let mut bins: Vec<Option<BitSet>> = vec![None; nbins];
    let mut bin_load = vec![0usize; nbins];
    for i in order {
        let b = (0..nbins).min_by_key(|&b| bin_load[b]).unwrap();
        match &mut bins[b] {
            Some(set) => set.union_with(&units[i].instrs),
            slot @ None => *slot = Some(units[i].instrs.clone()),
        }
        bin_load[b] += costs[i]; // linear cost assumption: the point of L
    }
    bins.into_iter().flatten().collect()
}

/// Rebuilds per-process instruction lists from unit bitsets, renumbers
/// vregs, threads live-ins through, generates `Send`s, and remaps the
/// exception table.
fn materialize(
    prog: &LirProgram,
    mono: &Process,
    units: &[BitSet],
    def_of: &[Option<usize>],
    vreg_state: &HashMap<VReg, StateId>,
) -> LirProgram {
    let mut processes: Vec<Process> = Vec::with_capacity(units.len());
    let mut vmaps: Vec<HashMap<VReg, VReg>> = Vec::with_capacity(units.len());
    for unit in units {
        let mut p = Process::default();
        let mut vmap: HashMap<VReg, VReg> = HashMap::new();
        for i in unit.iter() {
            let old = &mono.instrs[i];
            let mut args = Vec::with_capacity(old.args.len());
            for &a in &old.args {
                let mapped = if let Some(&m) = vmap.get(&a) {
                    m
                } else if let Some(&s) = vreg_state.get(&a) {
                    let v = p.fresh();
                    p.state_reads.insert(s, v);
                    vmap.insert(a, v);
                    v
                } else {
                    debug_assert!(def_of[a.index()].is_some());
                    unreachable!("cone closure must include defining instruction")
                };
                args.push(mapped);
            }
            let dest = old.dest.map(|d| {
                let v = p.fresh();
                vmap.insert(d, v);
                v
            });
            if old.op.is_privileged() {
                p.is_privileged = true;
            }
            p.instrs.push(LirInstr {
                dest,
                op: old.op.clone(),
                args,
            });
        }
        processes.push(p);
        vmaps.push(vmap);
    }

    // Sends: the owner of each state sends to every other reader process.
    let mut owners = vec![usize::MAX; prog.states.len()];
    for (pi, p) in processes.iter().enumerate() {
        for instr in &p.instrs {
            if let LirOp::CommitLocal { state } = instr.op {
                owners[state.index()] = pi;
            }
        }
    }
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); prog.states.len()];
    for (pi, p) in processes.iter().enumerate() {
        for &s in p.state_reads.keys() {
            readers[s.index()].push(pi);
        }
    }
    for (si, state_readers) in readers.iter().enumerate() {
        let owner = owners[si];
        if owner == usize::MAX {
            continue;
        }
        let src = processes[owner]
            .instrs
            .iter()
            .find_map(|i| match i.op {
                LirOp::CommitLocal { state } if state.index() == si => Some(i.args[0]),
                _ => None,
            })
            .expect("owner commits the state");
        for &rp in state_readers {
            if rp != owner {
                processes[owner].instrs.push(LirInstr {
                    dest: None,
                    op: LirOp::Send {
                        state: StateId(si as u32),
                        to_process: rp,
                    },
                    args: vec![src],
                });
            }
        }
    }

    // Remap exception argument vregs into the privileged process.
    let priv_idx = processes.iter().position(|p| p.is_privileged);
    let exceptions = prog
        .exceptions
        .iter()
        .map(|e| match e {
            LirExceptionKind::Display { format, args } => {
                let pi = priv_idx.expect("displays imply a privileged process");
                let vmap = &vmaps[pi];
                LirExceptionKind::Display {
                    format: format.clone(),
                    args: args
                        .iter()
                        .map(|(regs, w)| (regs.iter().map(|r| vmap[r]).collect(), *w))
                        .collect(),
                }
            }
            other => other.clone(),
        })
        .collect();

    LirProgram {
        processes,
        states: prog.states.clone(),
        mems: prog.mems.clone(),
        exceptions,
    }
}

/// Plain union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}
