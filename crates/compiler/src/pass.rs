//! The pass manager: the Fig. 4 pipeline as an explicit list of
//! instrumented passes over a shared [`CompileCtx`].
//!
//! Each pass is a [`Pass`] implementation that advances the context by one
//! pipeline stage (netlist → monolithic LIR → partitioned LIR → schedule →
//! binary). The manager wraps every pass with wall-time and IR-size
//! instrumentation, collected into [`CompileReport::passes`] — the data
//! behind Fig. 13 and the compile-scaling bench.
//!
//! # Thread count and determinism
//!
//! `CompileCtx::threads` selects the pipeline implementation:
//!
//! - `1` — the **reference pipeline**: the paper's serial algorithms,
//!   exactly as before the pass-manager refactor;
//! - `> 1` — the **parallel pipeline**: the heavy passes fan per-cone /
//!   per-process work out over a scoped worker pool
//!   ([`manticore_util::parallel_map`]) and use restructured inner
//!   algorithms (incremental merge bookkeeping, vector-indexed maps)
//!   whose *decision sequences* replicate the reference exactly.
//!
//! Both pipelines emit **bit-identical binaries**; the compile-determinism
//! suite compares `Binary::to_bytes` across 1/2/4 threads on every
//! workload. The structural reasons each parallel pass stays deterministic
//! are documented in the respective modules ([`partition`], [`schedule`],
//! [`regalloc`]) and in ARCHITECTURE.md.

use std::time::Instant;

use manticore_netlist::Netlist;
use manticore_util::CancelToken;

use crate::error::CompileError;
use crate::report::{CompileReport, PassStat, SplitStats};
use crate::{cfu, lir, lir_opt, lower, opt, partition, regalloc, schedule, CompileOptions};

/// Host-side control over one compilation: a cooperative cancel token
/// and/or a wall-clock deadline, polled between passes and inside the
/// partition merge loop. The default is unconstrained (every check is a
/// no-op), so callers that never set one pay nothing.
///
/// This mirrors the machine's run-control machinery: tripping either
/// signal stops the compile at the next poll point with a structured
/// [`CompileError::Cancelled`] / [`CompileError::DeadlineExceeded`]
/// naming the pass it interrupted, instead of wedging the compiling
/// thread on a huge or hostile design.
#[derive(Debug, Clone, Default)]
pub struct CompileControl {
    /// Cooperative cancellation; tripping it stops the compile at the
    /// next poll point.
    pub cancel: Option<CancelToken>,
    /// Wall-clock deadline; the compile stops at the first poll point at
    /// or past it.
    pub deadline: Option<Instant>,
}

impl CompileControl {
    /// A control with only a deadline.
    pub fn with_deadline(deadline: Instant) -> CompileControl {
        CompileControl {
            cancel: None,
            deadline: Some(deadline),
        }
    }

    /// True when either signal is set (the unconstrained default makes
    /// every poll a pair of `None` checks).
    pub fn is_constrained(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// One poll point: returns the structured interruption error if
    /// either signal has fired, attributing it to `pass`.
    ///
    /// # Errors
    ///
    /// [`CompileError::Cancelled`] or [`CompileError::DeadlineExceeded`].
    pub fn check(&self, pass: &'static str) -> Result<(), CompileError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(CompileError::Cancelled { pass });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(CompileError::DeadlineExceeded { pass });
            }
        }
        Ok(())
    }
}

/// Shared state threaded through the pipeline: the inputs, the worker
/// count, each stage's IR once produced, and the accumulating report.
#[derive(Debug)]
pub struct CompileCtx<'a> {
    /// The input design.
    pub netlist: &'a Netlist,
    /// Compilation options (target config, strategy, feature toggles).
    pub options: &'a CompileOptions,
    /// Resolved worker count: 1 = reference pipeline, >1 = parallel.
    pub threads: usize,
    /// After `netlist-opt`: the netlist actually compiled.
    pub optimized: Option<Netlist>,
    /// After `lower`/`lir-opt`: the monolithic lower-assembly program.
    pub mono: Option<lir::LirProgram>,
    /// After `partition`/`custom-functions`: the per-process program.
    pub parted: Option<lir::LirProgram>,
    /// After `schedule`: placement, slots, Vcycle framing.
    pub schedule: Option<schedule::Schedule>,
    /// After `regalloc-emit`: the binary plus metadata.
    pub emitted: Option<regalloc::EmitOutput>,
    /// Pass instrumentation and compile statistics.
    pub report: CompileReport,
    /// Cancellation/deadline control; unconstrained by default.
    pub control: CompileControl,
}

impl<'a> CompileCtx<'a> {
    /// A fresh context for one compilation.
    pub fn new(netlist: &'a Netlist, options: &'a CompileOptions, threads: usize) -> Self {
        let report = CompileReport {
            compile_threads: threads,
            ..Default::default()
        };
        CompileCtx {
            netlist,
            options,
            threads,
            optimized: None,
            mono: None,
            parted: None,
            schedule: None,
            emitted: None,
            report,
            control: CompileControl::default(),
        }
    }
}

/// One pipeline stage. Implementations advance the context and report
/// their post-run IR size; the manager does the timing.
pub trait Pass {
    /// Stable pass name (the report / bench column label).
    fn name(&self) -> &'static str;

    /// Worker threads this pass engages under `ctx` (1 for inherently
    /// serial passes, `ctx.threads` for the parallelized ones).
    fn threads_used(&self, _ctx: &CompileCtx) -> usize {
        1
    }

    /// Runs the pass, advancing the context by one stage.
    ///
    /// # Errors
    ///
    /// Stage-specific [`CompileError`]s (lowering rejections, resource
    /// overflows).
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError>;

    /// Size of the IR the pass left behind — a deterministic output,
    /// compared exactly by the determinism suite and the bench gate.
    fn ir_size(&self, ctx: &CompileCtx) -> usize;
}

/// The pass list; [`PassManager::standard`] builds the Fig. 4 pipeline.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// The standard seven-pass pipeline in Fig. 4 order.
    pub fn standard() -> Self {
        PassManager {
            passes: vec![
                Box::new(NetlistOptPass),
                Box::new(LowerPass),
                Box::new(LirOptPass),
                Box::new(PartitionPass),
                Box::new(CustomFunctionsPass),
                Box::new(SchedulePass),
                Box::new(RegallocEmitPass),
            ],
        }
    }

    /// The pass names in pipeline order (bench column headers).
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order, recording a [`PassStat`] around each.
    ///
    /// # Errors
    ///
    /// The first failing pass's [`CompileError`].
    pub fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        for pass in &self.passes {
            ctx.control.check(pass.name())?;
            let start = Instant::now();
            pass.run(ctx)?;
            ctx.report.passes.push(PassStat {
                name: pass.name(),
                duration: start.elapsed(),
                ir_size: pass.ir_size(ctx),
                threads: pass.threads_used(ctx),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The seven standard passes.
// ---------------------------------------------------------------------

/// Netlist-level constant folding, CSE, DCE (stage 1).
struct NetlistOptPass;

impl Pass for NetlistOptPass {
    fn name(&self) -> &'static str {
        "netlist-opt"
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        ctx.optimized = Some(if ctx.options.netlist_opt {
            opt::optimize(ctx.netlist)
        } else {
            ctx.netlist.clone()
        });
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        ctx.optimized.as_ref().map_or(0, |n| n.nets().len())
    }
}

/// Width legalization onto the 16-bit datapath (stage 2).
struct LowerPass;

impl Pass for LowerPass {
    fn name(&self) -> &'static str {
        "lower"
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        let optimized = ctx.optimized.as_ref().expect("netlist-opt ran");
        ctx.mono = Some(lower::lower(optimized, ctx.options.config.scratch_words)?);
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        ctx.mono.as_ref().map_or(0, |m| m.processes[0].instrs.len())
    }
}

/// Lower-assembly CSE/DCE on the monolithic program (stage 3).
struct LirOptPass;

impl Pass for LirOptPass {
    fn name(&self) -> &'static str {
        "lir-opt"
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        lir_opt::optimize(ctx.mono.as_mut().expect("lower ran"));
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        ctx.mono.as_ref().map_or(0, |m| m.processes[0].instrs.len())
    }
}

/// Cone split + communication-aware merge (stage 4). Parallel cone
/// extraction and materialization; the merge itself is serial and
/// deterministic in both pipelines.
struct PartitionPass;

impl Pass for PartitionPass {
    fn name(&self) -> &'static str {
        "partition"
    }
    fn threads_used(&self, ctx: &CompileCtx) -> usize {
        ctx.threads
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        let mono = ctx.mono.as_ref().expect("lir-opt ran");
        let parted = partition::partition_controlled(
            mono,
            ctx.options.config.num_cores(),
            ctx.options.partition,
            ctx.threads,
            &ctx.control,
        )?;
        ctx.report.split = SplitStats {
            vertices: count_split_units(mono),
            edges: count_split_edges(&parted),
        };
        ctx.parted = Some(parted);
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        parted_instrs(ctx)
    }
}

/// MFFC fusion into 4-input LUT ops, then per-process cleanup (stage 5).
/// Embarrassingly parallel: each process synthesizes independently.
struct CustomFunctionsPass;

impl Pass for CustomFunctionsPass {
    fn name(&self) -> &'static str {
        "custom-functions"
    }
    fn threads_used(&self, ctx: &CompileCtx) -> usize {
        ctx.threads
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        if ctx.options.custom_functions {
            let parted = ctx.parted.as_mut().expect("partition ran");
            let max_tables = ctx.options.config.num_custom_functions;
            manticore_util::parallel_map_mut(&mut parted.processes, ctx.threads, |_, p| {
                cfu::synthesize(p, max_tables);
            });
            lir_opt::optimize_threaded(parted, ctx.threads);
        }
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        parted_instrs(ctx)
    }
}

/// List scheduling against the hazard/NoC models (stage 6). Per-process
/// graph construction parallelizes; the global link-reserving issue loop
/// is serial in both pipelines (it is the NoC arbitration semantics).
struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }
    fn threads_used(&self, ctx: &CompileCtx) -> usize {
        ctx.threads
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        let parted = ctx.parted.as_ref().expect("partition ran");
        ctx.schedule = Some(schedule::schedule_threaded(
            parted,
            &ctx.options.config,
            ctx.threads,
        )?);
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        ctx.schedule.as_ref().map_or(0, |s| s.body_len.iter().sum())
    }
}

/// Register allocation + emission (stage 7). Per-core allocation and body
/// emission parallelize; images merge in core-index order.
struct RegallocEmitPass;

impl Pass for RegallocEmitPass {
    fn name(&self) -> &'static str {
        "regalloc-emit"
    }
    fn threads_used(&self, ctx: &CompileCtx) -> usize {
        ctx.threads
    }
    fn run(&self, ctx: &mut CompileCtx) -> Result<(), CompileError> {
        let parted = ctx.parted.as_ref().expect("partition ran");
        let schedule = ctx.schedule.as_ref().expect("schedule ran");
        ctx.emitted = Some(regalloc::emit_threaded(
            parted,
            schedule,
            &ctx.options.config,
            ctx.threads,
        )?);
        Ok(())
    }
    fn ir_size(&self, ctx: &CompileCtx) -> usize {
        ctx.emitted
            .as_ref()
            .map_or(0, |e| e.binary.total_instructions())
    }
}

fn parted_instrs(ctx: &CompileCtx) -> usize {
    ctx.parted
        .as_ref()
        .map_or(0, |p| p.processes.iter().map(|pr| pr.instrs.len()).sum())
}

/// Number of sink seeds in the monolithic program — the vertex count of
/// the maximal split graph (Table 8's |V|), before affinity merging.
fn count_split_units(mono: &lir::LirProgram) -> usize {
    let p = &mono.processes[0];
    let mut units = 0usize;
    let mut mems = std::collections::HashSet::new();
    let mut has_priv = false;
    for i in &p.instrs {
        match &i.op {
            lir::LirOp::CommitLocal { .. } => units += 1,
            lir::LirOp::LocalStore { mem, .. } | lir::LirOp::GlobalStore { mem, .. } => {
                mems.insert(mem.0);
            }
            lir::LirOp::Expect { .. } => has_priv = true,
            _ => {}
        }
    }
    units + mems.len() + has_priv as usize
}

/// Communication edges between merged processes (state producer/consumer
/// pairs) — an |E| analog after merging.
fn count_split_edges(parted: &lir::LirProgram) -> usize {
    let mut edges = std::collections::HashSet::new();
    for (pi, p) in parted.processes.iter().enumerate() {
        for instr in &p.instrs {
            if let lir::LirOp::Send { to_process, .. } = instr.op {
                edges.insert((pi, to_process));
            }
        }
    }
    edges.len()
}
