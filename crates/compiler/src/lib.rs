//! The Manticore compiler: netlists → statically-scheduled machine binaries.
//!
//! The pipeline mirrors Fig. 4 of the paper, expressed as an explicit
//! [`pass::PassManager`] over a shared [`pass::CompileCtx`]:
//!
//! 1. **optimize** — netlist-level constant folding, CSE, DCE ([`opt`]);
//! 2. **lower** — width legalization onto the 16-bit datapath ([`lower`]);
//! 3. **optimize** — lower-assembly CSE/DCE ([`lir_opt`]);
//! 4. **partition** — split into per-sink cones, merge communication-aware
//!    ([`partition`]);
//! 5. **custom instructions** — MFFC fusion into 4-input LUT ops ([`cfu`]);
//! 6. **schedule** — list scheduling against the pipeline-hazard and
//!    NoC-routing models ([`schedule`]);
//! 7. **register allocation + emission** — persistent/linear-scan
//!    allocation, current/next coalescing, binary emission ([`regalloc`]).
//!
//! The manager wraps every pass with wall-time and IR-size instrumentation
//! ([`report::PassStat`]). [`CompileOptions::compile_threads`] selects the
//! pipeline implementation: `1` (the default) is the reference serial
//! pipeline; `> 1` fans the heavy passes out over a scoped worker pool and
//! uses restructured inner algorithms whose outputs are **bit-identical**
//! to the serial pipeline — the compile-determinism suite compares the
//! emitted binaries byte-for-byte across thread counts.
//!
//! Both intermediate representations are executable: the netlist via
//! `manticore_netlist::eval` and the lower assembly via [`interp`] — the
//! compiler's differential-testing backbone, as in the paper.
//!
//! # Examples
//!
//! ```
//! use manticore_compiler::{compile, CompileOptions};
//! use manticore_netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new("counter");
//! let r = b.reg("count", 16, 0);
//! let one = b.lit(1, 16);
//! let next = b.add(r.q(), one);
//! b.set_next(r, next);
//! let netlist = b.finish_build().unwrap();
//!
//! let out = compile(&netlist, &CompileOptions::default()).unwrap();
//! assert!(out.binary.vcycle_len > 0);
//! ```

pub mod bitset;
pub mod cfu;
pub mod error;
pub mod interp;
pub mod lir;
pub mod lir_opt;
pub mod lower;
pub mod opt;
pub mod partition;
pub mod pass;
pub mod regalloc;
pub mod report;
pub mod schedule;

#[cfg(test)]
mod tests;

use manticore_isa::{Binary, MachineConfig};
use manticore_netlist::Netlist;

pub use error::CompileError;
pub use partition::PartitionStrategy;
pub use pass::{CompileControl, CompileCtx, Pass, PassManager};
pub use report::{
    CompileReport, CoreBreakdown, MemLocation, Metadata, PassStat, RegLocation, SplitStats,
};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target machine configuration.
    pub config: MachineConfig,
    /// Merge strategy (the paper's `B` vs `L`, Fig. 9).
    pub partition: PartitionStrategy,
    /// Enable custom-function synthesis (§6.2; Fig. 10 ablates this).
    pub custom_functions: bool,
    /// Enable netlist-level optimization.
    pub netlist_opt: bool,
    /// Compiler worker threads. `1` (the default) runs the reference
    /// serial pipeline; `> 1` runs the parallel pipeline (bit-identical
    /// output); `0` resolves to `max(2, available_parallelism)`.
    pub compile_threads: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            config: MachineConfig::default(),
            partition: PartitionStrategy::Balanced,
            custom_functions: true,
            netlist_opt: true,
            compile_threads: 1,
        }
    }
}

impl CompileOptions {
    /// The worker count the pipeline will actually run with: `0` resolves
    /// to `max(2, available_parallelism)` (auto always picks the parallel
    /// pipeline — its restructured passes win even on one CPU), any other
    /// value is taken as-is.
    pub fn resolved_compile_threads(&self) -> usize {
        match self.compile_threads {
            0 => std::thread::available_parallelism()
                .map_or(2, |n| n.get())
                .max(2),
            n => n,
        }
    }
}

/// A compiled design.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The loadable machine binary.
    pub binary: Binary,
    /// The optimized netlist actually compiled (RTL ids in the metadata
    /// refer to *this* netlist).
    pub optimized: Netlist,
    /// The partitioned lower-assembly program (drives the interpreter and
    /// the scaling analyses).
    pub lir: lir::LirProgram,
    /// Where RTL state lives on the machine.
    pub metadata: Metadata,
    /// Per-pass timings and instruction-mix statistics.
    pub report: CompileReport,
}

impl CompileOutput {
    /// Predicted simulation rate in kHz at the configured clock
    /// (`clock / VCPL` — the paper's headline metric).
    pub fn simulation_rate_khz(&self, config: &MachineConfig) -> f64 {
        config.simulation_rate_khz(self.report.vcpl)
    }
}

/// Compiles a netlist for the configured machine.
///
/// # Errors
///
/// See [`CompileError`]; notably designs with primary inputs are rejected
/// (test harnesses must be closed) and resource overflows are reported per
/// core.
pub fn compile(netlist: &Netlist, options: &CompileOptions) -> Result<CompileOutput, CompileError> {
    compile_controlled(netlist, options, &CompileControl::default())
}

/// [`compile`] under a [`CompileControl`]: the pipeline polls the control
/// between passes and inside the partition merge loop, so a tripped
/// deadline or cancel token stops the compile with a structured
/// [`CompileError::DeadlineExceeded`] / [`CompileError::Cancelled`]
/// instead of running a huge or hostile design to completion. The serving
/// layer uses this to bound how long one untrusted netlist can hold a
/// compile slot.
///
/// # Errors
///
/// Everything [`compile`] reports, plus the control's interruptions.
pub fn compile_controlled(
    netlist: &Netlist,
    options: &CompileOptions,
    control: &CompileControl,
) -> Result<CompileOutput, CompileError> {
    let threads = options.resolved_compile_threads();
    let mut ctx = CompileCtx::new(netlist, options, threads);
    ctx.control = control.clone();
    PassManager::standard().run(&mut ctx)?;

    let parted = ctx.parted.take().expect("pipeline ran");
    let schedule = ctx.schedule.take().expect("pipeline ran");
    let emitted = ctx.emitted.take().expect("pipeline ran");
    let optimized = ctx.optimized.take().expect("pipeline ran");
    let mut report = ctx.report;

    report.vcpl = schedule.vcycle_len;
    report.processes = parted.processes.len();
    report.cores_used = parted
        .processes
        .iter()
        .filter(|p| !p.instrs.is_empty())
        .count();
    report.per_core = emitted.per_core.clone();
    report.total_sends = emitted.per_core.iter().map(|b| b.sends).sum();
    report.total_custom = emitted.per_core.iter().map(|b| b.custom).sum();
    report.total_instructions = emitted.per_core.iter().map(|b| b.compute + b.sends).sum();

    Ok(CompileOutput {
        binary: emitted.binary,
        optimized,
        lir: parted,
        metadata: emitted.metadata,
        report,
    })
}
